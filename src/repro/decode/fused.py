"""Fused-attention and decode-step schedules on the event timeline.

Two schedule variants the base :mod:`repro.core.scheduler` cannot
express:

* :func:`schedule_fused_mha` — long-sequence prefill (``s`` may exceed
  the SA's ``seq_len`` rows).  ``Q``/``K``/``V`` row tiles stream
  through the array weight-stationary (each projection tile loads its
  64-column weight block once, then replays it over ``ceil(s/rows)``
  row tiles), ``Q_tau K^T`` runs as ``ceil(s/64)`` chunk passes per
  query tile, and the softmax module consumes each tile's score block
  with the *online* running-max normalization of
  :class:`~repro.core.streaming.StreamingSoftmax` — so the full
  ``s x s`` score matrix never exists in Data Memory.  The schedule is
  software-pipelined: tile ``tau``'s softmax tail hides behind tile
  ``tau+1``'s ``Q K^T`` passes, and ``P_tau V`` dispatches as soon as
  its tile's normalization lands.
* :func:`schedule_decode_step` — one autoregressive token.  A single
  valid query row projects through Q (and optionally the new token's
  K/V rows), multiplies against the *cached* ``K`` (``ceil(t/64)``
  chunk passes), normalizes a ``t``-column row, and reduces against the
  cached ``V`` (one ``t``-deep pass).  The array still fills/drains all
  ``seq_len`` rows — the padding waste `repro profile` reports as the
  gap between padded and effective utilization.

Both are priced by the same :class:`~repro.core.scheduler._Timeline`
rules as the base schedules (skew at dependency breaks and single-port
conflicts, exposed softmax tails, ABFT drains, prefetched weight
tiles), and each has a closed-form twin in
:mod:`repro.decode.cycle_model` that the property suite holds to exact
agreement (the SCH004 conservation pattern).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..config import AcceleratorConfig, MemoryConfig, ModelConfig
from ..core.layernorm_module import LayerNormModule
from ..core.scheduler import ScheduleResult, _Timeline, _record, _validate
from ..core.softmax_module import SoftmaxModule
from ..errors import ScheduleError
from .cycle_model import decode_step_macs, fused_mha_macs, mha_tile_bytes

if TYPE_CHECKING:
    from ..telemetry.registry import MetricsRegistry


def _check_lengths(name: str, value: int) -> None:
    if value <= 0:
        raise ScheduleError(f"{name} must be positive, got {value}")


def schedule_fused_mha(
    model: ModelConfig,
    acc: AcceleratorConfig,
    s: int,
    mem: Optional[MemoryConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ScheduleResult:
    """Timeline of one fused-attention MHA ResBlock at sequence length ``s``.

    ``s`` is a *workload* parameter independent of the SA's physical
    ``acc.seq_len`` rows: the sequence is processed as
    ``T = ceil(s / seq_len)`` query row tiles.  Per head, pass order is

    1. ``T`` Q-projection row tiles (weight tile loaded once, on the
       first), ``T`` K-projection row tiles likewise;
    2. query tile 0's ``ceil(s/64)`` ``Q K^T`` chunk passes (the first
       is a dependency break on the drained projections) and its online
       softmax (exposed ``s + pipeline_depth`` after the last chunk);
    3. ``T`` V-projection row tiles, overlapping that softmax;
    4. for each later tile: its ``Q K^T`` chunks, its softmax, and the
       *previous* tile's ``P V`` pass (``s``-deep, waiting on that
       tile's softmax) — the software pipeline that hides the tails;
    5. the last tile's ``P V``.

    Then ``h x T`` output (``G``) row-tile passes and the LayerNorm
    tail.  With ``s <= seq_len`` (one tile) the pass structure reduces
    to exactly :func:`repro.core.scheduler.schedule_mha`'s, and the
    totals match it.
    """
    _validate(model, acc)
    _check_lengths("s", s)
    rows = acc.seq_len
    cols = acc.sa_cols
    h = model.num_heads
    d_model = model.d_model
    num_tiles = -(-s // rows)           # query row tiles
    num_chunks = -(-s // cols)          # K^T column chunks per tile
    timeline = _Timeline(acc, mem, registry, "fused_mha")
    softmax = SoftmaxModule(acc)
    layernorm = LayerNormModule(acc, d_model)
    tile_bytes = mha_tile_bytes(model, acc)
    exposed = softmax.timing(s).exposed_after_input
    sm_free = 0                         # softmax module availability

    def projection(label: str, tau: int) -> int:
        event = timeline.sa_pass(
            f"{label}.t{tau}", k=d_model,
            input_buffer="input_q" if label.endswith("QWq") else "input_kv",
            loads_weights=(tau == 0),
            tile_bytes=tile_bytes if tau == 0 else 0,
        )
        return event.end

    for i in range(h):
        for tau in range(num_tiles):
            projection(f"head{i}.QWq", tau)
        k_done = 0
        for tau in range(num_tiles):
            k_done = projection(f"head{i}.KWk", tau)
        sm_end: list[int] = []

        def qkt_tile(tau: int, dep_break: bool, not_before: int) -> None:
            nonlocal sm_free
            last = 0
            for j in range(num_chunks):
                event = timeline.sa_pass(
                    f"head{i}.QKt.t{tau}.{j}",
                    k=cols, n=cols, input_buffer="temp1",
                    dependency_break=(j == 0 and dep_break),
                    not_before=not_before if j == 0 else 0,
                    loads_weights=False,
                )
                last = event.end
            start = max(last, sm_free)
            event = timeline.module_event(
                f"head{i}.softmax.t{tau}", "softmax", start, exposed
            )
            sm_end.append(event.end)
            sm_free = event.end

        qkt_tile(0, dep_break=True, not_before=k_done)
        v_done = 0
        for tau in range(num_tiles):
            v_done = projection(f"head{i}.VWv", tau)
        for tau in range(1, num_tiles):
            qkt_tile(tau, dep_break=False, not_before=0)
            timeline.sa_pass(
                f"head{i}.PV.t{tau - 1}", k=s, input_buffer="temp1",
                dependency_break=True,
                not_before=max(sm_end[tau - 1], v_done),
                loads_weights=False,
            )
        timeline.sa_pass(
            f"head{i}.PV.t{num_tiles - 1}", k=s, input_buffer="temp1",
            dependency_break=True,
            not_before=max(sm_end[num_tiles - 1], v_done),
            loads_weights=False,
        )
    for c in range(h):
        for tau in range(num_tiles):
            timeline.sa_pass(
                f"out.GW{c}.t{tau}", k=d_model, input_buffer="p_buffer",
                dependency_break=(c == 0 and tau == 0),
                loads_weights=(tau == 0),
                tile_bytes=tile_bytes if tau == 0 else 0,
            )
    ln_event = timeline.module_event(
        "layernorm", "layernorm", timeline.sa_free,
        layernorm.timing().total_exposed,
    )

    result = ScheduleResult(block="fused_mha", events=timeline.events)
    result.total_cycles = ln_event.end
    result.ideal_sa_cycles = fused_mha_macs(model, s) // acc.num_pes
    result.memsys_stall_cycles = timeline.memsys_stall
    _record(result, registry)
    return result


def schedule_decode_step(
    model: ModelConfig,
    acc: AcceleratorConfig,
    context_len: int,
    mem: Optional[MemoryConfig] = None,
    registry: Optional[MetricsRegistry] = None,
    new_kv: bool = True,
) -> ScheduleResult:
    """Timeline of one MHA ResBlock for a single decode token.

    One valid query row attends over ``context_len`` cached key/value
    positions.  Per head: the new token's Q projection (and, for
    self-attention, its K and V rows — ``new_kv=False`` models cross
    attention, whose K/V were cached at prefill), ``ceil(t/64)``
    ``q K^T`` chunk passes against the cached K, a ``t``-column
    single-row online softmax, and one ``t``-deep ``p V`` pass against
    the cached V; then the ``h`` output passes and the LayerNorm tail.

    KV-cache *residency* is deliberately not on this timeline: hit/miss
    refetch traffic depends on the serving-level interleaving, so
    :class:`~repro.decode.kvcache.KVCacheModel` prices it per lookup
    and the serving simulator adds it to the step cost.

    The array still fills and drains all ``acc.seq_len`` rows for every
    pass — ``ideal_sa_cycles`` counts only the one valid row's MACs, so
    ``sa_utilization`` is the *effective* number while
    ``padded_sa_utilization`` shows what the array streamed.
    """
    _validate(model, acc)
    _check_lengths("context_len", context_len)
    cols = acc.sa_cols
    h = model.num_heads
    d_model = model.d_model
    t = context_len
    num_chunks = -(-t // cols)
    timeline = _Timeline(acc, mem, registry, "decode_step")
    softmax = SoftmaxModule(acc)
    layernorm = LayerNormModule(acc, d_model)
    tile_bytes = mha_tile_bytes(model, acc)

    for i in range(h):
        timeline.sa_pass(
            f"head{i}.qWq", k=d_model, input_buffer="input_q",
            tile_bytes=tile_bytes,
        )
        k_done = timeline.sa_free
        if new_kv:
            k_done = timeline.sa_pass(
                f"head{i}.kWk", k=d_model, input_buffer="input_kv",
                tile_bytes=tile_bytes,
            ).end
        qkt = None
        for j in range(num_chunks):
            qkt = timeline.sa_pass(
                f"head{i}.qKt.{j}" if num_chunks > 1 else f"head{i}.qKt",
                k=cols, n=cols, input_buffer="temp1",
                dependency_break=(j == 0), not_before=k_done,
                loads_weights=False,
            )
        sm_event = timeline.module_event(
            f"head{i}.softmax", "softmax", qkt.end,
            softmax.timing(t).exposed_after_input,
        )
        v_done = timeline.sa_free
        if new_kv:
            v_done = timeline.sa_pass(
                f"head{i}.vWv", k=d_model, input_buffer="input_kv",
                tile_bytes=tile_bytes,
            ).end
        timeline.sa_pass(
            f"head{i}.pV", k=t, input_buffer="temp1",
            dependency_break=True,
            not_before=max(sm_event.end, v_done),
            loads_weights=False,
        )
    for i in range(h):
        timeline.sa_pass(
            f"out.GW{i}", k=d_model, input_buffer="p_buffer",
            dependency_break=(i == 0),
            tile_bytes=tile_bytes,
        )
    ln_event = timeline.module_event(
        "layernorm", "layernorm", timeline.sa_free,
        layernorm.timing().total_exposed,
    )

    result = ScheduleResult(block="decode_step", events=timeline.events)
    result.total_cycles = ln_event.end
    result.ideal_sa_cycles = (
        decode_step_macs(model, t, new_kv=new_kv) // acc.num_pes
    )
    result.memsys_stall_cycles = timeline.memsys_stall
    _record(result, registry)
    return result
