"""Serialization: configs to/from JSON, model checkpoints to .npz.

Lets a trained synthetic-NMT or classifier model (the expensive artifact)
be saved once and reloaded by examples/benches, and lets accelerator
design points be stored as plain JSON files.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from .config import AcceleratorConfig, ModelConfig
from .errors import ConfigError, ShapeError
from .transformer.module import Module

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Configs <-> JSON
# ----------------------------------------------------------------------
def config_to_dict(config) -> dict:
    """Serialize a ModelConfig or AcceleratorConfig to a plain dict."""
    if isinstance(config, ModelConfig):
        kind = "model"
    elif isinstance(config, AcceleratorConfig):
        kind = "accelerator"
    else:
        raise ConfigError(f"cannot serialize {type(config).__name__}")
    return {"kind": kind, "fields": dataclasses.asdict(config)}


def config_from_dict(payload: dict):
    """Inverse of :func:`config_to_dict` (validates on construction)."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ConfigError("payload is not a serialized config")
    fields = payload.get("fields")
    if not isinstance(fields, dict):
        raise ConfigError("payload has no 'fields' mapping")
    if payload["kind"] == "model":
        return ModelConfig(**fields)
    if payload["kind"] == "accelerator":
        return AcceleratorConfig(**fields)
    raise ConfigError(f"unknown config kind {payload['kind']!r}")


def save_config(config, path: PathLike) -> None:
    """Write a config as JSON."""
    Path(path).write_text(
        json.dumps(config_to_dict(config), indent=2, sort_keys=True)
    )


def load_config(path: PathLike):
    """Read a config written by :func:`save_config`."""
    return config_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Model checkpoints <-> .npz
# ----------------------------------------------------------------------
def save_checkpoint(model: Module, path: PathLike) -> int:
    """Write every parameter to a compressed .npz; returns param count."""
    state = model.state_dict()
    if not state:
        raise ShapeError("model has no parameters to save")
    np.savez_compressed(str(path), **state)
    return len(state)


def load_checkpoint(model: Module, path: PathLike) -> None:
    """Load a checkpoint written by :func:`save_checkpoint` in place.

    The model must already have the right architecture; shape/name
    mismatches raise through ``load_state_dict``.
    """
    with np.load(str(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
