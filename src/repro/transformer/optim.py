"""Optimization utilities: cross-entropy loss, Adam, and the Noam schedule.

Only what the synthetic-NMT trainer needs — enough to take the golden
Transformer from random initialization to a high-BLEU checkpoint that the
quantization study (paper Section V-A) can start from.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TrainingError
from .module import Parameter
from .tensor import Tensor


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
    label_smoothing: float = 0.0,
) -> Tensor:
    """Mean token-level cross entropy with optional label smoothing.

    Args:
        logits: ``(batch, seq, vocab)`` unnormalized scores.
        targets: ``(batch, seq)`` integer class ids.
        ignore_index: Target id excluded from the loss (PAD).
        label_smoothing: Mass spread uniformly over non-target classes.
    """
    targets = np.asarray(targets)
    batch, seq_len, vocab = logits.shape
    if targets.shape != (batch, seq_len):
        raise TrainingError(
            f"targets shape {targets.shape} does not match logits "
            f"{(batch, seq_len)}"
        )
    log_probs = logits.log_softmax(axis=-1)
    mask = np.ones((batch, seq_len), dtype=np.float64)
    if ignore_index is not None:
        mask = (targets != ignore_index).astype(np.float64)
    count = mask.sum()
    if count == 0:
        raise TrainingError("all target tokens are ignored")
    # Build the (smoothed) target distribution as a constant array.
    one_hot = np.zeros((batch, seq_len, vocab))
    np.put_along_axis(one_hot, targets[..., None], 1.0, axis=-1)
    if label_smoothing > 0.0:
        smooth = label_smoothing / (vocab - 1)
        target_dist = one_hot * (1.0 - label_smoothing - smooth) + smooth
    else:
        target_dist = one_hot
    weighted = log_probs * Tensor(target_dist * mask[..., None])
    return -weighted.sum() * (1.0 / count)


class Adam:
    """Adam optimizer (Kingma & Ba) over a parameter list."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.98),
        eps: float = 1e-9,
        grad_clip: Optional[float] = None,
    ) -> None:
        if not params:
            raise TrainingError("Adam received no parameters")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def global_grad_norm(self) -> float:
        """L2 norm over all gradients (0 for missing gradients)."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad ** 2).sum())
        return float(np.sqrt(total))

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._t += 1
        scale = 1.0
        if self.grad_clip is not None:
            norm = self.global_grad_norm()
            if norm > self.grad_clip:
                scale = self.grad_clip / (norm + 1e-12)
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad * scale
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class NoamSchedule:
    """The inverse-sqrt warmup schedule from "Attention Is All You Need".

    ``lr = factor * d_model**-0.5 * min(step**-0.5, step * warmup**-1.5)``.
    """

    def __init__(self, d_model: int, warmup: int = 400, factor: float = 1.0):
        if warmup <= 0:
            raise TrainingError("warmup must be positive")
        self.d_model = d_model
        self.warmup = warmup
        self.factor = factor
        self._step = 0

    def rate(self, step: Optional[int] = None) -> float:
        """Learning rate at ``step`` (defaults to the internal counter)."""
        step = self._step if step is None else step
        if step <= 0:
            step = 1
        return (
            self.factor
            * self.d_model ** -0.5
            * min(step ** -0.5, step * self.warmup ** -1.5)
        )

    def step(self, optimizer: Adam) -> float:
        """Advance one step and write the new rate into ``optimizer``."""
        self._step += 1
        optimizer.lr = self.rate()
        return optimizer.lr
