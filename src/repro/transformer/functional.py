"""Pure-numpy reference (golden) implementations of the paper's math.

These functions operate on plain float64 arrays with no autograd and serve
as the ground truth that both the autograd layers and the hardware
simulator are tested against:

* :func:`softmax` / :func:`scaled_masked_softmax` — Eq. (4).
* :func:`log_sum_exp_softmax` — the Eq. (5) reformulation the hardware uses.
* :func:`layer_norm` — Eq. (6)-(8).
* :func:`layer_norm_two_pass` / :func:`layer_norm_one_pass` — the Fig. 7
  variance computations (``E[(x-mu)^2]`` vs ``E[x^2]-E[x]^2``).
* :func:`attention` — Eq. (1).
* :func:`ffn` — Eq. (2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError

#: The epsilon of the paper's LayerNorm (Eq. 6).
LAYERNORM_EPS = 1e-8

#: Scaling divisor 1/sqrt(d_k) with d_k = 64 -> divide by 8 (a >>3 shift).
ATTENTION_SCALE_DIVISOR = 8.0


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def scaled_masked_softmax(
    logits: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scale_divisor: float = ATTENTION_SCALE_DIVISOR,
) -> np.ndarray:
    """The paper's Eq. (4): scale by 1/8, mask, then row softmax.

    Args:
        logits: ``(..., s, s)`` attention logits ``Q K^T``.
        mask: Optional boolean/0-1 array broadcastable to ``logits``;
            positions where ``mask == 1`` are illegal and produce 0.
        scale_divisor: ``sqrt(d_k)``; 8 for d_k = 64.
    """
    scaled = logits / scale_divisor
    if mask is None:
        return softmax(scaled, axis=-1)
    mask = np.broadcast_to(np.asarray(mask, dtype=bool), scaled.shape)
    # Fully masked rows would make the stable softmax compute -inf - -inf;
    # the paper's hardware never generates such rows, but the reference
    # stays defined: they produce all zeros.
    row_all_masked = mask.all(axis=-1, keepdims=True)
    scaled = np.where(mask & ~row_all_masked, -np.inf, scaled)
    out = softmax(scaled, axis=-1)
    return np.where(mask | row_all_masked, 0.0, out)


def log_sum_exp_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax via the log-sum-exp trick (Eq. 5) — division free.

    ``softmax(x)_i = exp(x_i - x_max - ln(sum_j exp(x_j - x_max)))``.
    Numerically identical to :func:`softmax`; it exists so tests can verify
    the algebraic identity the hardware relies on.
    """
    x_max = x.max(axis=axis, keepdims=True)
    shifted = x - x_max
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return np.exp(shifted - log_z)


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = LAYERNORM_EPS,
) -> np.ndarray:
    """Layer normalization over the last axis (Eq. 6)."""
    x = np.asarray(x, dtype=np.float64)
    if gamma.shape[-1] != x.shape[-1] or beta.shape[-1] != x.shape[-1]:
        raise ShapeError(
            f"gamma/beta width {gamma.shape[-1]}/{beta.shape[-1]} does not "
            f"match feature width {x.shape[-1]}"
        )
    mean = x.mean(axis=-1, keepdims=True)
    var = layer_norm_two_pass(x)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def layer_norm_two_pass(x: np.ndarray) -> np.ndarray:
    """Variance as ``E[(x - mu)^2]`` — Fig. 7's straightforward schedule."""
    mean = x.mean(axis=-1, keepdims=True)
    return ((x - mean) ** 2).mean(axis=-1, keepdims=True)


def layer_norm_one_pass(x: np.ndarray) -> np.ndarray:
    """Variance as ``E[x^2] - E[x]^2`` — Fig. 7's step-two schedule (Eq. 9).

    Algebraically equal to :func:`layer_norm_two_pass`; computable in a
    single streaming pass with two accumulators, which is what lets the
    LayerNorm module start before the G matrix is finished.
    """
    mean = x.mean(axis=-1, keepdims=True)
    mean_sq = (x ** 2).mean(axis=-1, keepdims=True)
    # Clamp tiny negative values from floating-point cancellation.
    return np.maximum(mean_sq - mean ** 2, 0.0)


def attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Scaled dot-product attention, Eq. (1), for one head.

    Args:
        q: ``(..., s_q, d_k)`` queries.
        k: ``(..., s_v, d_k)`` keys.
        v: ``(..., s_v, d_k)`` values.
        mask: Optional illegal-connection mask ``(..., s_q, s_v)``.
    """
    d_k = q.shape[-1]
    logits = q @ np.swapaxes(k, -1, -2)
    weights = scaled_masked_softmax(logits, mask, scale_divisor=np.sqrt(d_k))
    return weights @ v


def ffn(
    x: np.ndarray,
    w1: np.ndarray,
    b1: np.ndarray,
    w2: np.ndarray,
    b2: np.ndarray,
) -> np.ndarray:
    """Position-wise feed-forward network, Eq. (2): ReLU(xW1+b1)W2+b2."""
    return relu(x @ w1 + b1) @ w2 + b2


def residual_layer_norm(
    x: np.ndarray,
    sublayer_out: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = LAYERNORM_EPS,
) -> np.ndarray:
    """``LayerNorm(x + Sublayer(x))`` — the ResBlock wrapper of Fig. 2."""
    return layer_norm(x + sublayer_out, gamma, beta, eps=eps)
