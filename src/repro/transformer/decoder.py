"""Transformer decoder stack (paper Fig. 1, right).

Each decoder layer holds two MHA ResBlocks — masked self-attention and
encoder-decoder cross-attention — followed by an FFN ResBlock, exactly the
three-ResBlock layout the paper's Fig. 1 draws.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from .attention import MHAResBlock
from .ffn import FFNResBlock
from .module import Module
from .tensor import Tensor


class DecoderLayer(Module):
    """Masked self-attention, cross-attention, then the FFN ResBlock."""

    def __init__(
        self, config: ModelConfig, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        self.self_attn = MHAResBlock(
            config.d_model, config.num_heads, config.dropout, rng=rng
        )
        self.cross_attn = MHAResBlock(
            config.d_model, config.num_heads, config.dropout, rng=rng
        )
        self.ffn = FFNResBlock(
            config.d_model, config.d_ff, config.dropout, rng=rng
        )

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: Optional[np.ndarray] = None,
        cross_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        x = self.self_attn(x, x, x, self_mask)
        x = self.cross_attn(x, memory, memory, cross_mask)
        return self.ffn(x)


class Decoder(Module):
    """``N`` identical decoder layers applied in sequence."""

    def __init__(
        self, config: ModelConfig, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        self.config = config
        self.layers: list[DecoderLayer] = []
        for i in range(config.num_decoder_layers):
            layer = DecoderLayer(config, rng=rng)
            setattr(self, f"layer{i}", layer)
            self.layers.append(layer)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: Optional[np.ndarray] = None,
        cross_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        for layer in self.layers:
            x = layer(x, memory, self_mask, cross_mask)
        return x
