"""Transformer encoder stack (paper Fig. 1, left)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from .attention import MHAResBlock
from .ffn import FFNResBlock
from .module import Module
from .tensor import Tensor


class EncoderLayer(Module):
    """One encoder layer: a self-attention ResBlock then an FFN ResBlock."""

    def __init__(
        self, config: ModelConfig, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        self.self_attn = MHAResBlock(
            config.d_model, config.num_heads, config.dropout, rng=rng
        )
        self.ffn = FFNResBlock(
            config.d_model, config.d_ff, config.dropout, rng=rng
        )

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = self.self_attn(x, x, x, mask)
        return self.ffn(x)


class Encoder(Module):
    """``N`` identical encoder layers applied in sequence."""

    def __init__(
        self, config: ModelConfig, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        self.config = config
        self.layers: list[EncoderLayer] = []
        for i in range(config.num_encoder_layers):
            layer = EncoderLayer(config, rng=rng)
            setattr(self, f"layer{i}", layer)
            self.layers.append(layer)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask)
        return x
