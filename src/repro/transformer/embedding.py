"""Token embeddings and sinusoidal positional encoding (Vaswani et al.)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from .module import Module, Parameter
from .tensor import Tensor, embedding_lookup


class Embedding(Module):
    """Token-id to vector lookup table, scaled by ``sqrt(d_model)``.

    Attributes:
        table: ``(vocab_size, d_model)`` parameter.
    """

    def __init__(
        self,
        vocab_size: int,
        d_model: int,
        scale: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if vocab_size <= 0 or d_model <= 0:
            raise ShapeError("Embedding dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.d_model = d_model
        self.scale = np.sqrt(d_model) if scale else 1.0
        self.table = Parameter(
            rng.normal(0.0, d_model ** -0.5, size=(vocab_size, d_model)),
            name="table",
        )

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids)
        if np.any(token_ids < 0) or np.any(token_ids >= self.vocab_size):
            raise ShapeError(
                f"token ids must lie in [0, {self.vocab_size}), got range "
                f"[{token_ids.min()}, {token_ids.max()}]"
            )
        return embedding_lookup(self.table, token_ids) * self.scale


def sinusoidal_encoding(max_len: int, d_model: int) -> np.ndarray:
    """The fixed sin/cos positional table PE(pos, 2i) = sin(pos/10000^(2i/d))."""
    if max_len <= 0 or d_model <= 0 or d_model % 2:
        raise ShapeError("max_len > 0 and even d_model required")
    positions = np.arange(max_len, dtype=np.float64)[:, None]
    dims = np.arange(0, d_model, 2, dtype=np.float64)[None, :]
    angles = positions / np.power(10000.0, dims / d_model)
    table = np.zeros((max_len, d_model))
    table[:, 0::2] = np.sin(angles)
    table[:, 1::2] = np.cos(angles)
    return table


class PositionalEncoding(Module):
    """Adds the (non-trainable) sinusoidal position table to embeddings."""

    def __init__(self, max_len: int, d_model: int) -> None:
        super().__init__()
        self.max_len = max_len
        self.d_model = d_model
        self._table = sinusoidal_encoding(max_len, d_model)

    def forward(self, x: Tensor) -> Tensor:
        seq_len = x.shape[-2]
        if seq_len > self.max_len:
            raise ShapeError(
                f"sequence length {seq_len} exceeds positional table "
                f"capacity {self.max_len}"
            )
        return x + Tensor(self._table[:seq_len])
