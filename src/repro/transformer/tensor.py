"""A small reverse-mode automatic-differentiation engine on numpy arrays.

The paper's quantization study (Section V-A) starts from a *trained*
Transformer.  No deep-learning framework is available offline, so this
module provides the minimal autograd needed to train one: a :class:`Tensor`
wrapping a numpy array, a tape of operations, and gradients via reverse
topological traversal.

Only the operations the Transformer needs are implemented, each with an
exact closed-form backward.  Broadcasting is supported by summing gradients
over broadcast dimensions (:func:`_unbroadcast`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Optional, Union

import numpy as np

from ..errors import ShapeError

ArrayLike = Union[float, int, np.ndarray, "Tensor"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(
            f"cannot unbroadcast gradient {grad.shape} to {shape}"
        )
    return grad


class Tensor:
    """A numpy array with an optional gradient and a backward closure.

    Attributes:
        data: The underlying float64 numpy array.
        requires_grad: Whether gradients flow into this tensor.
        grad: Accumulated gradient (same shape as ``data``) after
            :meth:`backward`, else ``None``.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: tuple["Tensor", ...] = tuple(_parents)
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> Tensor:
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, grad={self.requires_grad}{tag})"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: ArrayLike) -> Tensor:
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> Tensor:
        requires = any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> Tensor:
        other = Tensor._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> Tensor:
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> Tensor:
        return self + (-Tensor._lift(other))

    def __rsub__(self, other: ArrayLike) -> Tensor:
        return Tensor._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> Tensor:
        other = Tensor._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> Tensor:
        other = Tensor._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> Tensor:
        return Tensor._lift(other) / self

    def __pow__(self, exponent: float) -> Tensor:
        if not np.isscalar(exponent):
            raise ShapeError("Tensor.__pow__ supports scalar exponents only")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def matmul(self, other: ArrayLike) -> Tensor:
        """Batched matrix multiplication (numpy ``@`` semantics)."""
        other = Tensor._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            self._accumulate(grad @ np.swapaxes(b, -1, -2))
            other._accumulate(np.swapaxes(a, -1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> Tensor:
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def exp(self) -> Tensor:
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> Tensor:
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> Tensor:
        return self ** 0.5

    def tanh(self) -> Tensor:
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> Tensor:
        """Numerically stable softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        out_data = exps / exps.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return self._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> Tensor:
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z

        def backward(grad: np.ndarray) -> None:
            softmax = np.exp(out_data)
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> Tensor:
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad, dtype=np.float64)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> Tensor:
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=-1, keepdims: bool = False) -> Tensor:
        """Population variance along ``axis`` (matches LayerNorm's Eq. 8)."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> Tensor:
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> Tensor:
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> Tensor:
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> Tensor:
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> Tensor:
        """Replace entries where ``mask`` is truthy with ``value``.

        The gradient through filled positions is zero — exactly the
        behaviour of the paper's Mask operation (Eq. 1/4) where masked
        logits become -inf before the softmax.
        """
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.where(mask, 0.0, grad))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Args:
            grad: Seed gradient; defaults to ones (must be provided
                explicitly only when the output is non-scalar and a custom
                seed is wanted).
        """
        if not self.requires_grad:
            raise ShapeError("backward() on a tensor that requires no grad")
        if grad is None:
            grad = np.ones_like(self.data)

        # Iterative postorder DFS to avoid recursion limits on deep graphs.
        order: list[Tensor] = []
        expanded = set()
        finished = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                if id(node) not in finished:
                    finished.add(id(node))
                    order.append(node)
                continue
            if id(node) in expanded or not node.requires_grad:
                continue
            expanded.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in expanded and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support.

    This is how the MHA ResBlock joins the per-head attention outputs
    before the final linear layer (Fig. 2).
    """
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    requires = any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=tuple(tensors),
                  _backward=backward)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``table`` by integer ``indices`` (with gradients)."""
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise ShapeError("embedding indices must be integers")
    out_data = table.data[indices]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(table.data)
        np.add.at(full, indices, grad)
        table._accumulate(full)

    if not table.requires_grad:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=(table,),
                  _backward=backward)
