"""The full encoder-decoder Transformer (paper Fig. 1).

:class:`Transformer` wires the embedding layers, positional encoding, the
encoder and decoder stacks, and the output projection into one module.
It is the *golden model*: the quantizer reads its weights, the accelerator
simulator is checked against its ResBlock outputs, and the NMT trainer
optimizes it end to end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..errors import ShapeError
from .decoder import Decoder
from .embedding import Embedding, PositionalEncoding
from .encoder import Encoder
from .layers import Dropout, Linear
from .masks import causal_mask, combine_masks, padding_mask
from .module import Module
from .tensor import Tensor


class Transformer(Module):
    """Encoder-decoder Transformer for sequence-to-sequence tasks.

    Attributes:
        config: The :class:`ModelConfig` hyper-parameters.
        src_embed / tgt_embed: Token embeddings (optionally tied).
        generator: The final Linear projecting to vocabulary logits.
    """

    def __init__(
        self,
        config: ModelConfig,
        src_vocab_size: int,
        tgt_vocab_size: int,
        tie_embeddings: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if config.num_decoder_layers <= 0:
            raise ShapeError(
                "Transformer needs a decoder stack; use Encoder directly "
                "for encoder-only configurations"
            )
        rng = rng or np.random.default_rng()
        self.config = config
        self.src_embed = Embedding(src_vocab_size, config.d_model, rng=rng)
        if tie_embeddings:
            if src_vocab_size != tgt_vocab_size:
                raise ShapeError("tied embeddings require equal vocab sizes")
            self.tgt_embed = self.src_embed
        else:
            self.tgt_embed = Embedding(tgt_vocab_size, config.d_model, rng=rng)
        self.positional = PositionalEncoding(config.max_seq_len, config.d_model)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.encoder = Encoder(config, rng=rng)
        self.decoder = Decoder(config, rng=rng)
        self.generator = Linear(config.d_model, tgt_vocab_size, rng=rng)

    # ------------------------------------------------------------------
    # Mask construction
    # ------------------------------------------------------------------
    def build_masks(
        self,
        src_lengths: np.ndarray,
        tgt_len: int,
        src_len: int,
        tgt_lengths: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build (encoder self, decoder self, cross) masks.

        Masks use the paper's convention: 1 marks an illegal connection.
        """
        enc_mask = padding_mask(src_lengths, src_len)
        dec_self = causal_mask(tgt_len)[None, :, :]
        if tgt_lengths is not None:
            dec_self = combine_masks(
                dec_self, padding_mask(tgt_lengths, tgt_len)
            )
        else:
            batch = len(np.asarray(src_lengths))
            dec_self = np.broadcast_to(
                dec_self, (batch, tgt_len, tgt_len)
            ).copy()
        cross = padding_mask(src_lengths, src_len, num_queries=tgt_len)
        return enc_mask, dec_self, cross

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def encode(
        self, src_ids: np.ndarray, src_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Run the encoder stack on source token ids ``(batch, s)``."""
        x = self.embed_dropout(self.positional(self.src_embed(src_ids)))
        return self.encoder(x, src_mask)

    def decode(
        self,
        tgt_ids: np.ndarray,
        memory: Tensor,
        self_mask: Optional[np.ndarray] = None,
        cross_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Run the decoder stack; returns ``(batch, t, d_model)`` states."""
        y = self.embed_dropout(self.positional(self.tgt_embed(tgt_ids)))
        return self.decoder(y, memory, self_mask, cross_mask)

    def forward(
        self,
        src_ids: np.ndarray,
        tgt_ids: np.ndarray,
        src_lengths: Optional[np.ndarray] = None,
        tgt_lengths: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Full forward pass; returns vocabulary logits ``(batch, t, V)``."""
        src_ids = np.asarray(src_ids)
        tgt_ids = np.asarray(tgt_ids)
        if src_ids.ndim != 2 or tgt_ids.ndim != 2:
            raise ShapeError("src_ids/tgt_ids must be (batch, seq_len)")
        if src_lengths is None:
            src_lengths = np.full(src_ids.shape[0], src_ids.shape[1])
        enc_mask, dec_self, cross = self.build_masks(
            src_lengths, tgt_ids.shape[1], src_ids.shape[1], tgt_lengths
        )
        memory = self.encode(src_ids, enc_mask)
        states = self.decode(tgt_ids, memory, dec_self, cross)
        return self.generator(states)
