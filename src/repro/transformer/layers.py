"""Basic layers: Linear, Dropout, LayerNorm (autograd versions).

Weight layout convention matches the paper's figures: a Linear layer stores
``weight`` with shape ``(in_features, out_features)`` so the forward pass is
``x @ W + b`` — the same orientation the systolic array consumes after
column partitioning.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from .functional import LAYERNORM_EPS
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Affine map ``y = x @ W + b``.

    Attributes:
        weight: ``(in_features, out_features)`` parameter.
        bias: ``(out_features,)`` parameter, or None.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError("Linear features must be positive")
        rng = rng or np.random.default_rng()
        # Xavier/Glorot uniform initialization.
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            rng.uniform(-limit, limit, size=(in_features, out_features)),
            name="weight",
        )
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected last dim {self.in_features}, got {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ShapeError("dropout rate must lie in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalization over the last axis (paper Eq. 6-8).

    Uses the population variance and the paper's epsilon of 1e-8.
    """

    def __init__(self, width: int, eps: float = LAYERNORM_EPS) -> None:
        super().__init__()
        if width <= 0:
            raise ShapeError("LayerNorm width must be positive")
        self.width = width
        self.eps = eps
        self.gamma = Parameter(np.ones(width), name="gamma")
        self.beta = Parameter(np.zeros(width), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.width:
            raise ShapeError(
                f"LayerNorm expected width {self.width}, got {x.shape}"
            )
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv_std = (var + self.eps) ** -0.5
        return centered * inv_std * self.gamma + self.beta
