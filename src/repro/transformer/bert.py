"""Encoder-only (BERT-style) models.

Section II-B of the paper argues the accelerator matters *because* the
BERT family — BERT, T5, ERNIE, StructBERT — is built from the same two
ResBlocks and dominates the GLUE leaderboard.  This module provides the
encoder-only substrate those claims refer to: a BERT-style classifier
(embeddings -> encoder stack -> [CLS] pooler -> classification head) whose
every ResBlock is exactly the structure the accelerator executes.

Works with the encoder-only Table I presets (``bert_base``,
``bert_large``) and any custom :class:`ModelConfig` with
``num_decoder_layers == 0`` (decoder layers, if present, are ignored).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..errors import ShapeError
from .embedding import Embedding, PositionalEncoding
from .encoder import Encoder
from .layers import Dropout, Linear
from .masks import padding_mask
from .module import Module
from .tensor import Tensor


class EncoderOnlyClassifier(Module):
    """BERT-style sequence classifier.

    The input convention mirrors BERT: position 0 carries a [CLS] token
    whose final hidden state feeds the pooler + classification head.

    Attributes:
        config: Model hyper-parameters (decoder depth ignored).
        num_classes: Output label count.
    """

    def __init__(
        self,
        config: ModelConfig,
        vocab_size: int,
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_classes < 2:
            raise ShapeError("need at least two classes")
        rng = rng or np.random.default_rng()
        self.config = config
        self.num_classes = num_classes
        self.embed = Embedding(vocab_size, config.d_model, rng=rng)
        self.positional = PositionalEncoding(config.max_seq_len,
                                             config.d_model)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.encoder = Encoder(config, rng=rng)
        self.pooler = Linear(config.d_model, config.d_model, rng=rng)
        self.classifier = Linear(config.d_model, num_classes, rng=rng)

    def encode(
        self,
        token_ids: np.ndarray,
        lengths: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Run the encoder stack; returns ``(batch, s, d_model)`` states."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ShapeError("token_ids must be (batch, seq_len)")
        mask = None
        if lengths is not None:
            mask = padding_mask(np.asarray(lengths), token_ids.shape[1])
        x = self.embed_dropout(self.positional(self.embed(token_ids)))
        return self.encoder(x, mask)

    def forward(
        self,
        token_ids: np.ndarray,
        lengths: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Class logits ``(batch, num_classes)`` from the [CLS] state."""
        states = self.encode(token_ids, lengths)
        cls_state = states[:, 0, :]
        pooled = self.pooler(cls_state).tanh()
        return self.classifier(pooled)

    def predict(
        self,
        token_ids: np.ndarray,
        lengths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Hard label predictions ``(batch,)``."""
        return self.forward(token_ids, lengths).numpy().argmax(axis=-1)
