"""Autoregressive decoding: greedy and beam search.

Used by the synthetic-NMT evaluation to turn the (FP32 or quantized)
Transformer into translations whose BLEU we report, mirroring the paper's
IWSLT evaluation protocol ("tst2014", greedy/beam decode, BLEU).

Both decoders work with any model object exposing ``encode``/``decode``/
``generator`` plus ``build_masks`` — the golden :class:`Transformer` and
the quantized model both satisfy this protocol.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import DecodingError


@dataclass(frozen=True)
class DecodeResult:
    """One decoded sequence with its accumulated log probability."""

    tokens: list[int]
    score: float


def _check_special_ids(bos_id: int, eos_id: int) -> None:
    if bos_id < 0 or eos_id < 0:
        raise DecodingError("bos/eos ids must be non-negative")


def greedy_decode(
    model,
    src_ids: np.ndarray,
    src_lengths: Sequence[int],
    bos_id: int,
    eos_id: int,
    max_len: int = 64,
) -> list[DecodeResult]:
    """Greedy (argmax) decoding of a batch.

    Args:
        model: Object with ``encode``/``decode``/``generator``/``build_masks``.
        src_ids: ``(batch, s)`` source token ids (padded).
        src_lengths: Valid length of each source row.
        bos_id / eos_id: Begin/end sentence ids.
        max_len: Maximum target length (excluding BOS).
    """
    _check_special_ids(bos_id, eos_id)
    src_ids = np.asarray(src_ids)
    batch, src_len = src_ids.shape
    src_lengths = np.asarray(src_lengths)
    enc_mask, _, _ = model.build_masks(src_lengths, 1, src_len)
    memory = model.encode(src_ids, enc_mask)

    tokens = np.full((batch, 1), bos_id, dtype=np.int64)
    scores = np.zeros(batch)
    finished = np.zeros(batch, dtype=bool)
    for _ in range(max_len):
        tgt_len = tokens.shape[1]
        _, dec_self, cross = model.build_masks(src_lengths, tgt_len, src_len)
        states = model.decode(tokens, memory, dec_self, cross)
        logits = model.generator(states).numpy()[:, -1, :]
        log_probs = logits - _log_sum_exp(logits)
        next_tokens = log_probs.argmax(axis=-1)
        step_scores = log_probs[np.arange(batch), next_tokens]
        next_tokens = np.where(finished, eos_id, next_tokens)
        scores += np.where(finished, 0.0, step_scores)
        tokens = np.concatenate([tokens, next_tokens[:, None]], axis=1)
        finished |= next_tokens == eos_id
        if finished.all():
            break

    results = []
    for row, score in zip(tokens, scores):
        out = []
        for token in row[1:]:
            if token == eos_id:
                break
            out.append(int(token))
        results.append(DecodeResult(tokens=out, score=float(score)))
    return results


def _log_sum_exp(logits: np.ndarray) -> np.ndarray:
    m = logits.max(axis=-1, keepdims=True)
    return m + np.log(np.exp(logits - m).sum(axis=-1, keepdims=True))


def beam_search_decode(
    model,
    src_ids: np.ndarray,
    src_lengths: Sequence[int],
    bos_id: int,
    eos_id: int,
    beam_size: int = 4,
    max_len: int = 64,
    length_penalty: float = 0.6,
) -> list[DecodeResult]:
    """Beam search with GNMT length normalization, one sentence at a time.

    Returns the single best hypothesis per batch row.
    """
    _check_special_ids(bos_id, eos_id)
    if beam_size < 1:
        raise DecodingError("beam_size must be >= 1")
    src_ids = np.asarray(src_ids)
    results = []
    for row, length in zip(src_ids, np.asarray(src_lengths)):
        results.append(
            _beam_search_single(
                model, row, int(length), bos_id, eos_id,
                beam_size, max_len, length_penalty,
            )
        )
    return results


def _length_norm(length: int, alpha: float) -> float:
    return ((5.0 + length) / 6.0) ** alpha


def _beam_search_single(
    model,
    src_row: np.ndarray,
    src_length: int,
    bos_id: int,
    eos_id: int,
    beam_size: int,
    max_len: int,
    alpha: float,
) -> DecodeResult:
    src = src_row[None, :]
    src_len = src.shape[1]
    lengths = np.array([src_length])
    enc_mask, _, _ = model.build_masks(lengths, 1, src_len)
    memory = model.encode(src, enc_mask)
    memory_data = memory.numpy()

    beams = [([bos_id], 0.0)]
    completed: list[DecodeResult] = []
    for _ in range(max_len):
        if not beams:
            break
        tgt_len = len(beams[0][0])
        tokens = np.array([b[0] for b in beams], dtype=np.int64)
        expanded = type(memory)(np.repeat(memory_data, len(beams), axis=0))
        beam_lengths = np.repeat(lengths, len(beams))
        _, dec_self, cross = model.build_masks(beam_lengths, tgt_len, src_len)
        states = model.decode(tokens, expanded, dec_self, cross)
        logits = model.generator(states).numpy()[:, -1, :]
        log_probs = logits - _log_sum_exp(logits)

        candidates = []
        for (seq, score), row_lp in zip(beams, log_probs):
            top = np.argsort(row_lp)[::-1][: beam_size * 2]
            for token in top:
                candidates.append((seq + [int(token)], score + row_lp[token]))
        candidates.sort(key=lambda c: c[1], reverse=True)

        beams = []
        for seq, score in candidates:
            if seq[-1] == eos_id:
                norm = _length_norm(len(seq) - 1, alpha)
                completed.append(
                    DecodeResult(tokens=seq[1:-1], score=score / norm)
                )
            elif len(beams) < beam_size:
                beams.append((seq, score))
            if len(beams) == beam_size:
                break
        if len(completed) >= beam_size:
            break

    if not completed:
        # No beam reached EOS within max_len; keep the best open beam.
        seq, score = max(beams, key=lambda b: b[1])
        return DecodeResult(
            tokens=seq[1:], score=score / _length_norm(len(seq), alpha)
        )
    return max(completed, key=lambda r: r.score)
