"""Position-wise feed-forward ResBlock (paper Eq. 2).

``FFN(x) = ReLU(x W1 + b1) W2 + b2`` followed by the residual LayerNorm.
The 64-column blocks of ``W1`` (4h of them) and ``W2`` (h of them) from the
paper's Fig. 4 are exposed for the accelerator's weight loader.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from .layers import Dropout, LayerNorm, Linear
from .module import Module
from .tensor import Tensor


class PositionwiseFFN(Module):
    """Two linear sublayers with a ReLU between them."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.d_model = d_model
        self.d_ff = d_ff
        self.linear1 = Linear(d_model, d_ff, rng=rng)
        self.linear2 = Linear(d_ff, d_model, rng=rng)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        return self.linear2(self.dropout(self.linear1(x).relu()))

    def w1_block(self, index: int, block_cols: int = 64) -> np.ndarray:
        """The 64-column block ``W1_index`` of Fig. 4 (index in [0, 4h))."""
        blocks = self.d_ff // block_cols
        if not 0 <= index < blocks:
            raise ShapeError(f"W1 block {index} out of range [0, {blocks})")
        start = index * block_cols
        return self.linear1.weight.data[:, start:start + block_cols]

    def b1_block(self, index: int, block_cols: int = 64) -> np.ndarray:
        """Bias slice matching :meth:`w1_block`."""
        blocks = self.d_ff // block_cols
        if not 0 <= index < blocks:
            raise ShapeError(f"b1 block {index} out of range [0, {blocks})")
        start = index * block_cols
        return self.linear1.bias.data[start:start + block_cols]

    def w2_block(self, index: int, block_cols: int = 64) -> np.ndarray:
        """The 64-column block ``W2_index`` of Fig. 4 (index in [0, h))."""
        blocks = self.d_model // block_cols
        if not 0 <= index < blocks:
            raise ShapeError(f"W2 block {index} out of range [0, {blocks})")
        start = index * block_cols
        return self.linear2.weight.data[:, start:start + block_cols]

    def b2_block(self, index: int, block_cols: int = 64) -> np.ndarray:
        """Bias slice matching :meth:`w2_block`."""
        blocks = self.d_model // block_cols
        if not 0 <= index < blocks:
            raise ShapeError(f"b2 block {index} out of range [0, {blocks})")
        start = index * block_cols
        return self.linear2.bias.data[start:start + block_cols]


class FFNResBlock(Module):
    """``LayerNorm(x + FFN(x))`` — the FFN ResBlock of Eq. (2)."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.ffn = PositionwiseFFN(d_model, d_ff, dropout, rng=rng)
        self.norm = LayerNorm(d_model)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        return self.norm(x + self.dropout(self.ffn(x)))
