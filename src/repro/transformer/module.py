"""Minimal Module/Parameter system on top of the autograd :class:`Tensor`.

Mirrors the familiar container pattern: attributes that are
:class:`Parameter` or :class:`Module` instances are auto-registered, and
``state_dict`` round-trips weights by dotted path — which is also how the
quantizer and the accelerator's weight loader address individual matrices.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..errors import ShapeError
from .tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by construction)."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(np.asarray(data, dtype=np.float64),
                         requires_grad=True, name=name)


class Module:
    """Base class for all layers; tracks sub-modules and parameters."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for key, param in self._parameters.items():
            yield (f"{prefix}{key}", param)
        for key, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{key}.")

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear all accumulated gradients."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Mode switches
    # ------------------------------------------------------------------
    def train(self) -> Module:
        """Enable training mode (dropout active) recursively."""
        object.__setattr__(self, "training", True)
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> Module:
        """Enable inference mode (dropout off) recursively."""
        object.__setattr__(self, "training", False)
        for module in self._modules.values():
            module.eval()
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters in place; shapes must match exactly."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ShapeError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            param = params[name]
            value = np.asarray(value, dtype=np.float64)
            if value.shape != param.data.shape:
                raise ShapeError(
                    f"parameter {name}: expected shape {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data[...] = value

    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
