"""From-scratch numpy Transformer: autograd, layers, full model, decoding.

This subpackage is the *golden model* substrate: everything the paper's
evaluation assumes already exists (a trained Transformer, its ResBlocks,
masks, decoding, BLEU-ready translations) implemented on plain numpy.
"""

from .attention import (
    MHAResBlock,
    MultiHeadAttention,
    ScaledDotProductAttention,
    merge_heads,
    split_heads,
)
from .bert import EncoderOnlyClassifier
from .decoder import Decoder, DecoderLayer
from .decoding import DecodeResult, beam_search_decode, greedy_decode
from .embedding import Embedding, PositionalEncoding, sinusoidal_encoding
from .encoder import Encoder, EncoderLayer
from .ffn import FFNResBlock, PositionwiseFFN
from .incremental import IncrementalDecoder, greedy_decode_incremental
from .layers import Dropout, LayerNorm, Linear
from .masks import causal_mask, combine_masks, cross_attention_mask, padding_mask
from .model import Transformer
from .module import Module, Parameter
from .optim import Adam, NoamSchedule, cross_entropy
from .tensor import Tensor, concatenate, embedding_lookup

__all__ = [
    "Adam",
    "DecodeResult",
    "Decoder",
    "DecoderLayer",
    "Dropout",
    "Embedding",
    "Encoder",
    "EncoderOnlyClassifier",
    "EncoderLayer",
    "FFNResBlock",
    "IncrementalDecoder",
    "LayerNorm",
    "Linear",
    "MHAResBlock",
    "Module",
    "MultiHeadAttention",
    "NoamSchedule",
    "Parameter",
    "PositionalEncoding",
    "PositionwiseFFN",
    "ScaledDotProductAttention",
    "Tensor",
    "Transformer",
    "beam_search_decode",
    "causal_mask",
    "combine_masks",
    "concatenate",
    "cross_attention_mask",
    "cross_entropy",
    "embedding_lookup",
    "greedy_decode",
    "greedy_decode_incremental",
    "merge_heads",
    "padding_mask",
    "sinusoidal_encoding",
    "split_heads",
]
