"""Multi-head attention ResBlock (paper Fig. 2, Eq. 1).

The projections are stored as full ``(d_model, d_model)`` matrices; the
per-head ``W_Qi / W_Ki / W_Vi`` of the paper's Fig. 3 are their contiguous
64-column blocks, exposed via :meth:`MultiHeadAttention.head_weight` so the
accelerator's weight loader and the partitioner address exactly the blocks
the paper draws.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from .layers import Dropout, LayerNorm, Linear
from .module import Module
from .tensor import Tensor


def split_heads(x: Tensor, num_heads: int) -> Tensor:
    """``(batch, s, d_model) -> (batch, heads, s, d_k)``."""
    batch, seq_len, d_model = x.shape
    if d_model % num_heads:
        raise ShapeError(f"d_model {d_model} not divisible by {num_heads} heads")
    d_k = d_model // num_heads
    return x.reshape(batch, seq_len, num_heads, d_k).transpose(0, 2, 1, 3)


def merge_heads(x: Tensor) -> Tensor:
    """``(batch, heads, s, d_k) -> (batch, s, d_model)`` (the Concat box)."""
    batch, heads, seq_len, d_k = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, seq_len, heads * d_k)


class ScaledDotProductAttention(Module):
    """Eq. (1): ``softmax(mask(Q K^T / sqrt(d_k))) V`` with autograd."""

    def __init__(self, dropout: float = 0.0) -> None:
        super().__init__()
        self.dropout = Dropout(dropout)

    def forward(
        self,
        q: Tensor,
        k: Tensor,
        v: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> tuple[Tensor, Tensor]:
        """Returns ``(context, attention_weights)``."""
        d_k = q.shape[-1]
        logits = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(d_k))
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.ndim == logits.ndim - 1:
                # Per-batch (s_q, s_v) masks broadcast over heads.
                mask = mask[:, None, :, :]
            logits = logits.masked_fill(mask, -1e9)
        weights = logits.softmax(axis=-1)
        weights = self.dropout(weights)
        return weights @ v, weights


class MultiHeadAttention(Module):
    """The MHA sublayer: h parallel heads, concatenated, linearly mixed."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads:
            raise ShapeError(
                f"d_model {d_model} must be divisible by num_heads {num_heads}"
            )
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_k = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)  # W_G in Fig. 3
        self.attention = ScaledDotProductAttention(dropout)

    def head_weight(self, kind: str, head: int) -> np.ndarray:
        """The 64-column weight block ``W_{kind,head}`` of the paper's Fig. 3.

        Args:
            kind: One of ``"q"``, ``"k"``, ``"v"`` (projection blocks,
                columns of the respective matrix) or ``"g"`` (the output
                projection W_G block).
            head: Head index in ``[0, num_heads)``.
        """
        if not 0 <= head < self.num_heads:
            raise ShapeError(f"head {head} out of range [0, {self.num_heads})")
        layers = {
            "q": self.q_proj, "k": self.k_proj,
            "v": self.v_proj, "g": self.out_proj,
        }
        if kind not in layers:
            raise ShapeError(f"kind must be one of {sorted(layers)}")
        start = head * self.d_k
        return layers[kind].weight.data[:, start:start + self.d_k]

    def head_bias(self, kind: str, head: int) -> np.ndarray:
        """The 64-wide bias slice matching :meth:`head_weight`."""
        layers = {
            "q": self.q_proj, "k": self.k_proj,
            "v": self.v_proj, "g": self.out_proj,
        }
        if kind not in layers:
            raise ShapeError(f"kind must be one of {sorted(layers)}")
        if not 0 <= head < self.num_heads:
            raise ShapeError(f"head {head} out of range [0, {self.num_heads})")
        start = head * self.d_k
        return layers[kind].bias.data[start:start + self.d_k]

    def forward(
        self,
        q: Tensor,
        k: Tensor,
        v: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        heads_q = split_heads(self.q_proj(q), self.num_heads)
        heads_k = split_heads(self.k_proj(k), self.num_heads)
        heads_v = split_heads(self.v_proj(v), self.num_heads)
        context, _ = self.attention(heads_q, heads_k, heads_v, mask)
        return self.out_proj(merge_heads(context))


class MHAResBlock(Module):
    """``LayerNorm(q + MHA(q, k, v))`` — the full MHA ResBlock of Fig. 2.

    The residual connection adds the *query* input, matching line 10 of the
    paper's Algorithm 1 (``G_i = P W_Gi + Bias_Gi + Q_i``).
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.mha = MultiHeadAttention(d_model, num_heads, dropout, rng=rng)
        self.norm = LayerNorm(d_model)
        self.dropout = Dropout(dropout)

    def forward(
        self,
        q: Tensor,
        k: Tensor,
        v: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        return self.norm(q + self.dropout(self.mha(q, k, v, mask)))
