"""Attention masks.

The paper's Mask operation (Eq. 1/4) marks *illegal* connections with 1;
legal positions carry 0.  These helpers build the standard Transformer
masks in that convention:

* :func:`padding_mask` — hide PAD key positions.
* :func:`causal_mask` — hide future positions in the decoder self-attention.
* :func:`combine_masks` — logical OR of any number of masks.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from ..errors import ShapeError


def padding_mask(
    lengths: Sequence[int], seq_len: int, num_queries: Optional[int] = None
) -> np.ndarray:
    """Mask of shape ``(batch, num_queries, seq_len)`` hiding padded keys.

    Args:
        lengths: Valid (unpadded) length of each sequence in the batch.
        seq_len: Padded sequence length ``s``.
        num_queries: Rows of the mask; defaults to ``seq_len``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if np.any(lengths < 0) or np.any(lengths > seq_len):
        raise ShapeError(
            f"lengths must lie in [0, {seq_len}], got {lengths.tolist()}"
        )
    num_queries = seq_len if num_queries is None else num_queries
    positions = np.arange(seq_len)
    key_illegal = positions[None, :] >= lengths[:, None]   # (batch, s)
    return np.broadcast_to(
        key_illegal[:, None, :], (len(lengths), num_queries, seq_len)
    ).copy()


def causal_mask(seq_len: int) -> np.ndarray:
    """Upper-triangular mask of shape ``(seq_len, seq_len)``.

    Entry ``(i, j)`` is 1 (illegal) when ``j > i`` so a query may only
    attend to itself and earlier positions.
    """
    if seq_len <= 0:
        raise ShapeError("seq_len must be positive")
    return np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)


def combine_masks(*masks: Optional[np.ndarray]) -> Optional[np.ndarray]:
    """OR together masks (broadcasting); ``None`` inputs are skipped."""
    present = [np.asarray(m, dtype=bool) for m in masks if m is not None]
    if not present:
        return None
    combined = present[0]
    for mask in present[1:]:
        combined = combined | mask
    return combined


def cross_attention_mask(
    target_queries: int, source_lengths: Sequence[int], source_len: int
) -> np.ndarray:
    """Decoder-to-encoder mask hiding padded source positions."""
    return padding_mask(source_lengths, source_len, num_queries=target_queries)
