"""Incremental (KV-cached) autoregressive decoding.

The batch decoder in :mod:`repro.transformer.decoding` re-runs the whole
target prefix every step — simple and correct, but O(t^2) per sentence.
:class:`IncrementalDecoder` caches each decoder layer's self-attention
keys/values and the (fixed) cross-attention projections of the encoder
memory, so each step costs one token's worth of compute.

This is a pure-numpy inference path over the trained model's weights (no
autograd), and the tests verify it is numerically identical to the full
re-run decoder.  It also documents, via :meth:`cache_bytes`, the memory
the accelerator would need to serve autoregressive decoding — a
consideration the paper's batch-1/fixed-s design leaves to future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import DecodingError, ShapeError
from .functional import layer_norm, relu, softmax
from .model import Transformer


def _attention(q, k, v, mask_len: Optional[int] = None):
    """Single-query multi-head attention over cached keys/values.

    Args:
        q: ``(h, 1, d_k)`` query for the new position.
        k: ``(h, t, d_k)`` cached keys.
        v: ``(h, t, d_k)`` cached values.
        mask_len: Only the first ``mask_len`` key positions are legal.
    """
    d_k = q.shape[-1]
    logits = q @ np.swapaxes(k, -1, -2) / np.sqrt(d_k)   # (h, 1, t)
    if mask_len is not None:
        logits[..., mask_len:] = -1e9
    weights = softmax(logits, axis=-1)
    return weights @ v                                    # (h, 1, d_k)


@dataclass
class _LayerCache:
    """Self-attention K/V cache plus precomputed cross-attention K/V."""

    self_k: np.ndarray     # (h, t, d_k), grows along t
    self_v: np.ndarray
    cross_k: np.ndarray    # (h, s, d_k), fixed
    cross_v: np.ndarray


class IncrementalDecoder:
    """Step-by-step decoding with per-layer KV caches.

    Usage::

        dec = IncrementalDecoder(model)
        dec.start(src_ids, src_length)
        logits = dec.step(bos_id)          # logits over the vocabulary
        logits = dec.step(next_token)      # ...

    Only batch size 1 is supported (the paper's operating point).
    """

    def __init__(self, model: Transformer) -> None:
        model.eval()
        self.model = model
        self.config = model.config
        self._caches: list[_LayerCache] = []
        self._memory: Optional[np.ndarray] = None
        self._src_length: Optional[int] = None
        self._position = 0

    # ------------------------------------------------------------------
    def _split(self, x: np.ndarray) -> np.ndarray:
        """``(t, d_model) -> (h, t, d_k)``."""
        t = x.shape[0]
        h = self.config.num_heads
        d_k = self.config.head_dim
        return x.reshape(t, h, d_k).transpose(1, 0, 2)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        """``(h, t, d_k) -> (t, d_model)``."""
        h, t, d_k = x.shape
        return x.transpose(1, 0, 2).reshape(t, h * d_k)

    # ------------------------------------------------------------------
    def start(self, src_ids: np.ndarray, src_length: Optional[int] = None):
        """Encode the source and precompute cross-attention K/V caches."""
        src_ids = np.asarray(src_ids)
        if src_ids.ndim != 1:
            raise ShapeError("start() takes a single unbatched id sequence")
        s = src_ids.shape[0]
        self._src_length = s if src_length is None else int(src_length)
        if not 0 < self._src_length <= s:
            raise DecodingError(
                f"src_length {self._src_length} out of range (1, {s}]"
            )
        from .masks import padding_mask

        enc_mask = padding_mask([self._src_length], s)
        memory = self.model.encode(src_ids[None], enc_mask).numpy()[0]
        self._memory = memory
        self._caches = []
        h = self.config.num_heads
        d_k = self.config.head_dim
        for layer in self.model.decoder.layers:
            cross = layer.cross_attn.mha
            cross_k = memory @ cross.k_proj.weight.data + cross.k_proj.bias.data
            cross_v = memory @ cross.v_proj.weight.data + cross.v_proj.bias.data
            self._caches.append(_LayerCache(
                self_k=np.zeros((h, 0, d_k)),
                self_v=np.zeros((h, 0, d_k)),
                cross_k=self._split(cross_k),
                cross_v=self._split(cross_v),
            ))
        self._position = 0
        return memory

    # ------------------------------------------------------------------
    def step(self, token_id: int) -> np.ndarray:
        """Feed one target token; returns next-token logits ``(vocab,)``."""
        if self._memory is None:
            raise DecodingError("call start() before step()")
        if self._position >= self.config.max_seq_len:
            raise DecodingError("exceeded the model's max_seq_len")
        model = self.model
        # Embed the single token at its position.
        emb = model.tgt_embed(np.array([[token_id]])).numpy()[0, 0]
        emb = emb + model.positional._table[self._position]
        x = emb[None, :]                                  # (1, d_model)

        for layer, cache in zip(model.decoder.layers, self._caches):
            x = self._self_attention_block(layer.self_attn, cache, x)
            x = self._cross_attention_block(layer.cross_attn, cache, x)
            x = self._ffn_block(layer.ffn, x)

        logits = x @ model.generator.weight.data + model.generator.bias.data
        self._position += 1
        return logits[0]

    # ------------------------------------------------------------------
    def _self_attention_block(self, block, cache: _LayerCache,
                              x: np.ndarray) -> np.ndarray:
        mha = block.mha
        q = x @ mha.q_proj.weight.data + mha.q_proj.bias.data
        k = x @ mha.k_proj.weight.data + mha.k_proj.bias.data
        v = x @ mha.v_proj.weight.data + mha.v_proj.bias.data
        cache.self_k = np.concatenate(
            [cache.self_k, self._split(k)], axis=1
        )
        cache.self_v = np.concatenate(
            [cache.self_v, self._split(v)], axis=1
        )
        context = _attention(
            self._split(q), cache.self_k, cache.self_v
        )
        out = (self._merge(context) @ mha.out_proj.weight.data
               + mha.out_proj.bias.data)
        return layer_norm(
            x + out, block.norm.gamma.data, block.norm.beta.data,
            eps=block.norm.eps,
        )

    def _cross_attention_block(self, block, cache: _LayerCache,
                               x: np.ndarray) -> np.ndarray:
        mha = block.mha
        q = x @ mha.q_proj.weight.data + mha.q_proj.bias.data
        context = _attention(
            self._split(q), cache.cross_k, cache.cross_v,
            mask_len=self._src_length,
        )
        out = (self._merge(context) @ mha.out_proj.weight.data
               + mha.out_proj.bias.data)
        return layer_norm(
            x + out, block.norm.gamma.data, block.norm.beta.data,
            eps=block.norm.eps,
        )

    def _ffn_block(self, block, x: np.ndarray) -> np.ndarray:
        ffn = block.ffn
        hidden = relu(x @ ffn.linear1.weight.data + ffn.linear1.bias.data)
        out = hidden @ ffn.linear2.weight.data + ffn.linear2.bias.data
        return layer_norm(
            x + out, block.norm.gamma.data, block.norm.beta.data,
            eps=block.norm.eps,
        )

    # ------------------------------------------------------------------
    def cache_bytes(self, dtype_bytes: int = 1) -> int:
        """Current KV-cache footprint (``dtype_bytes`` = 1 for INT8)."""
        total = 0
        for cache in self._caches:
            total += cache.self_k.size + cache.self_v.size
            total += cache.cross_k.size + cache.cross_v.size
        return total * dtype_bytes


def greedy_decode_incremental(
    model: Transformer,
    src_ids: np.ndarray,
    src_length: int,
    bos_id: int,
    eos_id: int,
    max_len: int = 64,
) -> list[int]:
    """Greedy decoding through the KV-cached path (single sentence)."""
    decoder = IncrementalDecoder(model)
    decoder.start(np.asarray(src_ids), src_length)
    tokens: list[int] = []
    current = bos_id
    for _ in range(max_len):
        logits = decoder.step(current)
        current = int(logits.argmax())
        if current == eos_id:
            break
        tokens.append(current)
    return tokens
