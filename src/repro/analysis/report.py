"""Plain-text table rendering for the benchmark harness.

Every bench prints the rows/series the corresponding paper table or figure
reports, via these helpers, so the console output of
``pytest benchmarks/`` reads like the paper's evaluation section.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ShapeError


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width text table with a title rule."""
    if not headers:
        raise ShapeError("table needs headers")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ShapeError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def deviation_row(
    label: str, measured: float, published: float
) -> list[object]:
    """A (label, measured, published, deviation%) row."""
    if published == 0:
        raise ShapeError("published value must be nonzero")
    pct = 100.0 * (measured / published - 1.0)
    return [label, measured, published, f"{pct:+.1f}%"]
