"""Analysis: Eq. (3) sweeps, report tables, DSE, and roofline models."""

from .dse import (
    DesignPoint,
    enumerate_designs,
    evaluate_design,
    pareto_frontier,
    summarize,
)
from .model_stats import (
    FlopSplit,
    ParameterSplit,
    flop_split,
    parameter_split,
    section2a_claim_holds,
)
from .ratio import RatioPoint, max_ratio_in_scope, ratio_sweep
from .report import deviation_row, render_table
from .roofline import (
    Roofline,
    RooflinePoint,
    accelerator_roofline,
    ffn_point,
    memory_system_roofline,
    mha_point,
    offchip_weights_point,
)

__all__ = [
    "DesignPoint",
    "FlopSplit",
    "ParameterSplit",
    "RatioPoint",
    "Roofline",
    "RooflinePoint",
    "accelerator_roofline",
    "deviation_row",
    "enumerate_designs",
    "evaluate_design",
    "ffn_point",
    "flop_split",
    "max_ratio_in_scope",
    "memory_system_roofline",
    "mha_point",
    "parameter_split",
    "section2a_claim_holds",
    "offchip_weights_point",
    "pareto_frontier",
    "ratio_sweep",
    "render_table",
    "summarize",
]
