"""Roofline analysis of the accelerator and its workloads.

Places the MHA and FFN ResBlocks on a roofline for the paper's design:
peak throughput = ``num_PEs * clock`` MACs/s; memory ceiling from the
weight-stream port (64 bytes/cycle).  Shows *why* the two ResBlocks run
near the compute roof (their weights are resident on-chip and every
operand byte feeds 64 MACs), and what happens to a design whose weights
must stream from off-chip instead — the analysis behind the paper's
"huge memory requirements" motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import AcceleratorConfig, MemoryConfig, ModelConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on the accelerator's roofline.

    Attributes:
        name: Workload label.
        macs: Total multiply-accumulates.
        operand_bytes: Activation + weight bytes touched once each.
        intensity: MACs per operand byte.
        attainable_macs_per_s: min(compute roof, intensity * bandwidth).
        bound: "compute" or "memory".
    """

    name: str
    macs: int
    operand_bytes: int
    intensity: float
    attainable_macs_per_s: float
    bound: str


@dataclass(frozen=True)
class Roofline:
    """The machine's two ceilings.

    Attributes:
        peak_macs_per_s: ``num_PEs * clock``.
        bandwidth_bytes_per_s: Operand stream bandwidth.
    """

    peak_macs_per_s: float
    bandwidth_bytes_per_s: float

    @property
    def ridge_intensity(self) -> float:
        """MACs/byte where the two ceilings intersect."""
        return self.peak_macs_per_s / self.bandwidth_bytes_per_s

    def place(self, name: str, macs: int, operand_bytes: int) -> RooflinePoint:
        if macs <= 0 or operand_bytes <= 0:
            raise ConfigError("macs and operand_bytes must be positive")
        intensity = macs / operand_bytes
        attainable = min(
            self.peak_macs_per_s,
            intensity * self.bandwidth_bytes_per_s,
        )
        bound = "compute" if intensity >= self.ridge_intensity else "memory"
        return RooflinePoint(
            name=name, macs=macs, operand_bytes=operand_bytes,
            intensity=intensity, attainable_macs_per_s=attainable,
            bound=bound,
        )


def accelerator_roofline(
    acc: AcceleratorConfig, stream_bytes_per_cycle: int = None
) -> Roofline:
    """Roofline of the paper's design (on-chip weights).

    Operand bandwidth aggregates the independent on-chip ports feeding the
    SA each cycle: the 64-byte weight stream plus one activation byte per
    row (``seq_len`` bytes) — the Fig. 5 Data/Weight Memory ports.
    """
    if stream_bytes_per_cycle is None:
        stream_bytes_per_cycle = 64 + acc.seq_len
    if stream_bytes_per_cycle <= 0:
        raise ConfigError("stream width must be positive")
    clock_hz = acc.clock_mhz * 1e6
    return Roofline(
        peak_macs_per_s=acc.num_pes * clock_hz,
        bandwidth_bytes_per_s=stream_bytes_per_cycle * clock_hz,
    )


def mha_point(model: ModelConfig, acc: AcceleratorConfig,
              roofline: Roofline) -> RooflinePoint:
    """The MHA ResBlock on the roofline (INT8 operands, counted once)."""
    s = acc.seq_len
    macs = model.mha_macs(s)
    d = model.d_model
    operand_bytes = (
        2 * s * d                       # Q and K=V inputs
        + 4 * d * d                     # the four projection matrices
        + 2 * s * s * model.num_heads   # logits + probabilities
        + s * d                         # output
    )
    return roofline.place("MHA ResBlock", macs, operand_bytes)


def ffn_point(model: ModelConfig, acc: AcceleratorConfig,
              roofline: Roofline) -> RooflinePoint:
    """The FFN ResBlock on the roofline."""
    s = acc.seq_len
    macs = model.ffn_macs(s)
    d, dff = model.d_model, model.d_ff
    operand_bytes = s * d + 2 * d * dff + s * dff + s * d
    return roofline.place("FFN ResBlock", macs, operand_bytes)


def memory_system_roofline(
    acc: AcceleratorConfig, mem: MemoryConfig
) -> Roofline:
    """Roofline with a configured off-chip link as the operand ceiling.

    The accelerator-side counterpart of the hardcoded V100-HBM numbers:
    the compute roof stays ``num_PEs * clock`` and the bandwidth ceiling
    is the link's *sustained* rate (peak x burst efficiency) from
    :class:`~repro.config.MemoryConfig` — so the same
    :mod:`repro.memsys` parameters that stall the scheduler also place
    the workloads on a roofline.
    """
    clock_hz = acc.clock_mhz * 1e6
    return Roofline(
        peak_macs_per_s=acc.num_pes * clock_hz,
        bandwidth_bytes_per_s=mem.effective_bytes_per_s,
    )


def offchip_weights_point(
    model: ModelConfig, acc: AcceleratorConfig,
    dram_bytes_per_s: float = 8.5e9,    # one 32-bit LPDDR4-2133 channel
    mem: Optional[MemoryConfig] = None,
) -> RooflinePoint:
    """The FFN ResBlock if weights streamed from off-chip every pass.

    Quantifies the value of the paper's on-chip weight memory for its
    stated mobile/embedded target: at batch 1 every weight byte feeds
    exactly ``s`` MACs, so intensity collapses to ~s MACs/byte and the
    workload turns memory-bound on an embedded LPDDR interface (and
    break-even at best on a single DDR4 channel).  Pass ``mem`` to use
    a :class:`~repro.config.MemoryConfig`'s sustained bandwidth instead
    of the raw ``dram_bytes_per_s`` figure.
    """
    if mem is not None:
        dram_bytes_per_s = mem.effective_bytes_per_s
    clock_hz = acc.clock_mhz * 1e6
    roofline = Roofline(
        peak_macs_per_s=acc.num_pes * clock_hz,
        bandwidth_bytes_per_s=dram_bytes_per_s,
    )
    s = acc.seq_len
    macs = model.ffn_macs(s)
    weight_bytes = 2 * model.d_model * model.d_ff
    return roofline.place("FFN (off-chip weights)", macs, weight_bytes)
