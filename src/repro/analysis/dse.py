"""Design-space exploration over accelerator configurations.

Enumerates candidate design points (SA rows, clock, LayerNorm schedule,
buffer porting, pass overlap), evaluates each with the cycle, resource and
power models, and extracts the Pareto frontier over (latency, LUTs,
power).  This is the study an architect would run before taping out a
variant of the paper's design for a different operating point.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..config import AcceleratorConfig, ModelConfig
from ..core.power_model import estimate_power
from ..core.resource_model import XCVU13P, estimate_top
from ..core.scheduler import schedule_ffn, schedule_mha
from ..errors import ConfigError


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated accelerator configuration.

    Attributes:
        config: The accelerator parameters.
        mha_cycles / ffn_cycles: Per-ResBlock latency *for the workload*
            (a design with fewer SA rows than the workload's sequence
            length processes it in row chunks, multiplying its cycles).
        layer_latency_us: One encoder layer (MHA + FFN) in microseconds.
        lut / bram / dsp: Top-level resource estimate.
        power_w: Total on-chip power estimate.
        workload_seq_len: The fixed sequence length being served.
    """

    config: AcceleratorConfig
    mha_cycles: int
    ffn_cycles: int
    layer_latency_us: float
    lut: int
    bram: float
    dsp: int
    power_w: float
    workload_seq_len: int = 64

    @property
    def fits_device(self) -> bool:
        return (self.lut <= XCVU13P["lut"]
                and self.bram <= XCVU13P["bram"]
                and self.dsp <= XCVU13P["dsp"])

    def objectives(self) -> tuple[float, float, float]:
        """(latency, LUT, power) — all minimized."""
        return (self.layer_latency_us, float(self.lut), self.power_w)


def evaluate_design(
    model: ModelConfig,
    config: AcceleratorConfig,
    workload_seq_len: int = 64,
) -> DesignPoint:
    """Run all three models on one design point for a fixed workload.

    A design whose SA has fewer rows than ``workload_seq_len`` serves the
    sequence in ``ceil(workload / s)`` row chunks, each a full pass
    schedule — the fair comparison basis across array sizes (otherwise
    small arrays would win every objective simply by computing less).
    """
    if workload_seq_len <= 0:
        raise ConfigError("workload_seq_len must be positive")
    chunks = -(-workload_seq_len // config.seq_len)
    mha = schedule_mha(model, config)
    ffn = schedule_ffn(model, config)
    mha_cycles = mha.total_cycles * chunks
    ffn_cycles = ffn.total_cycles * chunks
    latency = (mha_cycles + ffn_cycles) / config.clock_mhz
    top = estimate_top(model, config)["top"]
    power = estimate_power(model, config)
    return DesignPoint(
        config=config,
        mha_cycles=mha_cycles,
        ffn_cycles=ffn_cycles,
        layer_latency_us=latency,
        lut=top.lut,
        bram=top.bram,
        dsp=top.dsp,
        power_w=power.total_w,
        workload_seq_len=workload_seq_len,
    )


def enumerate_designs(
    model: ModelConfig,
    seq_lens: Sequence[int] = (16, 32, 64, 128),
    clocks_mhz: Sequence[float] = (150.0, 200.0, 250.0),
    layernorm_modes: Sequence[str] = ("step_two",),
    overlap_options: Sequence[bool] = (True,),
    base: AcceleratorConfig = None,
    workload_seq_len: int = 64,
) -> list[DesignPoint]:
    """Evaluate the cross product of the given parameter ranges."""
    if not seq_lens or not clocks_mhz:
        raise ConfigError("empty design-space axes")
    base = AcceleratorConfig() if base is None else base
    points = []
    for s in seq_lens:
        for clock in clocks_mhz:
            for mode in layernorm_modes:
                for overlap in overlap_options:
                    config = dataclasses.replace(
                        base, seq_len=s, clock_mhz=clock,
                        layernorm_mode=mode, pass_overlap=overlap,
                    )
                    points.append(evaluate_design(
                        model, config, workload_seq_len
                    ))
    return points


def pareto_frontier(points: Iterable[DesignPoint]) -> list[DesignPoint]:
    """Non-dominated points under (latency, LUT, power) minimization."""
    points = [p for p in points]
    if not points:
        raise ConfigError("no design points")
    frontier = []
    for candidate in points:
        dominated = False
        for other in points:
            if other is candidate:
                continue
            co, oo = candidate.objectives(), other.objectives()
            if all(o <= c for o, c in zip(oo, co)) and oo != co:
                dominated = True
                break
        if not dominated:
            frontier.append(candidate)
    frontier.sort(key=lambda p: p.layer_latency_us)
    return frontier


def summarize(points: Sequence[DesignPoint]) -> list[dict]:
    """Rows for report tables (one dict per point)."""
    rows = []
    for p in points:
        rows.append({
            "s": p.config.seq_len,
            "clock_mhz": p.config.clock_mhz,
            "ln_mode": p.config.layernorm_mode,
            "latency_us": round(p.layer_latency_us, 1),
            "lut_k": round(p.lut / 1000),
            "power_w": round(p.power_w, 1),
            "fits": p.fits_device,
        })
    return rows
