"""Eq. (3) analysis: the ``Q K^T`` multiply-share sweep."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.partition import qkt_multiply_ratio, qkt_multiply_ratio_exact
from ..errors import ShapeError


@dataclass(frozen=True)
class RatioPoint:
    """One (s, h) evaluation of Eq. (3)."""

    s: int
    h: int
    paper_form: float
    exact_form: float

    @property
    def divergence(self) -> float:
        """Relative difference of the paper's printed simplification."""
        return abs(self.paper_form - self.exact_form) / self.exact_form


def ratio_sweep(
    seq_lens: Sequence[int] = (16, 32, 64, 128),
    heads: Sequence[int] = (8, 12, 16),
) -> list[RatioPoint]:
    """Evaluate Eq. (3) over the paper's relevant (s, h) grid."""
    if not seq_lens or not heads:
        raise ShapeError("sweep needs at least one s and one h")
    points = []
    for h in heads:
        for s in seq_lens:
            points.append(RatioPoint(
                s=s, h=h,
                paper_form=qkt_multiply_ratio(s, h),
                exact_form=qkt_multiply_ratio_exact(s, h),
            ))
    return points


def max_ratio_in_scope(points: list[RatioPoint]) -> float:
    """The largest QK^T share across the sweep (paper: 'very small')."""
    if not points:
        raise ShapeError("no points")
    return max(p.exact_form for p in points)
