"""Parameter and FLOP accounting across a Transformer's components.

Section II-A claims "most of the trainable parameters and the
computations are in these two stacks" (encoder + decoder, i.e. the
MHA/FFN ResBlocks), which justifies accelerating only those.  This module
computes the exact split analytically so the claim can be checked for any
configuration, and a bench reports it for Transformer-base.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class ParameterSplit:
    """Trainable-parameter counts by component."""

    embeddings: int
    resblocks: int
    generator: int

    @property
    def total(self) -> int:
        return self.embeddings + self.resblocks + self.generator

    @property
    def resblock_fraction(self) -> float:
        return self.resblocks / self.total


@dataclass(frozen=True)
class FlopSplit:
    """Forward multiply-accumulate counts by component (one sequence)."""

    embeddings: int
    resblocks: int
    generator: int

    @property
    def total(self) -> int:
        return self.embeddings + self.resblocks + self.generator

    @property
    def resblock_fraction(self) -> float:
        return self.resblocks / self.total


def _per_mha_params(d_model: int) -> int:
    # Four projections with bias + LayerNorm gamma/beta.
    return 4 * (d_model * d_model + d_model) + 2 * d_model


def _per_ffn_params(d_model: int, d_ff: int) -> int:
    return (d_model * d_ff + d_ff) + (d_ff * d_model + d_model) + 2 * d_model


def parameter_split(
    config: ModelConfig,
    src_vocab: int,
    tgt_vocab: int,
    tied_embeddings: bool = False,
    tied_generator: bool = False,
) -> ParameterSplit:
    """Exact trainable-parameter split for an encoder-decoder model.

    Args:
        tied_embeddings: Source and target share one embedding table.
        tied_generator: The output projection reuses the target embedding
            (only its bias is new).  The original Transformer shares all
            three matrices ("Attention Is All You Need" §3.4), which is
            the setting under which Section II-A's claim is evaluated.
    """
    if src_vocab <= 0 or tgt_vocab <= 0:
        raise ConfigError("vocabulary sizes must be positive")
    if (tied_embeddings or tied_generator) and src_vocab != tgt_vocab:
        if tied_embeddings:
            raise ConfigError("tied embeddings require equal vocabularies")
    d, dff = config.d_model, config.d_ff
    embeddings = src_vocab * d
    if not tied_embeddings:
        embeddings += tgt_vocab * d
    mha_blocks = (config.num_encoder_layers
                  + 2 * config.num_decoder_layers)
    ffn_blocks = config.num_encoder_layers + config.num_decoder_layers
    resblocks = (mha_blocks * _per_mha_params(d)
                 + ffn_blocks * _per_ffn_params(d, dff))
    generator = tgt_vocab if tied_generator else d * tgt_vocab + tgt_vocab
    return ParameterSplit(
        embeddings=embeddings, resblocks=resblocks, generator=generator
    )


def flop_split(
    config: ModelConfig,
    tgt_vocab: int,
    src_len: int,
    tgt_len: int,
) -> FlopSplit:
    """Forward MAC split for one (src_len, tgt_len) sequence pair.

    Embedding lookups are gathers (0 MACs); the generator projects every
    decoder position to the vocabulary.
    """
    if src_len <= 0 or tgt_len <= 0:
        raise ConfigError("sequence lengths must be positive")
    enc = config.num_encoder_layers * (
        config.mha_macs(src_len) + config.ffn_macs(src_len)
    )
    dec = config.num_decoder_layers * (
        2 * config.mha_macs(tgt_len) + config.ffn_macs(tgt_len)
    )
    generator = tgt_len * config.d_model * tgt_vocab
    return FlopSplit(
        embeddings=0, resblocks=enc + dec, generator=generator
    )


def section2a_claim_holds(
    config: ModelConfig,
    src_vocab: int = 37_000,     # the paper's IWSLT-scale BPE vocabulary
    tgt_vocab: int = 37_000,
    src_len: int = 64,
    tgt_len: int = 64,
    threshold: float = 0.5,
) -> bool:
    """Whether the ResBlocks hold the majority of parameters AND MACs.

    Evaluated under the original Transformer's three-way weight sharing
    (source/target/generator), its published configuration.
    """
    params = parameter_split(
        config, src_vocab, tgt_vocab,
        tied_embeddings=True, tied_generator=True,
    )
    flops = flop_split(config, tgt_vocab, src_len, tgt_len)
    return (params.resblock_fraction > threshold
            and flops.resblock_fraction > threshold)
