"""Complete Transformer inference on the accelerator (paper future work).

Run:  python examples/full_model_inference.py            (~30 s)

Quantizes a full Transformer-base (6+6 layers, 44M parameters), runs every
one of its 30 ResBlocks through the accelerator simulator with per-layer
weight reloads, verifies the logits are bit-identical to the quantized
reference, compares single- vs double-buffered weight memory, and writes a
Chrome trace of one MHA ResBlock schedule (open in chrome://tracing or
Perfetto).
"""

import numpy as np

from repro.analysis import render_table
from repro.config import AcceleratorConfig, transformer_base
from repro.core import AcceleratedStack, schedule_mha, write_trace
from repro.quant import QuantizedTransformer
from repro.transformer import Transformer


def main() -> None:
    cfg = transformer_base().with_updates(max_seq_len=64, dropout=0.0)
    print(f"building {cfg.name} "
          f"({cfg.num_encoder_layers}+{cfg.num_decoder_layers} layers)...")
    model = Transformer(cfg, 100, 100, rng=np.random.default_rng(0)).eval()
    print(f"  {model.num_parameters():,} parameters")

    quant = QuantizedTransformer(model)
    rng = np.random.default_rng(1)
    src = rng.integers(1, 100, size=(1, 64))
    tgt = rng.integers(1, 100, size=(1, 64))
    quant.calibrate([(src, tgt, np.array([64]))])
    print(f"  quantized ResBlock weights: "
          f"{quant.weight_memory_bytes() / 2**20:.1f} MiB INT8")

    acc = AcceleratorConfig(seq_len=64)
    rows = []
    for label, buffered in (("single weight bank", False),
                            ("double-buffered", True)):
        stack = AcceleratedStack(quant, acc,
                                 double_buffered_weights=buffered)
        logits, report = stack.run_model(src[0], tgt[0])
        ref = quant.forward(src, tgt, np.array([64])).numpy()[0]
        assert np.allclose(logits, ref, atol=1e-9), "divergence!"
        rows.append([
            label, f"{report.compute_cycles:,}",
            f"{report.reload_cycles:,}",
            f"{report.latency_us(acc.clock_mhz) / 1000:.2f}",
        ])
    print()
    print(render_table(
        "Full-model inference (batch 1, s = 64, 200 MHz) — logits verified"
        " bit-identical to the quantized reference",
        ["weight memory", "compute cycles", "exposed reload cycles",
         "latency ms"],
        rows,
    ))

    trace_path = "mha_schedule_trace.json"
    count = write_trace(schedule_mha(cfg, acc), trace_path, acc.clock_mhz)
    print(f"\nwrote {count} trace events to {trace_path} "
          "(open in chrome://tracing)")


if __name__ == "__main__":
    main()
