"""Encoder-only (BERT-style) classification through the accelerator.

Run:  python examples/bert_classification.py              (~15 s)

Section II-B of the paper argues the design serves the whole BERT family.
This example trains a small encoder-only classifier on the synthetic
majority-with-flip task (the offline GLUE stand-in), quantizes it to INT8,
runs its encoder through the accelerator simulator (bit-verified), and
compares accuracy across the quantization steps.
"""

import numpy as np

from repro.analysis import render_table
from repro.config import AcceleratorConfig, ModelConfig
from repro.core import AcceleratedStack, StackReport
from repro.nmt import SyntheticClassificationTask, accuracy, train_classifier
from repro.quant import QuantizedEncoderOnly
from repro.transformer import EncoderOnlyClassifier


def main() -> None:
    task = SyntheticClassificationTask(words_per_group=6, min_len=5,
                                       max_len=10)
    config = ModelConfig(
        "bert-mini", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=2, num_decoder_layers=0,
        max_seq_len=16, dropout=0.0,
    )
    model = EncoderOnlyClassifier(
        config, len(task.vocab), task.num_classes,
        rng=np.random.default_rng(0),
    )
    train = task.make_dataset(800, seed=1)
    test = task.make_dataset(200, seed=2)

    print("training the encoder-only classifier...")
    train_classifier(model, task, train, epochs=12, batch_size=32,
                     lr=2e-3, seed=0)
    fp_acc = accuracy(model, task, test)

    quant = QuantizedEncoderOnly(model)
    ids, lengths, _ = task.encode_batch(train[:64])
    quant.calibrate([(ids, lengths)])
    int8_acc = accuracy(quant, task, test)
    quant.softmax_mode = "hardware"
    hw_acc = accuracy(quant, task, test)
    quant.softmax_mode = "fp32"

    print(render_table(
        "Quantization steps (synthetic GLUE stand-in; chance = 33%)",
        ["step", "accuracy"],
        [["FP32", f"{fp_acc:.1%}"],
         ["INT8", f"{int8_acc:.1%}"],
         ["INT8 + hardware softmax", f"{hw_acc:.1%}"]],
    ))

    # Run one example's encoder on the accelerator and verify.
    seq_len = int(lengths[0])
    acc_cfg = AcceleratorConfig(seq_len=seq_len)
    stack = AcceleratedStack(quant, acc_cfg)
    x = quant._embed_src(ids[:1, :seq_len])[0]
    report = StackReport()
    hw_states = stack.run_encoder(x, report=report)
    ref = quant.encode(ids[:1, :seq_len])[0]
    assert np.array_equal(hw_states, ref)
    print(f"\nencoder ran on the accelerator in {report.total_cycles:,} "
          f"cycles ({report.latency_us(acc_cfg.clock_mhz):.1f} us) — "
          "states bit-identical to the quantized model")


if __name__ == "__main__":
    main()
