"""Compile, ship, and run a deployment image (toolchain workflow demo).

Run:  python examples/deploy_image.py

The workflow a real accelerator deployment would follow:

1. quantize + calibrate the model (the "compiler" frontend);
2. ``save_image`` — emit a standalone .npz artifact (INT8 weight tiles,
   activation scales, LayerNorm parameters);
3. on the "device": ``load_image`` with no framework model present, load
   the tiles into the accelerator, and run — verified bit-identical to
   the original quantized model;
4. draw the ResBlock schedule as an ASCII Gantt chart.
"""

import os
import tempfile

import numpy as np

from repro.config import AcceleratorConfig, ModelConfig
from repro.core import TransformerAccelerator, load_image, save_image
from repro.core.gantt import render_gantt
from repro.quant import QuantizedTransformer
from repro.transformer import Transformer


def main() -> None:
    seq_len = 16
    model_cfg = ModelConfig(
        "deploy-demo", d_model=128, d_ff=512, num_heads=2,
        num_encoder_layers=2, num_decoder_layers=1,
        max_seq_len=seq_len, dropout=0.0,
    )
    rng = np.random.default_rng(7)

    # --- compile side -------------------------------------------------
    fp_model = Transformer(model_cfg, 50, 50, rng=rng).eval()
    quant = QuantizedTransformer(fp_model)
    src = rng.integers(1, 50, size=(2, seq_len))
    tgt = rng.integers(1, 50, size=(2, seq_len))
    quant.calibrate([(src, tgt, np.full(2, seq_len))])

    image_path = os.path.join(tempfile.gettempdir(), "repro_demo.img.npz")
    entries = save_image(quant, image_path)
    size_kib = os.path.getsize(image_path) / 1024
    print(f"compiled image: {entries} entries, {size_kib:.0f} KiB "
          f"-> {image_path}")

    # --- device side (no Transformer object in sight) ------------------
    stacks = load_image(image_path)
    acc_cfg = AcceleratorConfig(seq_len=seq_len)
    hw = TransformerAccelerator(model_cfg, acc_cfg, exact_nonlinear=True)
    hw.load_mha(stacks["enc_mha"][0])
    hw.load_ffn(stacks["enc_ffn"][0])

    x = rng.normal(size=(seq_len, model_cfg.d_model))
    result = hw.run_ffn(hw.run_mha(x).output)

    # Verify against the original quantized model.
    ref = quant.enc_mha[0].forward_int8(x[None], x[None], None)
    ref = quant.enc_ffn[0].forward_int8(ref)[0]
    assert np.array_equal(result.output, ref), "image diverged!"
    print("deployed image output is bit-identical to the quantized model\n")

    print(render_gantt(hw.run_mha(x).schedule, width=90))
    os.remove(image_path)


if __name__ == "__main__":
    main()
