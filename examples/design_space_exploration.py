"""Design-space exploration across the paper's Table I architectures.

Run:  python examples/design_space_exploration.py

For every architecture the paper's partitioning supports (Transformer
base/big, BERT base/large), reports per-ResBlock cycles, full-model
latency, resource footprint and power — then sweeps the sequence length
to show how the s x 64 SA scales, and sweeps the off-chip bandwidth to
find where the design turns memory-bound.  This is the study a
deployment engineer would run before committing to the design.
"""

from repro.analysis import render_table
from repro.config import TABLE1_PRESETS, paper_accelerator
from repro.core import (
    estimate_power,
    estimate_top,
    schedule_ffn,
    schedule_mha,
    schedule_model,
)


def architecture_table() -> None:
    acc = paper_accelerator()
    rows = []
    for config in TABLE1_PRESETS.values():
        totals = schedule_model(config, acc)
        resources = estimate_top(config, acc)["top"]
        power = estimate_power(config, acc)
        full_ms = totals["total_cycles"] / acc.clock_mhz / 1000.0
        rows.append([
            config.name,
            totals["mha_cycles"], totals["ffn_cycles"],
            f"{full_ms:.2f}",
            f"{resources.lut / 1e3:.0f}k", f"{resources.bram:.0f}",
            f"{power.total_w:.1f}",
        ])
    print(render_table(
        "Table I architectures on the 64x64 SA @ 200 MHz",
        ["model", "MHA cycles", "FFN cycles", "full model ms",
         "LUT", "BRAM", "power W"],
        rows,
    ))


def sequence_length_sweep() -> None:
    base = TABLE1_PRESETS["transformer-base"]
    rows = []
    for s in (16, 32, 64, 128):
        acc = paper_accelerator().with_updates(seq_len=s)
        mha = schedule_mha(base, acc)
        ffn = schedule_ffn(base, acc)
        rows.append([
            s, mha.total_cycles, ffn.total_cycles,
            f"{mha.sa_utilization:.1%}", f"{ffn.sa_utilization:.1%}",
            f"{estimate_top(base, acc)['sa'].lut / 1e3:.0f}k",
        ])
    print()
    print(render_table(
        "Sequence-length sweep (SA has s rows; s = 64 is the paper)",
        ["s", "MHA cycles", "FFN cycles", "MHA util", "FFN util",
         "SA LUT"],
        rows,
    ))


def bandwidth_sweep() -> None:
    """Off-chip link axis: stall shares and the bound crossover."""
    from repro.config import MemoryConfig
    from repro.memsys import (
        analyze_memory_system,
        steady_state_crossover_gbps,
    )

    base = TABLE1_PRESETS["transformer-base"]
    acc = paper_accelerator()
    rows = []
    for gbps in (4.0, 8.0, 16.0, 19.2, 32.0, 64.0):
        mem = MemoryConfig(
            bandwidth_gbps=gbps, burst_efficiency=0.8,
            transfer_latency_cycles=24,
        )
        report = analyze_memory_system(base, acc, mem)
        rows.append([
            f"{gbps:g}",
            f"{report.mha.total_cycles:,}",
            f"{report.mha.stall_share:.1%}",
            f"{report.ffn.total_cycles:,}",
            f"{report.ffn.stall_share:.1%}",
            report.bound,
        ])
    crossover = steady_state_crossover_gbps(
        base, acc, burst_efficiency=0.8, transfer_latency_cycles=24
    )
    print()
    print(render_table(
        f"Off-chip bandwidth sweep (crossover {crossover:.1f} GB/s peak; "
        "double-buffered prefetch on)",
        ["GB/s", "MHA cycles", "MHA stall", "FFN cycles", "FFN stall",
         "bound"],
        rows,
    ))


def pareto_study() -> None:
    from repro.analysis import enumerate_designs, pareto_frontier, summarize

    base = TABLE1_PRESETS["transformer-base"]
    points = enumerate_designs(
        base,
        seq_lens=(16, 32, 64, 128),
        clocks_mhz=(150.0, 200.0, 250.0),
        layernorm_modes=("step_two", "straightforward"),
    )
    frontier = pareto_frontier(points)
    rows = [
        [r["s"], r["clock_mhz"], r["ln_mode"], r["latency_us"],
         r["lut_k"], r["power_w"]]
        for r in summarize(frontier)
    ]
    print()
    print(render_table(
        f"Pareto frontier ({len(frontier)} of {len(points)} design points; "
        "latency/LUT/power minimized)",
        ["s", "MHz", "LN mode", "layer us", "LUT k", "W"],
        rows,
    ))


def main() -> None:
    architecture_table()
    sequence_length_sweep()
    bandwidth_sweep()
    pareto_study()


if __name__ == "__main__":
    main()
