"""Fleet-scale serving study: routing policy x autoscaling.

Run:  python examples/cluster_simulation.py

Replays the pinned heterogeneous scenario (two FPGA pools with
different memory systems + one V100 roofline pool; three tenants with
diurnal / steady / bursty arrivals and their own SLOs) under every
router policy, with and without autoscaling — the same seeded
workload for every cell.  The first table shows the fleet-wide trade
(SLO attainment, tail latency, autoscaler activity at equal device
budget when scaling is off); the second breaks the deadline-aware run
down per tenant, where weighted-fair shedding shows up; the third
shows where each pool's traffic landed.
"""

from repro.analysis import render_table
from repro.cluster import pinned_cluster, simulate_cluster
from repro.config import transformer_base

SEED = 2020
REQUESTS_PER_TENANT = 200

POLICIES = ("round_robin", "least_queue", "ewma", "slo")


def sweep() -> None:
    model = transformer_base()

    rows = []
    best = None
    for policy in POLICIES:
        for autoscale in (False, True):
            cluster = pinned_cluster(
                requests_per_tenant=REQUESTS_PER_TENANT,
                router_policy=policy,
                autoscale=autoscale,
                seed=SEED,
            )
            result = simulate_cluster(model, cluster)
            m = result.metrics
            if policy == "slo" and autoscale:
                best = result
            rows.append([
                f"{policy}{'/auto' if autoscale else ''}",
                f"{m.slo_attainment:.1%}",
                f"{m.latency_p50_us / 1e3:.1f}",
                f"{m.latency_p99_us / 1e3:.1f}",
                f"{m.throughput_rps:.0f}",
                f"{m.shed}/{m.rejected}/{m.expired}",
                f"+{m.autoscale_ups}/-{m.autoscale_downs}",
            ])
    print(render_table(
        f"pinned scenario — 3 pools, 3 tenants, "
        f"{REQUESTS_PER_TENANT} req/tenant, seed {SEED}",
        ["policy", "SLO attain", "p50 ms", "p99 ms", "req/s",
         "shed/rej/exp", "scale +/-"],
        rows,
    ))
    print()

    assert best is not None
    m = best.metrics
    tenant_rows = [
        [name,
         f"{t.offered}",
         f"{t.slo_attainment:.1%}",
         f"{t.latency_p99_us / 1e3:.1f}",
         f"{t.shed}/{t.rejected}/{t.expired}"]
        for name, t in m.tenants.items()
    ]
    print(render_table(
        "per tenant under slo/auto (diurnal, steady, bursty streams)",
        ["tenant", "offered", "SLO attain", "p99 ms", "shed/rej/exp"],
        tenant_rows,
    ))
    print()

    pool_rows = [
        [name,
         f"{p.routed}",
         f"{p.mean_batch_size:.1f}",
         f"{p.busy_fraction:.0%}",
         f"{p.peak_devices}/{p.final_devices}",
         f"{p.weight_cache_hit_rate:.0%}"]
        for name, p in m.pools.items()
    ]
    print(render_table(
        "per pool under slo/auto (routing follows predicted completion)",
        ["pool", "routed", "batch", "busy", "peak/final dev",
         "cache hit"],
        pool_rows,
    ))


if __name__ == "__main__":
    sweep()
