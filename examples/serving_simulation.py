"""Latency/throughput study of serving policies on the accelerator.

Run:  python examples/serving_simulation.py

Sweeps the dynamic-batching policy against the batch-1 baseline over a
range of Poisson arrival rates — the same seeded workload for every
policy at each rate — and shows where each configuration saturates,
how much SA-row occupancy the batcher recovers from the ``s x 64``
padding, and what a second device or layer-sharded pipeline buys.
Everything is driven by the cycle-accurate Algorithm 1 schedules, so
these are the numbers the real hardware's serving tier would see.
"""

from repro.analysis import render_table
from repro.config import ServingConfig, paper_accelerator, transformer_base
from repro.serving import simulate_serving

SEED = 2020
RATES_RPS = (200.0, 800.0, 2000.0)

POLICIES = (
    ("batch-1", dict(max_batch_requests=1)),
    ("dynamic x4", dict(max_batch_requests=4, max_wait_us=1000.0)),
    ("dynamic x8", dict(max_batch_requests=8, max_wait_us=1000.0)),
    ("dynamic x8, 2 dev", dict(max_batch_requests=8, max_wait_us=1000.0,
                               num_devices=2)),
    ("dynamic x8, shard x4", dict(max_batch_requests=8, max_wait_us=1000.0,
                                  num_devices=4, placement="layer_shard")),
)


def sweep() -> None:
    model = transformer_base()
    acc = paper_accelerator()
    for rate in RATES_RPS:
        rows = []
        for name, overrides in POLICIES:
            serving = ServingConfig(
                arrival_rate_rps=rate, num_requests=200,
                min_len=8, max_len=32, seed=SEED, **overrides,
            )
            m = simulate_serving(model, acc, serving).metrics
            rows.append([
                name,
                f"{m.throughput_rps:.0f}",
                f"{m.latency_p50_us / 1e3:.1f}",
                f"{m.latency_p99_us / 1e3:.1f}",
                f"{m.rejection_rate:.0%}",
                f"{m.occupancy:.0%}",
                f"{m.sa_utilization:.0%}",
                f"{m.mean_batch_size:.1f}",
            ])
        print(render_table(
            f"offered load {rate:.0f} req/s — Transformer-base, s=64, "
            "uniform 8-32 tokens",
            ["policy", "req/s", "p50 ms", "p99 ms", "rej",
             "occupancy", "SA util", "batch"],
            rows,
        ))
        print()


if __name__ == "__main__":
    sweep()
