"""Quickstart: size up the accelerator for Transformer-base in ~20 lines.

Run:  python examples/quickstart.py

Builds the paper's operating point (64x64 systolic array, 200 MHz, INT8),
schedules both ResBlocks with Algorithm 1, and prints latency, utilization
and the GPU speedup — the headline numbers of Tables II/III.
"""

from repro.analysis import render_table
from repro.config import paper_accelerator, transformer_base
from repro.core import (
    estimate_power,
    estimate_top,
    schedule_ffn,
    schedule_mha,
)
from repro.gpu_model import ffn_latency_us, mha_latency_us, v100_batch1


def main() -> None:
    model = transformer_base()
    acc = paper_accelerator()
    gpu = v100_batch1()

    rows = []
    for name, schedule, gpu_us in (
        ("MHA ResBlock", schedule_mha(model, acc),
         mha_latency_us(model, acc.seq_len, gpu)),
        ("FFN ResBlock", schedule_ffn(model, acc),
         ffn_latency_us(model, acc.seq_len, gpu)),
    ):
        fpga_us = schedule.latency_us(acc.clock_mhz)
        rows.append([
            name, schedule.total_cycles, f"{fpga_us:.1f}",
            f"{schedule.sa_utilization:.1%}", f"{gpu_us:.1f}",
            f"{gpu_us / fpga_us:.1f}x",
        ])
    print(render_table(
        f"{model.name} on the {acc.seq_len}x{acc.sa_cols} SA @ "
        f"{acc.clock_mhz:.0f} MHz",
        ["block", "cycles", "FPGA us", "SA util", "GPU us", "speed-up"],
        rows,
    ))

    top = estimate_top(model, acc)["top"]
    power = estimate_power(model, acc)
    print(f"\nresources: {top.lut:,} LUT, {top.registers:,} registers, "
          f"{top.bram:.0f} BRAM, {top.dsp} DSP")
    print(f"power: {power.total_w:.1f} W total "
          f"({power.dynamic_w:.1f} dynamic + {power.static_w:.1f} static)")


if __name__ == "__main__":
    main()
