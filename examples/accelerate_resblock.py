"""Run real data through the accelerator simulator, bit-for-bit.

Run:  python examples/accelerate_resblock.py

Builds a quantized 2-head model, loads its encoder-layer weights into the
accelerator (Fig. 4/5: partitioned INT8 tiles in weight memory), executes
Algorithm 1 for both ResBlocks, verifies the outputs are bit-identical to
the quantized reference, and prints the cycle-level event timeline.
"""

import numpy as np

from repro.analysis import render_table
from repro.config import AcceleratorConfig, ModelConfig
from repro.core import TransformerAccelerator
from repro.quant import QuantizedTransformer
from repro.transformer import Transformer


def main() -> None:
    rng = np.random.default_rng(2020)
    seq_len = 16
    model_cfg = ModelConfig(
        "demo", d_model=128, d_ff=512, num_heads=2,
        num_encoder_layers=1, num_decoder_layers=1,
        max_seq_len=seq_len, dropout=0.0,
    )
    acc_cfg = AcceleratorConfig(seq_len=seq_len)

    # A quantized model (random weights are fine for a datapath demo).
    fp_model = Transformer(model_cfg, 30, 30, rng=rng).eval()
    quant = QuantizedTransformer(fp_model)
    src = rng.integers(1, 30, size=(2, seq_len))
    tgt = rng.integers(1, 30, size=(2, seq_len))
    quant.calibrate([(src, tgt, np.full(2, seq_len))])

    hw = TransformerAccelerator(model_cfg, acc_cfg, exact_nonlinear=True)
    hw.load_mha(quant.enc_mha[0])
    hw.load_ffn(quant.enc_ffn[0])
    print(f"weight memory: {hw.weight_memory.capacity_bits // 8:,} bytes in "
          f"{hw.weight_memory.bram_banks} BRAM36 banks")

    x = rng.normal(size=(seq_len, model_cfg.d_model))
    mha = hw.run_mha(x)
    ffn = hw.run_ffn(mha.output)

    # Bit-exactness against the quantized reference model.
    ref = quant.enc_mha[0].forward_int8(x[None], x[None], None)
    ref = quant.enc_ffn[0].forward_int8(ref)[0]
    assert np.array_equal(ffn.output, ref), "accelerator diverged!"
    print("accelerator output is bit-identical to the quantized model\n")

    rows = [
        [e.name, e.unit, e.start, e.end, e.duration]
        for e in mha.schedule.events[:14]
    ]
    print(render_table(
        f"MHA timeline (first 14 events of {len(mha.schedule.events)}; "
        f"total {mha.cycles:,} cycles)",
        ["event", "unit", "start", "end", "cycles"],
        rows,
    ))
    print(f"\nFFN ResBlock: {ffn.cycles:,} cycles "
          f"({ffn.schedule.latency_us(acc_cfg.clock_mhz):.2f} us at "
          f"{acc_cfg.clock_mhz:.0f} MHz, "
          f"SA utilization {ffn.schedule.sa_utilization:.1%})")


if __name__ == "__main__":
    main()
