"""The Section V-A study in miniature: train, translate, quantize, re-score.

Run:  python examples/translate_and_quantize.py          (~1 minute)

1. Trains a small Transformer (numpy autograd) on the synthetic
   cipher+reverse translation task — the offline stand-in for IWSLT'16.
2. Greedy-decodes a few test sentences and prints them.
3. Quantizes the model in the paper's two steps (INT8, then INT8 with the
   hardware EXP/LN-unit softmax) and reports BLEU after each step.
"""

import numpy as np

from repro.analysis import render_table
from repro.config import ModelConfig
from repro.nmt import (
    SyntheticTranslationTask,
    encode_pairs,
    evaluate_bleu,
    train_model,
)
from repro.quant import QuantizedTransformer, SOFTMAX_HARDWARE
from repro.transformer import Transformer, greedy_decode


def main() -> None:
    task = SyntheticTranslationTask(num_words=24, min_len=4, max_len=10)
    config = ModelConfig(
        "nmt-example", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=2, num_decoder_layers=2,
        max_seq_len=24, dropout=0.0,
    )
    model = Transformer(
        config, len(task.src_vocab), len(task.tgt_vocab),
        rng=np.random.default_rng(42),
    )
    train, valid, test = task.splits(train=1600, valid=100, test=100, seed=7)

    print("training (numpy autograd, ~1500 pairs)...")
    log = train_model(model, task, train, epochs=16, batch_size=32,
                      warmup=300, lr_factor=2.0, seed=3)
    print(f"final training loss: {log.final_loss:.3f}\n")

    # Show a few translations.
    sample = test[:3]
    batch = encode_pairs(sample, task.src_vocab, task.tgt_vocab)
    results = greedy_decode(
        model, batch.src, batch.src_lengths,
        bos_id=task.tgt_vocab.bos_id, eos_id=task.tgt_vocab.eos_id,
        max_len=task.max_len + 4,
    )
    for pair, result in zip(sample, results):
        print(f"  source:    {' '.join(pair.source)}")
        print(f"  reference: {' '.join(pair.target)}")
        print(f"  model:     {' '.join(task.tgt_vocab.decode(result.tokens))}")
        print()

    # The two-step quantization study.
    fp32 = evaluate_bleu(model, task, test)
    qt = QuantizedTransformer(model)
    calib = encode_pairs(valid, task.src_vocab, task.tgt_vocab)
    qt.calibrate([(calib.src, calib.tgt_in, calib.src_lengths)])
    int8 = evaluate_bleu(qt, task, test)
    qt.softmax_mode = SOFTMAX_HARDWARE
    hw = evaluate_bleu(qt, task, test)

    print(render_table(
        "Quantization study (paper: 23.88 -> 23.48 -> 23.57 on IWSLT)",
        ["step", "BLEU"],
        [
            ["FP32 baseline", f"{fp32:.2f}"],
            ["step 1: INT8 weights+activations", f"{int8:.2f}"],
            ["step 2: + hardware softmax", f"{hw:.2f}"],
        ],
    ))


if __name__ == "__main__":
    main()
