"""Fault-injection campaign over the accelerator's datapath.

Run:  python examples/fault_campaign.py

Sweeps seeded faults (bit flips, multi-bit upsets, stuck-at cells) over
the systolic-array datapath, the on-chip weight/data memories and the
EXP/iSQRT units, with and without ABFT checksum protection, and prints:

* per-site detection / correction / silent-corruption rates;
* the schedule-level cycle cost of turning ABFT on at the paper's
  operating point (one extra guard row and column plus the drain the
  drain-time comparator exposes);
* what ABFT buys the serving tier — silently corrupted responses
  become detected retries.
"""

from repro.analysis import render_table
from repro.config import ServingConfig, paper_accelerator, transformer_base
from repro.reliability import (
    CampaignSpec,
    abft_cycle_overhead,
    run_campaign,
)
from repro.serving import simulate_serving

SITES = ("sa_accumulator", "sa_multiplier", "weight_memory",
         "data_memory", "exp_unit")


def campaign_tables() -> None:
    for abft in (True, False):
        spec = CampaignSpec(trials=24, sites=SITES, abft=abft, seed=2020)
        result = run_campaign(spec)
        rows = [
            [site, mode, f"{rate:g}", str(injected),
             f"{detect:.0%}", f"{correct:.0%}", f"{silent:.0%}",
             f"{err:g}"]
            for site, mode, rate, injected, detect, correct, silent, err
            in result.summary_rows()
        ]
        print(render_table(
            f"fault campaign — 64 x 64 x 64 GEMM tiles, "
            f"ABFT {'on' if abft else 'off'}",
            ["site", "mode", "rate", "inj", "detect", "correct",
             "silent", "max err"],
            rows,
        ))
        print()


def overhead_table() -> None:
    overhead = abft_cycle_overhead(transformer_base(), paper_accelerator())
    print(render_table(
        "ABFT schedule cost — Transformer-base ResBlock pair, s=64",
        ["metric", "value"],
        [
            ["baseline cycles", f"{overhead.baseline_cycles:,}"],
            ["protected cycles", f"{overhead.protected_cycles:,}"],
            ["overhead cycles", f"{overhead.overhead_cycles:,}"],
            ["overhead", f"{overhead.overhead_fraction:.2%}"],
        ],
    ))
    print()


def serving_comparison() -> None:
    model = transformer_base()
    rows = []
    for name, acc in (
        ("no ABFT", paper_accelerator()),
        ("ABFT", paper_accelerator().with_updates(abft_protected=True)),
    ):
        serving = ServingConfig(
            arrival_rate_rps=1200.0, num_requests=120,
            min_len=8, max_len=32, seed=2020,
            max_batch_requests=8, max_wait_us=1000.0,
            batch_fault_rate=0.2, max_retries=3,
        )
        m = simulate_serving(model, acc, serving).metrics
        rows.append([
            name, str(m.completed), str(m.corrupted), str(m.retried),
            str(m.failed), f"{m.latency_p99_us / 1e3:.1f}",
        ])
    print(render_table(
        "serving under a 20% per-batch fault rate",
        ["config", "completed", "corrupted", "retried", "failed",
         "p99 ms"],
        rows,
    ))


if __name__ == "__main__":
    campaign_tables()
    overhead_table()
    serving_comparison()
