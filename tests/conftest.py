"""Shared fixtures: tiny configs, a trained toy model, calibrated quant model.

Expensive artifacts (the trained synthetic-NMT model) are session-scoped so
the whole suite pays for training once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AcceleratorConfig, ModelConfig
from repro.nmt import SyntheticTranslationTask, train_model
from repro.quant import QuantizedTransformer
from repro.transformer import Transformer


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_model_config() -> ModelConfig:
    """One 64-wide head, one layer each — fastest valid config."""
    return ModelConfig(
        "tiny", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=1, num_decoder_layers=1,
        max_seq_len=16, dropout=0.0,
    )


@pytest.fixture
def small_model_config() -> ModelConfig:
    """Two 64-wide heads — exercises head partitioning."""
    return ModelConfig(
        "small", d_model=128, d_ff=512, num_heads=2,
        num_encoder_layers=1, num_decoder_layers=1,
        max_seq_len=16, dropout=0.0,
    )


@pytest.fixture
def small_acc_config() -> AcceleratorConfig:
    return AcceleratorConfig(seq_len=12)


@pytest.fixture
def small_transformer(small_model_config, rng) -> Transformer:
    return Transformer(small_model_config, src_vocab_size=30,
                       tgt_vocab_size=30, rng=rng).eval()


@pytest.fixture
def calibrated_quant(small_transformer, rng):
    """A calibrated QuantizedTransformer over the small random model."""
    qt = QuantizedTransformer(small_transformer)
    src = rng.integers(1, 30, size=(2, 12))
    tgt = rng.integers(1, 30, size=(2, 12))
    qt.calibrate([(src, tgt, np.array([12, 9]))])
    return qt


@pytest.fixture(scope="session")
def nmt_task() -> SyntheticTranslationTask:
    return SyntheticTranslationTask(num_words=16, min_len=3, max_len=7)


@pytest.fixture(scope="session")
def trained_nmt(nmt_task):
    """A small Transformer trained on the synthetic task (session cached).

    Trained just enough to beat chance decisively — the quantization tests
    compare relative BLEU, not absolute mastery.
    """
    rng = np.random.default_rng(7)
    config = ModelConfig(
        "nmt-test", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=1, num_decoder_layers=1,
        max_seq_len=16, dropout=0.0,
    )
    model = Transformer(
        config, len(nmt_task.src_vocab), len(nmt_task.tgt_vocab), rng=rng
    )
    train, _, test = nmt_task.splits(train=1200, valid=40, test=60, seed=11)
    train_model(model, nmt_task, train, epochs=20, batch_size=32,
                warmup=200, lr_factor=2.0, seed=5)
    return model, nmt_task, test
