"""GPU kernel-decomposition tests."""

import pytest

from repro.config import transformer_base
from repro.errors import ShapeError
from repro.gpu_model import (
    ffn_resblock_kernels,
    mha_resblock_kernels,
    total_bytes,
    total_flops,
)


@pytest.fixture
def model():
    return transformer_base()


class TestKernelCounts:
    def test_mha_has_more_kernels_than_ffn(self, model):
        # The structural fact behind the paper's GPU latency inversion.
        mha = mha_resblock_kernels(model, 64)
        ffn = ffn_resblock_kernels(model, 64)
        assert len(mha) > 2 * len(ffn)

    def test_mha_kernel_count(self, model):
        assert len(mha_resblock_kernels(model, 64)) == 16

    def test_ffn_kernel_count(self, model):
        assert len(ffn_resblock_kernels(model, 64)) == 7


class TestFlopAccounting:
    def test_ffn_has_twice_mha_flops(self, model):
        # 2 * s * d * d_ff * 2 vs ~4 * s * d^2 * 2 + attention terms.
        mha = total_flops(mha_resblock_kernels(model, 64))
        ffn = total_flops(ffn_resblock_kernels(model, 64))
        assert 1.5 < ffn / mha < 2.2

    def test_gemm_flops_formula(self, model):
        kernels = {k.name: k for k in ffn_resblock_kernels(model, 64)}
        assert kernels["linear1"].flops == 2 * 64 * 512 * 2048

    def test_projection_flops(self, model):
        kernels = {k.name: k for k in mha_resblock_kernels(model, 64)}
        assert kernels["q_proj"].flops == 2 * 64 * 512 * 512

    def test_flops_scale_with_s(self, model):
        small = total_flops(mha_resblock_kernels(model, 32))
        large = total_flops(mha_resblock_kernels(model, 64))
        assert large > 1.8 * small

    def test_bytes_positive(self, model):
        assert total_bytes(mha_resblock_kernels(model, 64)) > 0

    def test_invalid_s(self, model):
        with pytest.raises(ShapeError):
            mha_resblock_kernels(model, 0)
        with pytest.raises(ShapeError):
            ffn_resblock_kernels(model, -1)
