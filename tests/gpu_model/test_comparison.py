"""Speedup-landscape tests."""

import pytest

from repro.config import transformer_base, transformer_big
from repro.errors import ConfigError
from repro.gpu_model import best_and_worst, speedup_landscape


@pytest.fixture
def cells():
    return speedup_landscape(
        [transformer_base(), transformer_big()], seq_lens=(32, 64)
    )


class TestLandscape:
    def test_grid_size(self, cells):
        assert len(cells) == 4

    def test_paper_cell_reproduced(self):
        cells = speedup_landscape([transformer_base()], seq_lens=(64,))
        cell = cells[0]
        assert cell.mha_speedup == pytest.approx(14.6, rel=0.05)
        assert cell.ffn_speedup == pytest.approx(3.4, rel=0.10)

    def test_mha_speedup_exceeds_ffn_everywhere(self, cells):
        # The launch-bound MHA advantage holds across the landscape.
        assert all(c.mha_speedup > c.ffn_speedup for c in cells)

    def test_speedup_decreases_with_seq_len(self):
        cells = speedup_landscape([transformer_base()],
                                  seq_lens=(16, 64, 128))
        speedups = [c.layer_speedup for c in cells]
        assert speedups == sorted(speedups, reverse=True)

    def test_layer_speedup_between_parts(self, cells):
        for c in cells:
            lo = min(c.mha_speedup, c.ffn_speedup)
            hi = max(c.mha_speedup, c.ffn_speedup)
            assert lo <= c.layer_speedup <= hi

    def test_best_and_worst(self, cells):
        extremes = best_and_worst(cells)
        assert (extremes["best"].layer_speedup
                >= extremes["worst"].layer_speedup)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError):
            speedup_landscape([], seq_lens=(64,))
        with pytest.raises(ConfigError):
            speedup_landscape([transformer_base()], seq_lens=())
        with pytest.raises(ConfigError):
            best_and_worst([])
