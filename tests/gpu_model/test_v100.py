"""V100 latency model tests: Table III shape and sweeps."""

import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core import (
    PAPER_FFN_SPEEDUP,
    PAPER_GPU_FFN_LATENCY_US,
    PAPER_GPU_MHA_LATENCY_US,
    PAPER_MHA_SPEEDUP,
    schedule_ffn,
    schedule_mha,
)
from repro.errors import ConfigError
from repro.gpu_model import (
    GpuSpec,
    ffn_latency_us,
    mha_latency_us,
    v100_batch1,
    v100_batched,
)


@pytest.fixture
def model():
    return transformer_base()


@pytest.fixture
def spec():
    return v100_batch1()


class TestTable3:
    def test_mha_latency_near_paper(self, model, spec):
        measured = mha_latency_us(model, 64, spec)
        assert abs(measured / PAPER_GPU_MHA_LATENCY_US - 1) < 0.05

    def test_ffn_latency_near_paper(self, model, spec):
        measured = ffn_latency_us(model, 64, spec)
        assert abs(measured / PAPER_GPU_FFN_LATENCY_US - 1) < 0.05

    def test_gpu_inversion(self, model, spec):
        # GPU is *slower* on MHA than FFN despite half the FLOPs —
        # the launch-overhead-bound regime the paper exploits.
        assert mha_latency_us(model, 64, spec) > ffn_latency_us(model, 64, spec)

    def test_speedups_near_paper(self, model, spec):
        acc = paper_accelerator()
        fpga_mha = schedule_mha(model, acc).latency_us(acc.clock_mhz)
        fpga_ffn = schedule_ffn(model, acc).latency_us(acc.clock_mhz)
        mha_speedup = mha_latency_us(model, 64, spec) / fpga_mha
        ffn_speedup = ffn_latency_us(model, 64, spec) / fpga_ffn
        assert abs(mha_speedup / PAPER_MHA_SPEEDUP - 1) < 0.15
        assert abs(ffn_speedup / PAPER_FFN_SPEEDUP - 1) < 0.20

    def test_mha_speedup_much_larger_than_ffn(self, model, spec):
        acc = paper_accelerator()
        fpga_mha = schedule_mha(model, acc).latency_us(acc.clock_mhz)
        fpga_ffn = schedule_ffn(model, acc).latency_us(acc.clock_mhz)
        mha_speedup = mha_latency_us(model, 64, spec) / fpga_mha
        ffn_speedup = ffn_latency_us(model, 64, spec) / fpga_ffn
        assert mha_speedup > 3 * ffn_speedup


class TestSpec:
    def test_kernel_latency_floor_is_overhead(self, spec):
        from repro.gpu_model import Kernel

        tiny = Kernel("tiny", flops=10, bytes_moved=10)
        assert spec.kernel_latency_s(tiny) >= spec.kernel_overhead_s

    def test_compute_bound_kernel(self, spec):
        from repro.gpu_model import Kernel

        huge = Kernel("huge", flops=10**13, bytes_moved=100)
        latency = spec.kernel_latency_s(huge)
        assert latency > 10**13 / spec.peak_flops

    def test_memory_bound_kernel(self, spec):
        from repro.gpu_model import Kernel

        streamy = Kernel("stream", flops=10, bytes_moved=9 * 10**11)
        assert spec.kernel_latency_s(streamy) >= 1.0

    def test_invalid_spec(self):
        with pytest.raises(ConfigError):
            GpuSpec("bad", peak_flops=0, memory_bandwidth=1,
                    kernel_overhead_s=1)
        with pytest.raises(ConfigError):
            GpuSpec("bad", peak_flops=1, memory_bandwidth=1,
                    kernel_overhead_s=1, gemm_efficiency=2.0)


class TestSweeps:
    def test_batch_amortizes_overhead(self, model, spec):
        # Per-sentence latency falls with batch (kernels shared).
        b1 = mha_latency_us(model, 64, spec, batch=1)
        b32 = mha_latency_us(model, 64, spec, batch=32) / 32
        assert b32 < b1 / 4

    def test_gpu_catches_up_at_batch(self, model):
        # With a batched/graph-launch setup, the GPU eventually beats the
        # accelerator on throughput — the crossover ablation's premise.
        acc = paper_accelerator()
        fpga_ffn = schedule_ffn(model, acc).latency_us(acc.clock_mhz)
        spec = v100_batched()
        per_sentence = ffn_latency_us(model, 64, spec, batch=256) / 256
        assert per_sentence < fpga_ffn

    def test_latency_grows_with_s(self, model, spec):
        assert (mha_latency_us(model, 128, spec)
                > mha_latency_us(model, 32, spec))

    def test_batched_spec_faster_than_batch1(self, model):
        assert (mha_latency_us(model, 64, v100_batched())
                < mha_latency_us(model, 64, v100_batch1()))
