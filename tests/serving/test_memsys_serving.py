"""Serving with the memory system: caching, contention, metrics."""

import dataclasses

import pytest

from repro.config import (
    ServingConfig,
    paper_accelerator,
    transformer_base,
)
from repro.memsys import ddr4_2400, unlimited
from repro.serving import simulate_serving
from repro.serving.batching import BatchCostModel
from repro.serving.devices import WorkerPool

WHOLE_MODEL_CACHE_KIB = 44 * 1024


@pytest.fixture(scope="module")
def model():
    return transformer_base()


@pytest.fixture(scope="module")
def acc():
    return paper_accelerator()


def _serving(**overrides):
    return ServingConfig(
        arrival_rate_rps=1000.0, num_requests=60,
        min_len=8, max_len=32, seed=5, **overrides,
    )


class TestWeightCacheServing:
    def test_whole_model_cache_serves_hits_and_moves_p95(self, model, acc):
        flat = simulate_serving(model, acc, _serving()).metrics
        mem = ddr4_2400().with_updates(
            weight_cache_kib=WHOLE_MODEL_CACHE_KIB
        )
        cached = simulate_serving(model, acc, _serving(memory=mem)).metrics
        assert cached.weight_cache_hit_rate > 0.5
        assert cached.weight_cache_hits > 0
        assert cached.latency_p95_us != flat.latency_p95_us
        # Warm weights beat the flat per-run reload constant.
        assert cached.latency_p95_us < flat.latency_p95_us

    def test_default_capacity_cycles_through_the_model(self, model, acc):
        # Table II holds ~2 MiB; Transformer-base is ~42 MiB, so the
        # round-robin block sequence evicts everything before reuse.
        mem = ddr4_2400()
        result = simulate_serving(model, acc, _serving(memory=mem)).metrics
        assert result.weight_cache_hit_rate == 0.0
        assert result.weight_cache_misses > 0

    def test_disabled_cache_refetches_every_block(self, model, acc):
        mem = ddr4_2400().with_updates(enable_weight_cache=False)
        result = simulate_serving(model, acc, _serving(memory=mem))
        metrics = result.metrics
        assert metrics.weight_cache_hits == 0
        blocks_per_run = (
            2 * model.num_encoder_layers + 3 * model.num_decoder_layers
        )
        assert metrics.weight_cache_misses == (
            blocks_per_run * metrics.num_batches
        )
        assert metrics.reload_stall_cycles > 0

    def test_unlimited_link_reloads_for_free(self, model, acc):
        result = simulate_serving(
            model, acc, _serving(memory=unlimited())
        ).metrics
        assert result.reload_stall_cycles == 0
        assert result.weight_cache_misses > 0  # cold misses, free fetches

    def test_layer_shard_ignores_the_memory_system(self, model, acc):
        serving = _serving(
            memory=ddr4_2400(), num_devices=2, placement="layer_shard"
        )
        result = simulate_serving(model, acc, serving).metrics
        assert result.weight_cache_hits == 0
        assert result.weight_cache_misses == 0
        assert result.reload_stall_cycles == 0


class TestChannelContention:
    def _pool(self, model, acc, mem, num_devices):
        cost = BatchCostModel(model, acc)
        return WorkerPool(num_devices, "replicate", cost, acc, mem=mem)

    def test_fewer_channels_mean_more_stall(self, model, acc):
        base = ddr4_2400().with_updates(enable_weight_cache=False)
        shared = self._pool(
            model, acc, base.with_updates(shared_channels=1), 4
        )
        private = self._pool(
            model, acc, base.with_updates(shared_channels=4), 4
        )
        shared_stall, _, _ = shared._memsys_reload_cycles(0)
        private_stall, _, _ = private._memsys_reload_cycles(0)
        assert shared_stall > private_stall

    def test_single_device_never_contends(self, model, acc):
        mem = ddr4_2400().with_updates(shared_channels=1)
        pool = self._pool(model, acc, mem, 1)
        assert pool._contenders == 1


class TestMetricsSurface:
    def test_rows_include_memory_counters(self, model, acc):
        mem = ddr4_2400().with_updates(
            weight_cache_kib=WHOLE_MODEL_CACHE_KIB
        )
        metrics = simulate_serving(model, acc, _serving(memory=mem)).metrics
        labels = {row[0] for row in metrics.as_rows()}
        assert {"weight-cache hits", "weight-cache misses",
                "weight-cache hit rate",
                "reload stall cycles"} <= labels

    def test_serving_config_validates_memory(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ServingConfig(memory="ddr4")

    def test_memory_config_round_trips_replace(self):
        serving = _serving(memory=ddr4_2400())
        replaced = dataclasses.replace(serving, memory=None)
        assert replaced.memory is None
        assert serving.memory == ddr4_2400()
