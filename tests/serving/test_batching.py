"""Dynamic-batcher and cost-model tests: geometry, policy, cycle costs."""

import pytest

from repro.config import (
    AcceleratorConfig,
    ServingConfig,
    paper_accelerator,
    transformer_base,
)
from repro.core import (
    model_reload_cycles,
    schedule_ffn,
    schedule_mha,
)
from repro.errors import ServingError
from repro.serving import (
    AdmissionQueue,
    BatchCostModel,
    DynamicBatcher,
    Request,
)


def _queue_with(lengths, arrival=0.0):
    queue = AdmissionQueue(capacity=64)
    for i, length in enumerate(lengths):
        queue.offer(Request(i, arrival, length), arrival)
    return queue


class TestGeometryPacking:
    def test_packs_until_sa_rows_full(self):
        # 30 + 30 fits s=64; the third 30-token request does not.
        queue = _queue_with([30, 30, 30])
        batcher = DynamicBatcher(64, max_requests=8, max_wait_us=1e9)
        batch = batcher.try_form(queue, now_us=0.0)
        assert batch is not None           # geometry-full cut
        assert [r.req_id for r in batch.requests] == [0, 1]
        assert batch.total_tokens == 60
        assert batch.padding_rows(64) == 4
        assert batch.occupancy(64) == pytest.approx(60 / 64)

    def test_count_cap_cuts(self):
        queue = _queue_with([8, 8, 8, 8])
        batcher = DynamicBatcher(64, max_requests=2, max_wait_us=1e9)
        batch = batcher.try_form(queue, now_us=0.0)
        assert batch.num_requests == 2

    def test_holds_for_more_arrivals(self):
        queue = _queue_with([8, 8])
        batcher = DynamicBatcher(64, max_requests=8, max_wait_us=1e9)
        assert batcher.try_form(queue, now_us=1.0) is None
        assert len(queue) == 2             # nothing consumed

    def test_max_wait_cuts_partial_batch(self):
        queue = _queue_with([8], arrival=0.0)
        batcher = DynamicBatcher(64, max_requests=8, max_wait_us=100.0)
        assert batcher.try_form(queue, now_us=50.0) is None
        batch = batcher.try_form(queue, now_us=100.0)
        assert batch is not None and batch.num_requests == 1

    def test_force_flushes(self):
        queue = _queue_with([8])
        batcher = DynamicBatcher(64, max_requests=8, max_wait_us=1e9)
        assert batcher.try_form(queue, 0.0, force=True).num_requests == 1

    def test_batch1_policy_always_cuts(self):
        queue = _queue_with([8, 8])
        batcher = DynamicBatcher(64, max_requests=1, max_wait_us=1e9)
        assert batcher.try_form(queue, 0.0).num_requests == 1

    def test_oversized_head_raises(self):
        queue = _queue_with([65])
        batcher = DynamicBatcher(64, max_requests=8, max_wait_us=0.0)
        with pytest.raises(ServingError):
            batcher.try_form(queue, 0.0)

    def test_deadline(self):
        queue = _queue_with([8], arrival=10.0)
        batcher = DynamicBatcher(64, max_requests=8, max_wait_us=100.0)
        assert batcher.next_deadline_us(queue) == 110.0
        assert batcher.next_deadline_us(_queue_with([])) == float("inf")


class TestBatchCostModel:
    def test_run_cycles_match_schedules(self):
        model, acc = transformer_base(), paper_accelerator()
        cost = BatchCostModel(model, acc)
        mha = schedule_mha(model, acc).total_cycles
        ffn = schedule_ffn(model, acc).total_cycles
        layers = (model.num_encoder_layers * (mha + ffn)
                  + model.num_decoder_layers * (2 * mha + ffn))
        assert cost.compute_cycles == layers
        assert cost.run_cycles == layers + model_reload_cycles(model)

    def test_stage_partition_conserves_cycles(self):
        cost = BatchCostModel(transformer_base(), paper_accelerator())
        for stages in (1, 2, 3, 4, 6, 12):
            assert sum(cost.stage_cycles(stages)) == cost.compute_cycles

    def test_double_buffering_reduces_reloads(self):
        model, acc = transformer_base(), paper_accelerator()
        plain = BatchCostModel(model, acc)
        buffered = BatchCostModel(model, acc, double_buffered_weights=True)
        assert buffered.reload_cycles < plain.reload_cycles

    def test_cost_independent_of_batch_contents(self):
        # The SA always runs its full s rows: one run costs the same
        # whether it carries 1 request or 8 — the entire batching win.
        cost = BatchCostModel(transformer_base(), paper_accelerator())
        assert cost.run_cycles == BatchCostModel(
            transformer_base(), paper_accelerator()
        ).run_cycles

    def test_seq_len_raises_cost(self):
        model = transformer_base()
        small = BatchCostModel(model, AcceleratorConfig(seq_len=32))
        big = BatchCostModel(model, AcceleratorConfig(seq_len=64))
        assert big.compute_cycles > small.compute_cycles


class TestServingConfigValidation:
    def test_defaults_valid(self):
        ServingConfig()

    @pytest.mark.parametrize("overrides", [
        {"arrival_rate_rps": 0.0},
        {"num_requests": 0},
        {"length_dist": "zipf"},
        {"min_len": 0},
        {"min_len": 20, "max_len": 10},
        {"queue_capacity": 0},
        {"queue_timeout_us": 0.0},
        {"max_batch_requests": 0},
        {"max_wait_us": -1.0},
        {"num_devices": 0},
        {"placement": "mesh"},
    ])
    def test_rejects_bad_values(self, overrides):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ServingConfig(**overrides)

    def test_with_updates(self):
        serving = ServingConfig().with_updates(max_batch_requests=3)
        assert serving.max_batch_requests == 3
