"""Registry-backed serving metrics: equivalence with the plain path."""

import json

import pytest

from repro.config import ServingConfig, paper_accelerator, transformer_base
from repro.memsys import ddr4_2400
from repro.serving import simulate_serving
from repro.serving.metrics import compute_metrics, record_serving
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def model():
    return transformer_base()


@pytest.fixture(scope="module")
def acc():
    return paper_accelerator()


def _serving(**overrides):
    base = dict(
        arrival_rate_rps=1200.0, num_requests=60,
        min_len=8, max_len=32, seed=13,
        max_batch_requests=8, max_wait_us=1000.0,
    )
    base.update(overrides)
    return ServingConfig(**base)


class TestSimulatorRegistry:
    def test_metrics_identical_with_and_without_registry(self, model, acc):
        plain = simulate_serving(model, acc, _serving())
        inst = simulate_serving(
            model, acc, _serving(), registry=MetricsRegistry()
        )
        assert inst.metrics == plain.metrics

    def test_registry_counters_match_metrics(self, model, acc):
        reg = MetricsRegistry()
        result = simulate_serving(model, acc, _serving(), registry=reg)
        m = result.metrics
        outcomes = reg.get("repro_serving_requests_total")
        assert outcomes.value(outcome="completed") == m.completed
        assert outcomes.value(outcome="rejected") == m.rejected
        assert reg.get(
            "repro_serving_requests_offered_total"
        ).value() == m.offered
        assert reg.get("repro_serving_batches_total").value() == (
            m.num_batches
        )
        latency = reg.get("repro_serving_latency_us")
        assert latency.count() == m.completed
        assert latency.percentile(99) == m.latency_p99_us
        assert reg.get("repro_serving_sa_utilization").value() == (
            pytest.approx(m.sa_utilization)
        )
        depth = reg.get("repro_serving_queue_depth")
        assert len(depth.samples()) == len(result.depth_samples)

    def test_trace_has_utilization_and_cache_tracks(
        self, model, acc, tmp_path
    ):
        # The weight-cache track needs a memory system (lookups only
        # happen when weights actually move off-chip).
        result = simulate_serving(
            model, acc, _serving(memory=ddr4_2400())
        )
        path = tmp_path / "serving.json"
        result.write_trace(str(path))
        events = json.loads(path.read_text())["traceEvents"]
        tracks = {e["name"] for e in events if e["ph"] == "C"}
        assert {"queue_depth", "sa_utilization",
                "weight_cache_hit_rate"} <= tracks
        # Cumulative hit rate and per-batch utilization live in [0, 1].
        for e in events:
            if e["ph"] != "C" or e["name"] == "queue_depth":
                continue
            assert 0.0 <= e["args"][e["name"]] <= 1.0

    def test_utilization_samples_cover_every_batch(self, model, acc):
        result = simulate_serving(model, acc, _serving())
        assert len(result.util_samples) == result.metrics.num_batches


class TestComputeMetricsCompat:
    ARGS = dict(
        latencies_us=[100.0, 250.0, 900.0],
        batch_sizes=[2, 1],
        batch_tokens=[40, 16],
        seq_len=64,
        offered=5,
        rejected=1,
        expired=1,
        makespan_us=1000.0,
        device_busy_fraction=0.5,
        ideal_cycles_per_run=800,
        run_cycles=1000,
        num_devices=1,
        depth_samples=[(0.0, 1), (100.0, 0)],
    )

    def test_external_registry_matches_private_one(self):
        reg = MetricsRegistry()
        with_reg = compute_metrics(**self.ARGS, registry=reg)
        without = compute_metrics(**self.ARGS)
        assert with_reg == without
        assert reg.get("repro_serving_requests_total").value(
            outcome="completed"
        ) == 3

    def test_record_serving_accumulates_across_runs(self):
        # Counters are monotonic by design: a registry shared by
        # several runs holds the union of their outcomes.
        reg = MetricsRegistry()
        args = {k: v for k, v in self.ARGS.items() if k not in (
            "seq_len", "makespan_us", "device_busy_fraction",
            "ideal_cycles_per_run", "run_cycles", "num_devices",
        )}
        record_serving(reg, **args)
        record_serving(reg, **args)
        assert reg.get(
            "repro_serving_requests_offered_total"
        ).value() == 10
        assert reg.get("repro_serving_latency_us").count() == 6
