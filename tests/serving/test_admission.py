"""Admission-queue tests: capacity, timeouts, rejection accounting."""

import pytest

from repro.errors import ServingError
from repro.serving import AdmissionQueue, Request


def _req(i, arrival=0.0, length=16):
    return Request(req_id=i, arrival_us=arrival, seq_len=length)


class TestCapacity:
    def test_rejects_beyond_capacity(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.offer(_req(0), 0.0)
        assert queue.offer(_req(1), 0.0)
        assert not queue.offer(_req(2), 0.0)
        assert queue.offered == 3
        assert queue.rejected_full == 1
        assert len(queue) == 2

    def test_room_frees_after_pop(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer(_req(0), 0.0)
        queue.pop_front(1, 1.0)
        assert queue.offer(_req(1), 1.0)

    def test_invalid_params(self):
        with pytest.raises(ServingError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ServingError):
            AdmissionQueue(capacity=1, timeout_us=0)


class TestTimeout:
    def test_expires_oldest_first(self):
        queue = AdmissionQueue(capacity=8, timeout_us=100.0)
        queue.offer(_req(0, arrival=0.0), 0.0)
        queue.offer(_req(1, arrival=50.0), 50.0)
        dropped = queue.expire(120.0)
        assert [r.req_id for r in dropped] == [0]
        assert queue.expired == 1
        assert len(queue) == 1

    def test_expiry_exactly_at_deadline(self):
        queue = AdmissionQueue(capacity=8, timeout_us=100.0)
        queue.offer(_req(0, arrival=0.0), 0.0)
        assert [r.req_id for r in queue.expire(100.0)] == [0]

    def test_infinite_timeout_never_expires(self):
        queue = AdmissionQueue(capacity=8)
        queue.offer(_req(0), 0.0)
        assert queue.expire(1e12) == []
        assert queue.next_expiry_us() == float("inf")

    def test_next_expiry(self):
        queue = AdmissionQueue(capacity=8, timeout_us=100.0)
        queue.offer(_req(0, arrival=7.0), 7.0)
        assert queue.next_expiry_us() == 107.0


class TestAccounting:
    def test_depth_samples_track_mutations(self):
        queue = AdmissionQueue(capacity=8)
        queue.offer(_req(0), 1.0)
        queue.offer(_req(1), 2.0)
        queue.pop_front(2, 3.0)
        assert queue.depth_samples == [
            (0.0, 0), (1.0, 1), (2.0, 2), (3.0, 0)
        ]

    def test_pop_too_many(self):
        queue = AdmissionQueue(capacity=8)
        queue.offer(_req(0), 0.0)
        with pytest.raises(ServingError):
            queue.pop_front(2, 0.0)

    def test_oldest_wait(self):
        queue = AdmissionQueue(capacity=8)
        assert queue.oldest_wait_us(5.0) == 0.0
        queue.offer(_req(0, arrival=2.0), 2.0)
        assert queue.oldest_wait_us(5.0) == 3.0
