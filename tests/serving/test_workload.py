"""Workload generator tests: determinism, statistics, trace replay."""

import pytest

from repro.config import ServingConfig
from repro.errors import ServingError
from repro.serving import poisson_workload, trace_workload, validate_workload


class TestPoissonWorkload:
    def test_deterministic_under_seed(self):
        serving = ServingConfig(seed=42)
        assert poisson_workload(serving) == poisson_workload(serving)

    def test_seed_changes_workload(self):
        a = poisson_workload(ServingConfig(seed=1))
        b = poisson_workload(ServingConfig(seed=2))
        assert a != b

    def test_count_ids_and_ordering(self):
        requests = poisson_workload(ServingConfig(num_requests=50))
        assert len(requests) == 50
        assert [r.req_id for r in requests] == list(range(50))
        arrivals = [r.arrival_us for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_mean_rate_roughly_matches(self):
        serving = ServingConfig(
            arrival_rate_rps=1000.0, num_requests=2000, seed=0
        )
        requests = poisson_workload(serving)
        mean_gap_us = requests[-1].arrival_us / len(requests)
        assert mean_gap_us == pytest.approx(1000.0, rel=0.1)

    def test_lengths_respect_bounds(self):
        serving = ServingConfig(min_len=5, max_len=9, num_requests=300)
        lengths = [r.seq_len for r in poisson_workload(serving)]
        assert min(lengths) >= 5
        assert max(lengths) <= 9
        assert len(set(lengths)) > 1          # actually varies

    def test_fixed_distribution(self):
        serving = ServingConfig(
            length_dist="fixed", min_len=8, max_len=48, num_requests=20
        )
        assert all(
            r.seq_len == 48 for r in poisson_workload(serving)
        )


class TestTraceWorkload:
    def test_replay(self):
        requests = trace_workload([(0.0, 10), (5.0, 20), (5.0, 30)])
        assert [r.seq_len for r in requests] == [10, 20, 30]
        assert [r.req_id for r in requests] == [0, 1, 2]

    def test_rejects_unsorted(self):
        with pytest.raises(ServingError):
            trace_workload([(10.0, 4), (5.0, 4)])

    def test_rejects_bad_length(self):
        with pytest.raises(ServingError):
            trace_workload([(0.0, 0)])

    def test_rejects_empty(self):
        with pytest.raises(ServingError):
            trace_workload([])


class TestValidateWorkload:
    def test_too_long_for_sa(self):
        requests = trace_workload([(0.0, 65)])
        with pytest.raises(ServingError):
            validate_workload(requests, 64)
        validate_workload(requests, 128)
