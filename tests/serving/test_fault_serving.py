"""Fault-aware serving tests: retries, silent corruption, dying pools."""

import pytest

from repro.config import ServingConfig, paper_accelerator, transformer_base
from repro.errors import ServingError
from repro.serving import BatchCostModel, WorkerPool, simulate_serving


@pytest.fixture(scope="module")
def model():
    return transformer_base()


@pytest.fixture(scope="module")
def acc():
    return paper_accelerator()


@pytest.fixture(scope="module")
def abft_acc():
    return paper_accelerator().with_updates(abft_protected=True)


def _serving(**overrides):
    base = dict(
        arrival_rate_rps=1200.0, num_requests=60,
        min_len=8, max_len=32, seed=13,
        max_batch_requests=8, max_wait_us=1000.0,
    )
    base.update(overrides)
    return ServingConfig(**base)


class TestBatchFaults:
    def test_abft_retries_instead_of_corrupting(self, model, abft_acc):
        result = simulate_serving(
            model, abft_acc, _serving(batch_fault_rate=0.3, max_retries=3)
        )
        m = result.metrics
        assert m.retried > 0
        assert m.corrupted == 0
        assert m.completed + m.rejected + m.expired + m.failed == m.offered

    def test_no_abft_corrupts_silently(self, model, acc):
        result = simulate_serving(
            model, acc, _serving(batch_fault_rate=0.3)
        )
        m = result.metrics
        assert m.corrupted > 0
        assert m.retried == 0
        assert m.failed == 0
        corrupted_records = [r for r in result.records if r.corrupted]
        assert len(corrupted_records) == m.corrupted
        assert all(r.status == "completed" for r in corrupted_records)

    def test_retry_budget_exhaustion_fails_requests(self, model, abft_acc):
        # Certain fault + zero retries: every dispatched batch fails.
        result = simulate_serving(
            model, abft_acc,
            _serving(batch_fault_rate=1.0, max_retries=0),
        )
        m = result.metrics
        assert m.completed == 0
        assert m.failed > 0
        failed = [r for r in result.records if r.status == "failed"]
        assert all(r.completed_us is None for r in failed)

    def test_retry_spans_on_fault_track(self, model, abft_acc):
        result = simulate_serving(
            model, abft_acc, _serving(batch_fault_rate=0.3, max_retries=3)
        )
        retries = [s for s in result.spans if s.track == "faults"]
        assert len(retries) == result.metrics.retried
        assert all(s.args["event"] == "abft_retry" for s in retries)

    def test_fault_free_run_unchanged_by_fault_fields(self, model, acc):
        base = simulate_serving(model, acc, _serving())
        wired = simulate_serving(
            model, acc, _serving(batch_fault_rate=0.0, max_retries=5)
        )
        assert base.metrics == wired.metrics

    def test_determinism_under_faults(self, model, abft_acc):
        cfg = _serving(batch_fault_rate=0.25, device_failure_rate=0.05,
                       num_devices=3, max_retries=2)
        a = simulate_serving(model, abft_acc, cfg)
        b = simulate_serving(model, abft_acc, cfg)
        assert a.metrics == b.metrics
        assert a.spans == b.spans


class TestDeviceFailures:
    def test_replicate_pool_degrades(self, model, acc):
        result = simulate_serving(
            model, acc,
            _serving(num_devices=3, device_failure_rate=0.2,
                     num_requests=80, queue_capacity=256),
        )
        m = result.metrics
        assert m.device_failures > 0
        assert m.completed > 0
        assert m.completed + m.rejected + m.expired + m.failed == m.offered
        failure_spans = [
            s for s in result.spans
            if s.track == "faults" and s.args.get("event") == "device_failure"
        ]
        assert len(failure_spans) == m.device_failures

    def test_all_devices_dead_strands_requests(self, model, acc):
        result = simulate_serving(
            model, acc,
            _serving(num_devices=1, device_failure_rate=1.0,
                     queue_capacity=256),
        )
        m = result.metrics
        assert m.device_failures == 1
        assert m.failed > 0

    def test_layer_shard_dies_with_first_stage(self, model, acc):
        result = simulate_serving(
            model, acc,
            _serving(num_devices=2, placement="layer_shard",
                     device_failure_rate=1.0, queue_capacity=256),
        )
        m = result.metrics
        # Fail-stop after the first batch: exactly one draw kills the
        # pipeline even though only one of its two stages died.
        assert m.device_failures == 1
        assert m.failed > 0
        assert m.num_batches == 1


class TestPoolFaultAPI:
    def test_dead_device_rejects_dispatch(self, model, acc):
        cost = BatchCostModel(model, acc)
        pool = WorkerPool(1, "replicate", cost, acc)
        pool.fail_device(0, 5.0)
        assert not pool.pool_alive
        assert pool.next_free_us() == float("inf")
        assert pool.device_failures == 1
        assert pool.devices[0].failed_at_us == 5.0
        with pytest.raises(ServingError):
            pool.devices[0].occupy(10.0, 1.0)

    def test_fail_device_validation_and_idempotence(self, model, acc):
        cost = BatchCostModel(model, acc)
        pool = WorkerPool(2, "replicate", cost, acc)
        pool.fail_device(1, 5.0)
        pool.fail_device(1, 9.0)          # no-op: already dead
        assert pool.devices[1].failed_at_us == 5.0
        assert pool.pool_alive            # replica 0 still serving
        with pytest.raises(ServingError):
            pool.fail_device(7, 0.0)
