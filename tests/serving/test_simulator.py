"""End-to-end serving-simulation tests.

Covers the ISSUE's acceptance criteria: determinism under a fixed seed,
the full metrics surface (p50/p95/p99, throughput, SA utilization,
rejection rate), dynamic batching beating the batch-1 baseline at the
same arrival rate, and Chrome-trace export through ``core/trace.py``.
"""

import json
import math

import pytest

from repro.config import (
    AcceleratorConfig,
    ServingConfig,
    paper_accelerator,
    transformer_base,
)
from repro.errors import ServingError
from repro.serving import (
    WorkerPool,
    BatchCostModel,
    percentile,
    simulate_serving,
    trace_workload,
)


@pytest.fixture(scope="module")
def model():
    return transformer_base()


@pytest.fixture(scope="module")
def acc():
    return paper_accelerator()


def _serving(**overrides):
    base = dict(
        arrival_rate_rps=1200.0, num_requests=80,
        min_len=8, max_len=32, seed=13,
        max_batch_requests=8, max_wait_us=1000.0,
    )
    base.update(overrides)
    return ServingConfig(**base)


class TestDeterminism:
    def test_identical_runs(self, model, acc):
        a = simulate_serving(model, acc, _serving())
        b = simulate_serving(model, acc, _serving())
        assert a.metrics == b.metrics
        assert a.spans == b.spans
        assert a.depth_samples == b.depth_samples
        assert [r.completed_us for r in a.records] == [
            r.completed_us for r in b.records
        ]

    def test_seed_changes_outcome(self, model, acc):
        a = simulate_serving(model, acc, _serving(seed=1))
        b = simulate_serving(model, acc, _serving(seed=2))
        assert a.metrics != b.metrics


class TestMetricsSurface:
    def test_reports_everything(self, model, acc):
        m = simulate_serving(model, acc, _serving()).metrics
        assert m.offered == 80
        assert (m.completed + m.rejected + m.expired + m.failed
                == m.offered)
        assert 0.0 <= m.rejection_rate <= 1.0
        assert (m.latency_p50_us <= m.latency_p95_us
                <= m.latency_p99_us)
        assert m.throughput_rps > 0
        assert 0.0 < m.occupancy <= 1.0
        assert 0.0 < m.device_busy_fraction <= 1.0
        assert 0.0 < m.sa_utilization < 1.0
        assert m.max_queue_depth >= 1
        assert len(m.as_rows()) == 25

    def test_every_request_accounted(self, model, acc):
        result = simulate_serving(model, acc, _serving())
        statuses = {r.status for r in result.records}
        assert statuses <= {"completed", "rejected", "expired", "failed"}
        completed = [r for r in result.records if r.status == "completed"]
        for record in completed:
            assert record.completed_us > record.request.arrival_us
            assert record.latency_us > 0
            assert record.batch_id is not None
        batched = sum(b.num_requests for b in result.batches)
        assert batched == len(completed)

    def test_latency_matches_percentile_definition(self, model, acc):
        result = simulate_serving(model, acc, _serving())
        lats = [r.latency_us for r in result.records
                if r.status == "completed"]
        assert result.metrics.latency_p50_us == percentile(lats, 50)
        assert result.metrics.latency_p99_us == percentile(lats, 99)


class TestBatchingBeatsBatch1:
    def test_throughput_and_tail_latency(self, model, acc):
        # Same arrival process, same devices: only the policy differs.
        dyn = simulate_serving(model, acc, _serving()).metrics
        base = simulate_serving(
            model, acc, _serving(max_batch_requests=1)
        ).metrics
        assert dyn.throughput_rps > base.throughput_rps
        assert dyn.mean_batch_size > 1.0
        assert dyn.occupancy > base.occupancy

    def test_batch1_is_one_request_per_batch(self, model, acc):
        result = simulate_serving(
            model, acc, _serving(max_batch_requests=1)
        )
        assert all(b.num_requests == 1 for b in result.batches)


class TestOverloadAndTimeouts:
    def test_overload_rejects(self, model, acc):
        m = simulate_serving(
            model, acc,
            _serving(arrival_rate_rps=20000.0, num_requests=200,
                     queue_capacity=8, max_batch_requests=1),
        ).metrics
        assert m.rejected > 0
        assert m.rejection_rate > 0.3

    def test_timeouts_expire_waiters(self, model, acc):
        m = simulate_serving(
            model, acc,
            _serving(arrival_rate_rps=20000.0, num_requests=100,
                     queue_timeout_us=2000.0, max_batch_requests=1),
        ).metrics
        assert m.expired > 0
        assert m.completed + m.rejected + m.expired == 100

    def test_light_load_completes_everything(self, model, acc):
        m = simulate_serving(
            model, acc,
            _serving(arrival_rate_rps=50.0, num_requests=30),
        ).metrics
        assert m.completed == 30
        assert m.rejection_rate == 0.0


class TestMultiDevice:
    def test_second_device_raises_throughput(self, model, acc):
        one = simulate_serving(model, acc, _serving()).metrics
        two = simulate_serving(
            model, acc, _serving(num_devices=2)
        ).metrics
        assert two.throughput_rps > one.throughput_rps

    def test_layer_shard_pipelines(self, model, acc):
        shard = simulate_serving(
            model, acc,
            _serving(num_devices=4, placement="layer_shard"),
        ).metrics
        replicate = simulate_serving(model, acc, _serving()).metrics
        assert shard.throughput_rps > replicate.throughput_rps
        assert shard.completed == 80

    def test_shard_needs_enough_layers(self, model, acc):
        cost = BatchCostModel(model, acc)
        with pytest.raises(ServingError):
            WorkerPool(13, "layer_shard", cost, acc)


class TestTraceExport:
    def test_spans_open_as_chrome_trace(self, model, acc, tmp_path):
        result = simulate_serving(model, acc, _serving())
        path = tmp_path / "serving.json"
        count = result.write_trace(str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert count == len(events)
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        counters = [e for e in events if e["ph"] == "C"]
        assert complete and meta and counters
        tracks = {e["args"]["name"] for e in meta}
        assert "device0" in tracks
        assert "queue" in tracks
        # every complete event references a named track
        tids = {e["tid"] for e in meta}
        assert all(e["tid"] in tids for e in complete)
        assert payload["otherData"]["completed"] == (
            result.metrics.completed
        )


class TestExplicitWorkload:
    def test_trace_driven_run(self, model, acc):
        workload = trace_workload([(0.0, 16), (10.0, 16), (20.0, 32)])
        result = simulate_serving(
            model, acc, _serving(max_wait_us=0.0), workload=workload
        )
        assert result.metrics.completed == 3

    def test_rejects_oversized_request(self, model, acc):
        workload = trace_workload([(0.0, 100)])
        with pytest.raises(ServingError):
            simulate_serving(model, acc, _serving(), workload=workload)

    def test_rejects_max_len_beyond_sa(self, model):
        small_acc = AcceleratorConfig(seq_len=32)
        with pytest.raises(ServingError):
            simulate_serving(
                transformer_base(), small_acc, _serving(max_len=64)
            )

    def test_empty_queue_metrics_are_sane(self, model, acc):
        workload = trace_workload([(0.0, 16)])
        m = simulate_serving(
            model, acc, _serving(max_wait_us=0.0), workload=workload
        ).metrics
        assert m.completed == 1
        assert not math.isnan(m.latency_p50_us)
