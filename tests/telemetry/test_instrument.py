"""Instrumentation hook tests: registry totals match model outputs.

The pinned paper-point numbers here (21578 / 39052 / 21834) are the
same closed-form totals the selftest and benchmarks assert, so a drift
in either the cycle model or the recording path fails loudly.
"""

import numpy as np
import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core import SystolicArray, schedule_ffn, schedule_mha
from repro.memsys import MemoryConfig
from repro.reliability import CampaignSpec, run_campaign
from repro.telemetry import MetricsRegistry, record_schedule


@pytest.fixture(scope="module")
def model():
    return transformer_base()


@pytest.fixture(scope="module")
def acc():
    return paper_accelerator()


class TestScheduleRecording:
    def test_paper_point_totals(self, model, acc):
        reg = MetricsRegistry()
        schedule_mha(model, acc, registry=reg)
        schedule_ffn(model, acc, registry=reg)
        schedule_mha(
            model, acc.with_updates(weight_load_cycles=8), registry=reg
        )
        cycles = reg.get("repro_schedule_cycles_total")
        assert cycles.value(block="mha") == 21_578 + 21_834
        assert cycles.value(block="ffn") == 39_052
        runs = reg.get("repro_schedule_runs_total")
        assert runs.value(block="mha") == 2
        assert runs.value(block="ffn") == 1

    def test_registry_does_not_perturb_schedule(self, model, acc):
        plain = schedule_mha(model, acc)
        instrumented = schedule_mha(
            model, acc, registry=MetricsRegistry()
        )
        assert instrumented.events == plain.events
        assert instrumented.total_cycles == plain.total_cycles

    def test_unit_busy_and_sa_counters(self, model, acc):
        reg = MetricsRegistry()
        result = schedule_mha(model, acc, registry=reg)
        busy = reg.get("repro_schedule_unit_busy_cycles_total")
        for unit in ("sa", "softmax", "layernorm"):
            assert busy.value(block="mha", unit=unit) == (
                result.unit_busy_cycles(unit)
            )
        sa_active = reg.get("repro_schedule_sa_active_cycles_total")
        assert sa_active.value(block="mha") == result.sa_active_cycles
        passes = reg.get("repro_schedule_sa_passes_total")
        assert passes.value(block="mha") == len(result.sa_events)

    def test_record_schedule_is_additive(self, model, acc):
        reg = MetricsRegistry()
        result = schedule_mha(model, acc)
        record_schedule(result, reg)
        record_schedule(result, reg)
        cycles = reg.get("repro_schedule_cycles_total")
        assert cycles.value(block="mha") == 2 * 21_578


class TestMemsysRecording:
    def test_prefetch_counters_match_schedule(self, model, acc):
        reg = MetricsRegistry()
        mem = MemoryConfig(bandwidth_gbps=8.0)
        result = schedule_mha(model, acc, mem=mem, registry=reg)
        stalls = reg.get("repro_memsys_stall_cycles_total")
        assert stalls.value(block="mha") == result.memsys_stall_cycles
        assert reg.get(
            "repro_schedule_memsys_stall_cycles_total"
        ).value(block="mha") == result.memsys_stall_cycles
        tiles = reg.get("repro_memsys_prefetch_tiles_total")
        fetched = (tiles.value(block="mha", outcome="stalled")
                   + tiles.value(block="mha", outcome="hidden"))
        assert fetched == len(result.dram_events)

    def test_infinite_bandwidth_never_stalls(self, model, acc):
        reg = MetricsRegistry()
        schedule_mha(model, acc, registry=reg)
        assert "repro_memsys_stall_cycles_total" not in reg
        assert "repro_schedule_memsys_stall_cycles_total" not in reg


class TestSystolicArrayRecording:
    def test_pass_counters(self):
        reg = MetricsRegistry()
        sa = SystolicArray(8, 8, registry=reg)
        rng = np.random.default_rng(3)
        a = rng.integers(-8, 8, size=(8, 4))
        b = rng.integers(-8, 8, size=(4, 8))
        result = sa.run_pass(a, b)
        sa.run_pass(a, b)
        assert reg.get("repro_sa_passes_total").value() == 2
        assert reg.get("repro_sa_compute_cycles_total").value() == (
            2 * result.compute_cycles
        )
        assert reg.get("repro_sa_useful_macs_total").value() == (
            2 * result.useful_macs
        )


class TestCampaignRecording:
    SPEC = CampaignSpec(
        seq_len=16, depth=16, cols=16, trials=8,
        sites=("sa_accumulator",), seed=5,
    )

    def test_outcome_counters_match_result(self):
        reg = MetricsRegistry()
        result = run_campaign(self.SPEC, registry=reg)
        labels = {"site": "sa_accumulator", "mode": "stuck_at"}
        cell = [
            o for o in result.outcomes
            if o.site == labels["site"] and o.mode == labels["mode"]
        ]
        assert reg.get("repro_reliability_trials_total").value(
            **labels
        ) == len(cell)
        assert reg.get("repro_reliability_injected_total").total() == (
            sum(o.injected for o in result.outcomes)
        )
        assert reg.get("repro_reliability_detections_total").total() == (
            sum(o.detected for o in result.outcomes)
        )
        assert reg.get(
            "repro_reliability_corrections_total"
        ).total() == sum(o.corrected for o in result.outcomes)

    def test_registry_does_not_perturb_campaign(self):
        plain = run_campaign(self.SPEC)
        instrumented = run_campaign(self.SPEC, registry=MetricsRegistry())
        assert instrumented.outcomes == plain.outcomes
