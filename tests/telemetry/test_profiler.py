"""Cycle-attribution profiler tests: exact wall-clock partition."""

import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core import ScheduleResult, schedule_ffn, schedule_mha
from repro.errors import TelemetryError
from repro.memsys import MemoryConfig
from repro.telemetry import (
    collapsed_stacks,
    profile_schedule,
    write_collapsed,
)


@pytest.fixture(scope="module")
def model():
    return transformer_base()


@pytest.fixture(scope="module")
def acc():
    return paper_accelerator()


class TestExactAttribution:
    def test_paper_point_mha(self, model, acc):
        profile = profile_schedule(schedule_mha(model, acc))
        assert profile.total_cycles == 21_578
        assert profile.attributed_cycles == 21_578

    def test_paper_point_ffn(self, model, acc):
        profile = profile_schedule(schedule_ffn(model, acc))
        assert profile.total_cycles == 39_052
        assert profile.attributed_cycles == 39_052

    def test_exposed_weight_loads(self, model, acc):
        exposed = acc.with_updates(weight_load_cycles=8)
        profile = profile_schedule(schedule_mha(model, exposed))
        assert profile.total_cycles == 21_834
        assert profile.attributed_cycles == 21_834

    def test_finite_memory_attributes_dram(self, model, acc):
        mem = MemoryConfig(bandwidth_gbps=8.0)
        result = schedule_mha(model, acc, mem=mem)
        profile = profile_schedule(result)
        assert profile.attributed_cycles == result.total_cycles
        # Exposed fetch stalls become dram-exclusive wall cycles.
        assert profile.unit("dram").exclusive_cycles == (
            result.memsys_stall_cycles
        )

    def test_sa_priority_wins_overlap(self, model, acc):
        # Softmax runs entirely under the V projection at the paper
        # point, so the SA owns every overlapped cycle and softmax's
        # exclusive share is zero despite 672 busy cycles.
        profile = profile_schedule(schedule_mha(model, acc))
        softmax = profile.unit("softmax")
        assert softmax.busy_cycles > 0
        assert softmax.exclusive_cycles == 0
        sa = profile.unit("sa")
        assert sa.exclusive_cycles == sa.busy_cycles

    def test_unknown_unit_raises(self, model, acc):
        profile = profile_schedule(schedule_mha(model, acc))
        with pytest.raises(TelemetryError, match="no unit"):
            profile.unit("npu")

    def test_empty_schedule_rejected(self):
        with pytest.raises(TelemetryError, match="no events"):
            profile_schedule(ScheduleResult(block="mha"))


class TestRows:
    def test_table_has_total_row_at_100_percent(self, model, acc):
        rows = profile_schedule(schedule_mha(model, acc)).rows()
        assert rows[-1][0] == "total"
        assert rows[-1][-1] == "100.0%"
        assert rows[-1][4] == "21,578"


class TestCollapsedStacks:
    def test_stacks_sum_to_totals(self, model, acc):
        mha = schedule_mha(model, acc)
        ffn = schedule_ffn(model, acc)
        lines = collapsed_stacks([mha, ffn])
        totals = {"mha": 0, "ffn": 0}
        for line in lines:
            stack, cycles = line.rsplit(" ", 1)
            totals[stack.split(";")[0]] += int(cycles)
        assert totals == {"mha": 21_578, "ffn": 39_052}

    def test_stack_frames_are_block_unit_event(self, model, acc):
        lines = collapsed_stacks([schedule_mha(model, acc)])
        frames = [line.rsplit(" ", 1)[0].split(";") for line in lines]
        assert all(f[0] == "mha" for f in frames)
        assert any(f[1] == "sa" for f in frames)

    def test_write_collapsed(self, model, acc, tmp_path):
        path = tmp_path / "profile.folded"
        count = write_collapsed([schedule_mha(model, acc)], str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_empty_schedule_rejected(self):
        with pytest.raises(TelemetryError, match="no events"):
            collapsed_stacks([ScheduleResult(block="mha")])
