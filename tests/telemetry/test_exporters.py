"""Exporter tests: Prometheus text, JSON artifact, Chrome counters."""

import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    timeseries_counter_events,
    to_json,
    to_prometheus_text,
    write_json,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    c = reg.counter("repro_cycles_total", "cycle counter")
    c.inc(21578, block="mha")
    c.inc(39052, block="ffn")
    reg.gauge("repro_util", "utilization").set(0.81)
    h = reg.histogram("repro_latency_us", "latency", buckets=(10.0, 100.0))
    for v in (5.0, 50.0, 500.0):
        h.observe(v)
    s = reg.series("repro_depth_track", "queue depth")
    s.sample(0.0, 1)
    s.sample(2.0, 3)
    return reg


class TestPrometheusText:
    def test_counter_exposition(self, registry):
        text = to_prometheus_text(registry)
        assert "# HELP repro_cycles_total cycle counter" in text
        assert "# TYPE repro_cycles_total counter" in text
        assert 'repro_cycles_total{block="mha"} 21578' in text
        assert 'repro_cycles_total{block="ffn"} 39052' in text

    def test_gauge_exposition(self, registry):
        assert "repro_util 0.81" in to_prometheus_text(registry)

    def test_histogram_exposition_cumulative(self, registry):
        text = to_prometheus_text(registry)
        assert 'repro_latency_us_bucket{le="10"} 1' in text
        assert 'repro_latency_us_bucket{le="100"} 2' in text
        assert 'repro_latency_us_bucket{le="+Inf"} 3' in text
        assert "repro_latency_us_sum 555" in text
        assert "repro_latency_us_count 3" in text

    def test_timeseries_exposed_as_latest_gauge(self, registry):
        text = to_prometheus_text(registry)
        assert "# TYPE repro_depth_track gauge" in text
        assert "repro_depth_track 3" in text

    def test_dotted_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("repro.cycles.total").inc(1)
        assert "repro_cycles_total 1" in to_prometheus_text(reg)

    def test_empty_registry(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestJson:
    def test_round_trip_structure(self, registry):
        doc = to_json(registry)
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["repro_cycles_total"]["kind"] == "counter"
        series = by_name["repro_cycles_total"]["series"]
        assert {"labels": {"block": "mha"}, "value": 21578} in series
        hist = by_name["repro_latency_us"]["series"][0]["value"]
        assert hist["count"] == 3
        ts = by_name["repro_depth_track"]["series"][0]["value"]
        assert ts["samples"][-1] == {"ts_us": 2.0, "value": 3}

    def test_write_json(self, registry, tmp_path):
        path = tmp_path / "metrics.json"
        count = write_json(registry, str(path))
        payload = json.loads(path.read_text())
        assert count == len(payload["metrics"]) == 4


class TestCounterEvents:
    def test_all_timeseries_exported(self, registry):
        events = timeseries_counter_events(registry)
        assert [e["ph"] for e in events] == ["C", "C"]
        assert events[0]["name"] == "repro_depth_track"
        assert events[0]["cat"] == "metrics"

    def test_name_mapping_filters_and_renames(self, registry):
        events = timeseries_counter_events(
            registry, names={"repro_depth_track": "queue_depth"}
        )
        assert all(e["name"] == "queue_depth" for e in events)
        assert timeseries_counter_events(
            registry, names={"repro_other": "x"}
        ) == []

    def test_labelled_series_get_suffixed_tracks(self):
        reg = MetricsRegistry()
        s = reg.series("repro_depth_track")
        s.sample(0.0, 1, device="0")
        events = timeseries_counter_events(reg)
        assert events[0]["name"] == "repro_depth_track[device=0]"

    def test_out_of_order_samples_export_sorted(self):
        reg = MetricsRegistry()
        s = reg.series("repro_depth_track")
        s.sample(5.0, 2)
        s.sample(1.0, 1)
        events = timeseries_counter_events(reg)
        assert [e["ts"] for e in events] == [1.0, 5.0]
