"""MetricsRegistry and instrument tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.telemetry import DEFAULT_BUCKETS, MetricsRegistry
from repro.telemetry.registry import Histogram


class TestCounter:
    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_cycles_total", "cycles")
        c.inc(5, block="mha")
        c.inc(7, block="ffn")
        c.inc(1, block="mha")
        assert c.value(block="mha") == 6
        assert c.value(block="ffn") == 7
        assert c.total() == 13

    def test_unlabelled_series(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_runs_total")
        c.inc()
        c.inc()
        assert c.value() == 2

    def test_label_order_does_not_matter(self):
        c = MetricsRegistry().counter("repro_x_total")
        c.inc(1, a="1", b="2")
        c.inc(1, b="2", a="1")
        assert c.value(a="1", b="2") == 2

    def test_decrement_rejected(self):
        c = MetricsRegistry().counter("repro_x_total")
        with pytest.raises(TelemetryError, match="cannot decrease"):
            c.inc(-1)

    def test_unknown_series_reads_zero(self):
        c = MetricsRegistry().counter("repro_x_total")
        assert c.value(block="never") == 0


class TestGauge:
    def test_set_and_inc(self):
        g = MetricsRegistry().gauge("repro_depth")
        g.set(3, device="0")
        g.inc(2, device="0")
        assert g.value(device="0") == 5

    def test_unset_series_raises(self):
        g = MetricsRegistry().gauge("repro_depth")
        with pytest.raises(TelemetryError, match="no series"):
            g.value(device="9")


class TestHistogram:
    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)

    def test_cumulative_buckets(self):
        h = Histogram("repro_lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.cumulative_buckets() == [
            (1.0, 1), (10.0, 3), (100.0, 4), (float("inf"), 5),
        ]

    def test_count_sum_mean(self):
        h = Histogram("repro_lat", buckets=(10.0,))
        h.observe(2.0)
        h.observe(4.0)
        assert h.count() == 2
        assert h.sum() == 6.0
        assert h.mean() == 3.0

    def test_empty_percentile_raises(self):
        h = Histogram("repro_lat", buckets=(10.0,))
        with pytest.raises(TelemetryError, match="empty"):
            h.percentile(50)

    def test_nan_sample_rejected(self):
        h = Histogram("repro_lat", buckets=(10.0,))
        with pytest.raises(TelemetryError, match="NaN"):
            h.observe(float("nan"))

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(TelemetryError, match="strictly increase"):
            Histogram("repro_lat", buckets=(1.0, 1.0))

    def test_infinite_bucket_rejected(self):
        with pytest.raises(TelemetryError, match="finite"):
            Histogram("repro_lat", buckets=(1.0, float("inf")))

    def test_percentile_matches_serving_definition(self):
        from repro.serving.metrics import percentile

        h = Histogram("repro_lat", buckets=(100.0,))
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for v in values:
            h.observe(v)
        for pct in (1, 25, 50, 90, 95, 99, 100):
            assert h.percentile(pct) == percentile(values, pct)

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=0.0, max_value=1e9,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=200,
        ),
        pct=st.sampled_from([50.0, 95.0, 99.0]),
    )
    def test_percentile_matches_numpy_reference(self, values, pct):
        # The nearest-rank percentile is NumPy's
        # 'inverted_cdf' method: the smallest observed value with at
        # least pct% of the sample at or below it.
        h = Histogram("repro_lat", buckets=(1.0, 1e6))
        for v in values:
            h.observe(v)
        reference = float(np.percentile(
            np.asarray(values), pct, method="inverted_cdf"
        ))
        assert h.percentile(pct) == reference


class TestTimeseries:
    def test_out_of_order_samples_sorted_on_read(self):
        s = MetricsRegistry().series("repro_depth_track")
        s.sample(5.0, 2)
        s.sample(1.0, 1)
        s.sample(3.0, 4)
        assert s.samples() == [(1.0, 1), (3.0, 4), (5.0, 2)]
        assert s.last() == 2

    def test_last_of_empty_raises(self):
        s = MetricsRegistry().series("repro_depth_track")
        with pytest.raises(TelemetryError, match="no samples"):
            s.last()


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "help text")
        b = reg.counter("repro_x_total")
        assert a is b
        assert len(reg) == 1

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(TelemetryError, match="is a counter"):
            reg.gauge("repro_x_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(TelemetryError, match="invalid metric name"):
            MetricsRegistry().counter("not a name!")

    def test_get_unknown_raises(self):
        with pytest.raises(TelemetryError, match="no metric named"):
            MetricsRegistry().get("repro_missing")

    def test_contains_and_registration_order(self):
        reg = MetricsRegistry()
        reg.counter("repro_b_total")
        reg.gauge("repro_a")
        assert "repro_b_total" in reg
        assert "repro_missing" not in reg
        assert [i.name for i in reg.instruments()] == [
            "repro_b_total", "repro_a",
        ]
