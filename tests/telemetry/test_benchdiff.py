"""Perf-regression gate tests: classification, seeding, provenance."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    HeadlineSpec,
    config_fingerprint,
    diff_benchmarks,
    git_sha,
    load_json,
    parse_baseline,
)

BASELINE = {
    "git_sha": "abc123",
    "headlines": {
        "cycles.total": {
            "value": 1000, "direction": "lower", "rel_tol": 0.0,
        },
        "serving.throughput": {
            "value": 100.0, "direction": "higher", "rel_tol": 0.05,
        },
        "memsys.crossover": {
            "value": 16.0, "direction": "either", "rel_tol": 0.02,
        },
    },
}


def _current(**headlines):
    return {"suite": "smoke", "headlines": headlines}


def _row(report, name):
    return next(r for r in report.rows if r.name == name)


class TestClassification:
    def test_identical_run_passes(self):
        report = diff_benchmarks(
            _current(**{"cycles.total": 1000,
                        "serving.throughput": 100.0,
                        "memsys.crossover": 16.0}),
            BASELINE,
        )
        assert report.passed
        assert {r.status for r in report.rows} == {"ok"}

    def test_lower_direction_regresses_upward_only(self):
        worse = diff_benchmarks(_current(**{"cycles.total": 1001}),
                                BASELINE)
        assert _row(worse, "cycles.total").status == "regressed"
        better = diff_benchmarks(_current(**{"cycles.total": 999}),
                                 BASELINE)
        assert _row(better, "cycles.total").status == "improved"

    def test_higher_direction_regresses_downward_only(self):
        worse = diff_benchmarks(
            _current(**{"serving.throughput": 90.0}), BASELINE
        )
        assert _row(worse, "serving.throughput").status == "regressed"
        better = diff_benchmarks(
            _current(**{"serving.throughput": 120.0}), BASELINE
        )
        assert _row(better, "serving.throughput").status == "improved"

    def test_either_direction_regresses_both_ways(self):
        for value in (16.0 * 1.03, 16.0 * 0.97):
            report = diff_benchmarks(
                _current(**{"memsys.crossover": value}), BASELINE
            )
            assert _row(report, "memsys.crossover").status == "regressed"

    def test_within_band_is_ok(self):
        report = diff_benchmarks(
            _current(**{"serving.throughput": 96.0}), BASELINE
        )
        assert _row(report, "serving.throughput").status == "ok"

    def test_zero_baseline_requires_exact_match(self):
        baseline = {"headlines": {
            "stalls": {"value": 0, "direction": "lower"},
        }}
        assert diff_benchmarks(_current(stalls=0), baseline).passed
        report = diff_benchmarks(_current(stalls=3), baseline)
        assert _row(report, "stalls").status == "regressed"

    def test_missing_headline_fails_gate(self):
        report = diff_benchmarks(_current(), BASELINE)
        assert not report.passed
        assert all(r.status == "missing" for r in report.rows)

    def test_unpinned_headline_is_informational(self):
        report = diff_benchmarks(
            _current(**{"cycles.total": 1000,
                        "serving.throughput": 100.0,
                        "memsys.crossover": 16.0,
                        "cycles.extra": 7}),
            BASELINE,
        )
        assert report.passed
        assert _row(report, "cycles.extra").status == "new"

    def test_non_numeric_headline_rejected(self):
        with pytest.raises(TelemetryError, match="not numeric"):
            diff_benchmarks(_current(**{"cycles.total": "fast"}),
                            BASELINE)


class TestOnlyPrefixes:
    def test_suite_scoped_gate_ignores_other_pins(self):
        # A cycles-only artifact passes when the gate is scoped to the
        # cycles.* pins, even though the other suites' headlines are
        # absent from the run.
        report = diff_benchmarks(
            _current(**{"cycles.total": 1000}), BASELINE,
            only=["cycles."],
        )
        assert report.passed
        assert [r.name for r in report.rows] == ["cycles.total"]

    def test_scoped_gate_still_catches_regressions(self):
        report = diff_benchmarks(
            _current(**{"cycles.total": 2000}), BASELINE,
            only=["cycles."],
        )
        assert not report.passed

    def test_scoped_gate_hides_out_of_scope_new_headlines(self):
        report = diff_benchmarks(
            _current(**{"cycles.total": 1000, "other.thing": 3}),
            BASELINE, only=["cycles."],
        )
        assert [r.name for r in report.rows] == ["cycles.total"]

    def test_unmatched_prefix_is_an_error(self):
        with pytest.raises(TelemetryError, match="no pinned headline"):
            diff_benchmarks(_current(), BASELINE, only=["nosuch."])


class TestSeedSlowdown:
    def test_seeded_slowdown_regresses_every_direction(self):
        report = diff_benchmarks(
            _current(**{"cycles.total": 1000,
                        "serving.throughput": 100.0,
                        "memsys.crossover": 16.0}),
            BASELINE,
            seed_slowdown=1.2,
        )
        assert not report.passed
        assert len(report.regressions) == 3

    def test_factor_must_exceed_one(self):
        with pytest.raises(TelemetryError, match="exceed 1.0"):
            diff_benchmarks(_current(), BASELINE, seed_slowdown=1.0)


class TestParsing:
    def test_bare_number_entry_gets_defaults(self):
        specs, _ = parse_baseline({"headlines": {"x": 5.0}})
        assert specs["x"] == HeadlineSpec(value=5.0)
        assert specs["x"].direction == "either"

    def test_missing_headlines_section(self):
        with pytest.raises(TelemetryError, match="headlines"):
            parse_baseline({"git_sha": "abc"})

    def test_entry_without_value(self):
        with pytest.raises(TelemetryError, match="missing"):
            parse_baseline({"headlines": {"x": {"direction": "lower"}}})

    def test_bad_direction_rejected(self):
        with pytest.raises(TelemetryError, match="direction"):
            HeadlineSpec(value=1.0, direction="sideways")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(TelemetryError, match="non-negative"):
            HeadlineSpec(value=1.0, rel_tol=-0.1)

    def test_metadata_split_and_report_dict(self):
        report = diff_benchmarks(
            _current(**{"cycles.total": 1000,
                        "serving.throughput": 100.0,
                        "memsys.crossover": 16.0}),
            BASELINE,
        )
        assert report.baseline_meta == {"git_sha": "abc123"}
        assert report.current_meta["suite"] == "smoke"
        doc = report.as_dict()
        assert doc["passed"] is True
        assert len(doc["rows"]) == 3

    def test_load_json_missing_file(self, tmp_path):
        with pytest.raises(TelemetryError, match="no such file"):
            load_json(str(tmp_path / "absent.json"))

    def test_load_json_invalid(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TelemetryError, match="not valid JSON"):
            load_json(str(bad))


class TestProvenance:
    def test_config_fingerprint_is_stable(self):
        fp = config_fingerprint()
        assert fp == config_fingerprint()
        assert len(fp) == 16
        int(fp, 16)

    def test_git_sha_of_this_repo(self):
        sha = git_sha()
        assert sha is None or len(sha) == 40

    def test_git_sha_outside_checkout(self, tmp_path):
        assert git_sha(cwd=str(tmp_path)) is None
