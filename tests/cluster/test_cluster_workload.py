"""Multi-tenant workload generation tests (repro.cluster.workload)."""

import dataclasses

import numpy as np
import pytest

from repro.cluster import (
    ClusterRequest,
    cluster_workload,
    tenant_workload,
    validate_cluster_workload,
)
from repro.config import ClusterConfig, PoolConfig, TenantConfig
from repro.errors import ServingError


def _tenant(**overrides):
    base = dict(
        name="t0", arrival="poisson", rate_rps=800.0, num_requests=200,
        min_len=8, max_len=32, slo_us=30_000.0,
    )
    base.update(overrides)
    return TenantConfig(**base)


def _cluster(tenants, **overrides):
    base = dict(
        pools=(PoolConfig(name="p0"),),
        tenants=tuple(tenants),
    )
    base.update(overrides)
    return ClusterConfig(**base)


class TestTenantWorkload:
    def test_deterministic_per_seed(self):
        a = tenant_workload(_tenant(), master_seed=7)
        b = tenant_workload(_tenant(), master_seed=7)
        assert a == b

    def test_master_seed_changes_stream(self):
        a = tenant_workload(_tenant(), master_seed=1)
        b = tenant_workload(_tenant(), master_seed=2)
        assert a != b

    def test_tenants_draw_independent_streams(self):
        a = tenant_workload(_tenant(name="alpha"), master_seed=0)
        b = tenant_workload(_tenant(name="beta"), master_seed=0)
        assert [r.arrival_us for r in a] != [r.arrival_us for r in b]

    @pytest.mark.parametrize("arrival", ["poisson", "diurnal", "mmpp"])
    def test_arrivals_sorted_and_lengths_bounded(self, arrival):
        requests = tenant_workload(_tenant(arrival=arrival), master_seed=3)
        times = [r.arrival_us for r in requests]
        assert times == sorted(times)
        assert all(8 <= r.seq_len <= 32 for r in requests)
        assert all(r.slo_us == 30_000.0 for r in requests)

    @pytest.mark.parametrize("arrival", ["poisson", "diurnal", "mmpp"])
    def test_long_run_rate_near_mean(self, arrival):
        # All three processes share the same configured long-run mean;
        # over a long stream the empirical rate should land near it.
        tenant = _tenant(arrival=arrival, num_requests=4000)
        requests = tenant_workload(tenant, master_seed=11)
        span_s = requests[-1].arrival_us / 1e6
        rate = len(requests) / span_s
        assert rate == pytest.approx(tenant.rate_rps, rel=0.25)

    def test_diurnal_rate_actually_varies(self):
        tenant = _tenant(
            arrival="diurnal", num_requests=3000,
            diurnal_period_us=1_000_000.0, diurnal_amplitude=0.9,
        )
        requests = tenant_workload(tenant, master_seed=5)
        times = np.array([r.arrival_us for r in requests])
        # Compare arrivals landing in the sinusoid's peak half-period
        # against the trough half-period, phase-aligned over whole
        # periods: the peak half must carry clearly more traffic.
        phase = np.mod(times, tenant.diurnal_period_us)
        peak = int(np.sum(phase < tenant.diurnal_period_us / 2))
        trough = len(times) - peak
        assert peak > 1.5 * trough

    def test_mmpp_is_burstier_than_poisson(self):
        n = 4000
        poisson = tenant_workload(
            _tenant(arrival="poisson", num_requests=n), master_seed=9
        )
        mmpp = tenant_workload(
            _tenant(arrival="mmpp", num_requests=n, burst_multiplier=10.0,
                    burst_fraction=0.1), master_seed=9
        )

        def cv2(requests):
            gaps = np.diff([r.arrival_us for r in requests])
            return float(np.var(gaps) / np.mean(gaps) ** 2)

        # A Poisson process has squared coefficient of variation 1; the
        # MMPP's calm/burst alternation must push it well above.
        assert cv2(poisson) == pytest.approx(1.0, abs=0.3)
        assert cv2(mmpp) > 1.5


class TestClusterWorkload:
    def test_merged_stream_is_dense_and_sorted(self):
        cluster = _cluster([
            _tenant(name="a", seed=1),
            _tenant(name="b", arrival="mmpp", seed=2),
            _tenant(name="c", arrival="diurnal", seed=3),
        ])
        merged = cluster_workload(cluster)
        assert [r.req_id for r in merged] == list(range(600))
        times = [r.arrival_us for r in merged]
        assert times == sorted(times)
        assert {r.tenant for r in merged} == {"a", "b", "c"}
        validate_cluster_workload(merged, max_seq_len=64)

    def test_requests_carry_their_tenant_contract(self):
        cluster = _cluster([
            _tenant(name="gold", slo_us=10_000.0, weight=5.0),
            _tenant(name="bulk", slo_us=90_000.0, weight=1.0),
        ])
        for request in cluster_workload(cluster):
            if request.tenant == "gold":
                assert request.slo_us == 10_000.0
                assert request.weight == 5.0
            else:
                assert request.slo_us == 90_000.0
                assert request.weight == 1.0
            assert request.deadline_us == (
                request.arrival_us + request.slo_us
            )

    def test_cluster_seed_pins_everything(self):
        tenants = [_tenant(name="a"), _tenant(name="b", arrival="mmpp")]
        one = cluster_workload(_cluster(tenants, seed=42))
        two = cluster_workload(_cluster(tenants, seed=42))
        other = cluster_workload(_cluster(tenants, seed=43))
        assert one == two
        assert one != other

    def test_validation_rejects_bad_streams(self):
        request = ClusterRequest(
            req_id=0, arrival_us=0.0, seq_len=16,
            tenant="t", slo_us=1000.0, weight=1.0,
        )
        with pytest.raises(ServingError):
            validate_cluster_workload(
                [dataclasses.replace(request, req_id=5)], 64
            )
        with pytest.raises(ServingError):
            validate_cluster_workload(
                [request,
                 dataclasses.replace(request, req_id=1, arrival_us=-1.0)],
                64,
            )
        with pytest.raises(ServingError):
            validate_cluster_workload(
                [dataclasses.replace(request, seq_len=65)], 64
            )
