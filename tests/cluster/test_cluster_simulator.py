"""End-to-end cluster simulation tests (repro.cluster.simulator).

Covers the pinned heterogeneous scenario, same-seed reproducibility,
registry instrumentation, the Chrome-trace export, and the admission
edge cases under bursty arrivals: a queue timeout landing exactly on
its deadline, a full queue at the burst peak, and zero-completion runs
(metrics must stay finite — no division by zero).
"""

import json

import pytest

from repro.cluster import (
    ClusterRequest,
    build_cost_model,
    pinned_cluster,
    simulate_cluster,
)
from repro.config import (
    AutoscalerConfig,
    ClusterConfig,
    PoolConfig,
    TenantConfig,
    transformer_base,
)
from repro.core.trace import KNOWN_TRACK_PATTERNS
from repro.errors import ServingError
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def model():
    return transformer_base()


@pytest.fixture(scope="module")
def pinned_result(model):
    return simulate_cluster(model, pinned_cluster(requests_per_tenant=60))


def _edge_cluster(**overrides):
    base = dict(
        pools=(PoolConfig(name="p0", num_devices=1, min_devices=1,
                          max_devices=1),),
        tenants=(TenantConfig(name="a"), TenantConfig(name="b")),
        router_policy="round_robin",
        autoscaler=AutoscalerConfig(enabled=False),
        queue_capacity=8,
        max_batch_requests=1,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def _req(req_id, arrival=0.0, tenant="a", slo_us=1e9, seq_len=16):
    return ClusterRequest(
        req_id=req_id, arrival_us=arrival, seq_len=seq_len,
        tenant=tenant, slo_us=slo_us, weight=1.0,
    )


class TestPinnedScenario:
    def test_shape(self, pinned_result):
        cm = pinned_result.metrics
        assert set(cm.pools) == {"fpga-a", "fpga-b", "gpu-0"}
        assert set(cm.tenants) == {"interactive", "batch", "bursty"}
        assert cm.router_policy == "slo"

    def test_conservation(self, pinned_result):
        cm = pinned_result.metrics
        assert cm.offered == 180
        assert cm.offered == (
            cm.completed + cm.shed + cm.rejected + cm.expired
        )
        for tenant in cm.tenants.values():
            assert tenant.offered == (
                tenant.completed + tenant.shed + tenant.rejected
                + tenant.expired
            )
        assert sum(p.routed for p in cm.pools.values()) == (
            cm.offered - cm.shed
        )
        assert sum(p.completed for p in cm.pools.values()) == cm.completed

    def test_serves_and_measures(self, pinned_result):
        cm = pinned_result.metrics
        assert cm.completed > 0
        assert cm.throughput_rps > 0
        assert cm.makespan_us > 0
        assert 0.0 <= cm.slo_attainment <= 1.0
        assert cm.latency_p50_us <= cm.latency_p99_us

    def test_every_span_track_is_registered(self, pinned_result):
        from fnmatch import fnmatch

        for span in pinned_result.spans:
            assert any(
                fnmatch(span.track, pattern)
                for pattern in KNOWN_TRACK_PATTERNS
            ), f"unregistered track {span.track!r}"

    def test_unknown_tenant_in_workload_rejected(self, model):
        cluster = _edge_cluster()
        with pytest.raises(ServingError):
            simulate_cluster(
                model, cluster, workload=[_req(0, tenant="ghost")]
            )


class TestDeterminism:
    def test_same_seed_same_run(self, model):
        cluster = pinned_cluster(requests_per_tenant=40)
        a = simulate_cluster(model, cluster)
        b = simulate_cluster(model, cluster)
        assert a.metrics == b.metrics
        assert a.spans == b.spans
        assert a.actions == b.actions
        assert [r.completed_us for r in a.records] == [
            r.completed_us for r in b.records
        ]

    def test_seed_changes_the_run(self, model):
        a = simulate_cluster(
            model, pinned_cluster(requests_per_tenant=40, seed=0)
        )
        b = simulate_cluster(
            model, pinned_cluster(requests_per_tenant=40, seed=1)
        )
        assert [r.request.arrival_us for r in a.records] != [
            r.request.arrival_us for r in b.records
        ]

    def test_registry_does_not_perturb_the_run(self, model):
        cluster = pinned_cluster(requests_per_tenant=40)
        registry = MetricsRegistry()
        instrumented = simulate_cluster(model, cluster, registry=registry)
        plain = simulate_cluster(model, cluster)
        assert instrumented.metrics == plain.metrics
        cm = instrumented.metrics
        assert registry.counter(
            "repro_cluster_requests_offered_total"
        ).total() == cm.offered
        assert registry.counter(
            "repro_cluster_requests_total"
        ).total() == cm.offered
        assert registry.counter(
            "repro_cluster_routing_decisions_total"
        ).total() == cm.offered - cm.shed


class TestPolicyValue:
    def test_slo_routing_beats_static_round_robin(self, model):
        """The acceptance headline: smarter routing + autoscaling wins.

        Same workload, same per-pool device budget (the static baseline
        runs every pool at max_devices throughout).
        """
        smart = simulate_cluster(
            model,
            pinned_cluster(requests_per_tenant=120, router_policy="slo",
                           autoscale=True),
        ).metrics
        naive = simulate_cluster(
            model,
            pinned_cluster(requests_per_tenant=120,
                           router_policy="round_robin", autoscale=False),
        ).metrics
        assert smart.slo_attainment > naive.slo_attainment
        assert smart.latency_p99_us < naive.latency_p99_us


class TestTraceExport:
    def test_single_trace_with_per_pool_tracks(self, pinned_result,
                                               tmp_path):
        path = tmp_path / "cluster.json"
        count = pinned_result.write_trace(str(path))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        tracks = {
            e["args"]["name"] for e in payload["traceEvents"]
            if e["name"] == "thread_name"
        }
        for pool, summary in pinned_result.metrics.pools.items():
            if summary.completed:
                assert f"{pool}.device0" in tracks
        counters = {
            e["name"] for e in payload["traceEvents"] if e["ph"] == "C"
        }
        for pool in ("fpga-a", "fpga-b", "gpu-0"):
            assert f"{pool}.queue_depth" in counters
            assert f"{pool}.devices" in counters
        assert payload["otherData"]["router_policy"] == "slo"


class TestAdmissionEdgeCases:
    def test_timeout_exactly_at_deadline_expires(self, model):
        cluster = _edge_cluster(queue_timeout_us=400.0)
        run_us = build_cost_model(cluster.pools[0], model, 64).run_us()
        assert run_us > 400.0  # premise: the device is still busy
        result = simulate_cluster(
            model, cluster, workload=[_req(0), _req(1)]
        )
        first, second = result.records
        # Request 0 takes the only device; request 1's expiry wakeup
        # fires at exactly arrival + timeout and must drop it (the
        # queue compares with >=, so the boundary is never missed).
        assert first.status == "completed"
        assert second.status == "expired"
        assert result.metrics.expired == 1

    def test_queue_full_at_burst_peak_rejects(self, model):
        cluster = _edge_cluster(queue_capacity=2)
        burst = [_req(i) for i in range(10)]
        result = simulate_cluster(model, cluster, workload=burst)
        cm = result.metrics
        # One request dispatches immediately, two wait in the bounded
        # queue, the remaining seven hit a full queue and are rejected.
        assert cm.rejected == 7
        assert cm.completed == 3
        assert cm.offered == cm.completed + cm.rejected

    def test_empty_workload_keeps_metrics_finite(self, model):
        registry = MetricsRegistry()
        result = simulate_cluster(
            model, _edge_cluster(), workload=[], registry=registry
        )
        cm = result.metrics
        assert cm.offered == 0
        assert cm.slo_attainment == 0.0
        assert cm.throughput_rps == 0.0
        # Empty-safe: zero-admission summaries report 0.0, never NaN.
        assert cm.latency_p50_us == 0.0
        assert cm.latency_p99_us == 0.0
        assert cm.latency_mean_us == 0.0
        for pool in cm.pools.values():
            assert pool.mean_batch_size == 0.0
            assert pool.occupancy == 0.0
            assert pool.weight_cache_hit_rate == 0.0
        # The report renderer must survive the all-zero case too, and
        # print "n/a" rather than a bogus 0.0 us latency.
        rows = cm.as_rows()
        assert ["p50 latency", "n/a"] in rows

    def test_tenant_with_zero_completions(self, model):
        cluster = _edge_cluster(queue_timeout_us=100.0)
        run_us = build_cost_model(cluster.pools[0], model, 64).run_us()
        assert run_us > 100.0
        workload = [_req(0, tenant="a")] + [
            _req(i, tenant="b") for i in range(1, 4)
        ]
        result = simulate_cluster(model, cluster, workload=workload)
        b = result.metrics.tenants["b"]
        assert b.completed == 0
        assert b.expired == 3
        assert b.slo_attainment == 0.0
        # Zero-admission tenant window: explicit zeros, never NaN.
        assert b.latency_p50_us == 0.0
        assert b.latency_p99_us == 0.0
        assert b.latency_mean_us == 0.0
        assert result.metrics.as_rows()
