"""CLI tests for ``repro cluster-sim`` and seeded reproducibility.

Satellite of the cluster PR: two runs with the same ``--seed`` must
produce identical metrics (for both ``serve-sim`` and ``cluster-sim``),
and a different seed must change the run.
"""

import json

from repro.cli import main


class TestClusterSim:
    def test_runs_pinned_scenario(self, capsys):
        assert main(["cluster-sim", "--requests-per-tenant", "40"]) == 0
        out = capsys.readouterr().out
        assert "3 pools / 3 tenants" in out
        assert "SLO attainment" in out
        for name in ("interactive", "batch", "bursty"):
            assert f"tenant {name}" in out
        for name in ("fpga-a", "fpga-b", "gpu-0"):
            assert f"pool {name}" in out

    def test_policy_and_static_flags(self, capsys):
        assert main(["cluster-sim", "--requests-per-tenant", "30",
                     "--policy", "least_queue", "--no-autoscale"]) == 0
        out = capsys.readouterr().out
        assert "policy least_queue" in out
        assert "static" in out

    def test_compare_round_robin(self, capsys):
        assert main(["cluster-sim", "--requests-per-tenant", "40",
                     "--compare-round-robin"]) == 0
        out = capsys.readouterr().out
        assert "vs static round-robin at equal device budget" in out
        assert "attainment delta" in out

    def test_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "cluster_trace.json"
        assert main(["cluster-sim", "--requests-per-tenant", "30",
                     "--trace-out", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        assert payload["otherData"]["router_policy"] == "slo"
        assert payload["traceEvents"]

    def test_json_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(["cluster-sim", "--requests-per-tenant", "30",
                     "--json", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["policy"] == "slo"
        assert report["summary"]["offered"] == 90
        assert set(report["tenants"]) == {"interactive", "batch", "bursty"}
        assert set(report["pools"]) == {"fpga-a", "fpga-b", "gpu-0"}
        offered = [
            m for m in report["registry"]["metrics"]
            if m["name"] == "repro_cluster_requests_offered_total"
        ]
        assert offered


class TestSeededDeterminism:
    def _cluster_report(self, tmp_path, capsys, seed, tag):
        path = tmp_path / f"report_{tag}.json"
        assert main(["cluster-sim", "--requests-per-tenant", "30",
                     "--seed", str(seed), "--json", str(path)]) == 0
        capsys.readouterr()
        return json.loads(path.read_text())

    def test_cluster_sim_same_seed_identical_metrics(self, tmp_path,
                                                     capsys):
        one = self._cluster_report(tmp_path, capsys, 7, "a")
        two = self._cluster_report(tmp_path, capsys, 7, "b")
        assert one == two

    def test_cluster_sim_seed_changes_run(self, tmp_path, capsys):
        one = self._cluster_report(tmp_path, capsys, 7, "a")
        other = self._cluster_report(tmp_path, capsys, 8, "b")
        assert one["summary"]["makespan_us"] != other["summary"]["makespan_us"]

    def test_serve_sim_same_seed_identical_metrics(self, capsys):
        args = ["serve-sim", "--requests", "60", "--seed", "5"]
        assert main(args) == 0
        one = capsys.readouterr().out
        assert main(args) == 0
        two = capsys.readouterr().out
        assert one == two

    def test_serve_sim_seed_changes_run(self, capsys):
        assert main(["serve-sim", "--requests", "60", "--seed", "5"]) == 0
        one = capsys.readouterr().out
        assert main(["serve-sim", "--requests", "60", "--seed", "6"]) == 0
        two = capsys.readouterr().out
        assert one != two
