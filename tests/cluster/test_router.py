"""Router policy tests (repro.cluster.router)."""

import pytest

from repro.cluster import ClusterRequest, PoolRuntime, Router
from repro.config import (
    ClusterConfig,
    PoolConfig,
    TenantConfig,
    transformer_base,
)
from repro.errors import ServingError

SEQ_LEN = 64


@pytest.fixture(scope="module")
def model():
    return transformer_base()


def _cluster(policy="round_robin", **overrides):
    base = dict(
        pools=(
            PoolConfig(name="fpga-x", num_devices=1, max_devices=2),
            PoolConfig(name="fpga-y", num_devices=1, max_devices=2),
            PoolConfig(name="gpu", kind="gpu", num_devices=1,
                       max_devices=2),
        ),
        tenants=(
            TenantConfig(name="a", weight=1.0),
            TenantConfig(name="b", weight=1.0),
        ),
        router_policy=policy,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def _pools(cluster, model):
    return [PoolRuntime(p, cluster, model, SEQ_LEN) for p in cluster.pools]


def _req(req_id=0, arrival=0.0, tenant="a", slo_us=1e9, weight=1.0,
         seq_len=16):
    return ClusterRequest(
        req_id=req_id, arrival_us=arrival, seq_len=seq_len,
        tenant=tenant, slo_us=slo_us, weight=weight,
    )


class TestRoundRobin:
    def test_rotates_over_pools(self, model):
        cluster = _cluster("round_robin")
        pools = _pools(cluster, model)
        router = Router(cluster, pools)
        picks = [router.route(_req(i), 0.0).name for i in range(6)]
        assert picks == ["fpga-x", "fpga-y", "gpu"] * 2
        assert router.decisions == {"fpga-x": 2, "fpga-y": 2, "gpu": 2}

    def test_skips_dead_pools(self, model):
        cluster = _cluster("round_robin")
        pools = _pools(cluster, model)
        pools[0].workers.fail_device(0, 0.0)
        router = Router(cluster, pools)
        picks = {router.route(_req(i), 0.0).name for i in range(4)}
        assert picks == {"fpga-y", "gpu"}

    def test_all_pools_dead_is_fatal(self, model):
        cluster = _cluster("round_robin")
        pools = _pools(cluster, model)
        for pool in pools:
            pool.workers.fail_device(0, 0.0)
        router = Router(cluster, pools)
        with pytest.raises(ServingError):
            router.route(_req(), 0.0)


class TestLeastQueue:
    def test_picks_emptiest_pool(self, model):
        cluster = _cluster("least_queue")
        pools = _pools(cluster, model)
        router = Router(cluster, pools)
        for i in range(3):
            pools[0].queue.offer(_req(100 + i), 0.0)
        for i in range(2):
            pools[2].queue.offer(_req(200 + i), 0.0)
        assert router.route(_req(), 0.0).name == "fpga-y"

    def test_depth_is_per_active_device(self, model):
        cluster = _cluster("least_queue")
        pools = _pools(cluster, model)
        router = Router(cluster, pools)
        # fpga-x: 3 waiters over 2 devices (1.5 each); the others hold
        # 2 waiters on their single device.
        pools[0].workers.add_device(0.0)
        for i in range(3):
            pools[0].queue.offer(_req(100 + i), 0.0)
        for pool in pools[1:]:
            for i in range(2):
                pool.queue.offer(_req(id(pool) % 1000 + i), 0.0)
        assert router.route(_req(), 0.0).name == "fpga-x"


class TestEwma:
    def test_seeded_from_uncontended_run(self, model):
        cluster = _cluster("ewma")
        pools = _pools(cluster, model)
        for pool in pools:
            assert pool.ewma_us == pool.run_us
        fastest = min(pools, key=lambda p: p.run_us)
        router = Router(cluster, pools)
        # Heterogeneity is visible before any completion: the GPU pool
        # (roofline, ~3x faster than the 200 MHz FPGA schedule) wins.
        assert fastest.name == "gpu"
        assert router.route(_req(), 0.0) is fastest

    def test_completions_move_the_needle(self, model):
        cluster = _cluster("ewma", ewma_alpha=0.9)
        pools = _pools(cluster, model)
        router = Router(cluster, pools)
        gpu = pools[2]
        slow = 100 * max(p.run_us for p in pools)
        for _ in range(20):
            gpu.observe_completion(0.0, slow, cluster.ewma_alpha)
        assert router.route(_req(), 0.0).name == "fpga-x"


class TestSloPolicy:
    def test_picks_earliest_predicted_completion(self, model):
        cluster = _cluster("slo")
        pools = _pools(cluster, model)
        router = Router(cluster, pools)
        assert router.route(_req(), 0.0).name == "gpu"

    def test_backlog_diverts_to_slower_pool(self, model):
        cluster = _cluster("slo")
        pools = _pools(cluster, model)
        router = Router(cluster, pools)
        gpu, fpga = pools[2], pools[0]
        # Queue enough work on the GPU that its predicted completion
        # (backlog batches + 1, each run_us) exceeds one uncontended
        # FPGA run; fpga-y is also slower than fpga-x? no — identical,
        # so the name tiebreak picks fpga-x.
        per_batch = cluster.max_batch_requests
        backlog = per_batch * (
            int(fpga.run_us / gpu.run_us) + 1
        )
        for i in range(backlog):
            gpu.queue.offer(_req(100 + i), 0.0)
        assert gpu.predicted_completion_us(0.0) > fpga.predicted_completion_us(0.0)
        assert router.route(_req(), 0.0).name == "fpga-x"

    def test_infeasible_first_request_still_admitted(self, model):
        cluster = _cluster("slo")
        pools = _pools(cluster, model)
        router = Router(cluster, pools)
        # No pool can finish in 1 us, but the admission window is empty,
        # so the requester is under its fair share: least-bad pool.
        choice = router.route(_req(slo_us=1.0), 0.0)
        assert choice is not None
        assert choice.name == "gpu"
        assert router.shed == 0

    def test_sheds_only_over_share_tenants(self, model):
        cluster = _cluster("slo")
        pools = _pools(cluster, model)
        router = Router(cluster, pools)
        # Tenant a fills the admission window with feasible work and is
        # now at/above its 50% weighted share.
        for i in range(6):
            assert router.route(_req(i, tenant="a"), 0.0) is not None
        assert router.route(_req(10, tenant="a", slo_us=1.0), 0.0) is None
        assert router.shed == 1
        # Tenant b holds none of the window: same impossible deadline,
        # but the fairness guard routes it to the least-bad pool.
        choice = router.route(_req(11, tenant="b", slo_us=1.0), 0.0)
        assert choice is not None
        assert router.shed == 1

    def test_fairness_window_slides(self, model):
        cluster = _cluster("slo", fairness_window_us=1_000.0)
        pools = _pools(cluster, model)
        router = Router(cluster, pools)
        for i in range(6):
            router.route(_req(i, tenant="a"), 0.0)
        # Once the admissions age out of the window, tenant a is no
        # longer over-share and infeasible requests are admitted again.
        later = 10_000.0
        choice = router.route(
            _req(10, tenant="a", arrival=later, slo_us=1.0), later
        )
        assert choice is not None
        assert router.shed == 0
