"""Autoscaler tests: threshold policy units + safety properties.

The hypothesis section drives full :func:`simulate_cluster` runs over
randomized scaler settings and asserts the three safety invariants the
subsystem promises: cooldowns are never violated, replica counts never
leave ``[min_devices, max_devices]``, and graceful draining never drops
admitted work.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Autoscaler, ClusterRequest, PoolRuntime, simulate_cluster
from repro.config import (
    AutoscalerConfig,
    ClusterConfig,
    PoolConfig,
    TenantConfig,
    transformer_base,
)

SEQ_LEN = 64


@pytest.fixture(scope="module")
def model():
    return transformer_base()


def _scaler_cfg(**overrides):
    base = dict(
        interval_us=1_000.0, scale_up_queue_depth=2.0,
        scale_down_busy=0.5, cooldown_up_us=5_000.0,
        cooldown_down_us=5_000.0,
    )
    base.update(overrides)
    return AutoscalerConfig(**base)


def _pool_runtime(model, scaler, **pool_overrides):
    pool_base = dict(name="p0", num_devices=1, min_devices=1, max_devices=3)
    pool_base.update(pool_overrides)
    cluster = ClusterConfig(
        pools=(PoolConfig(**pool_base),),
        tenants=(TenantConfig(name="t"),),
        autoscaler=scaler,
    )
    return PoolRuntime(cluster.pools[0], cluster, model, SEQ_LEN)


def _fill_queue(pool, count, now=0.0):
    for i in range(count):
        pool.queue.offer(
            ClusterRequest(req_id=i, arrival_us=now, seq_len=16,
                           tenant="t", slo_us=1e9, weight=1.0),
            now,
        )


class TestScaleUp:
    def test_adds_replica_on_queue_depth(self, model):
        cfg = _scaler_cfg()
        pool = _pool_runtime(model, cfg)
        scaler = Autoscaler(cfg, [pool])
        _fill_queue(pool, 3)
        actions = scaler.evaluate(1_000.0)
        assert len(actions) == 1
        assert (actions[0].direction, actions[0].reason) == (
            "up", "queue_depth"
        )
        assert pool.active_device_count == 2

    def test_cooldown_blocks_consecutive_ups(self, model):
        cfg = _scaler_cfg()
        pool = _pool_runtime(model, cfg)
        scaler = Autoscaler(cfg, [pool])
        _fill_queue(pool, 20)
        assert scaler.evaluate(1_000.0)
        assert not scaler.evaluate(2_000.0)
        assert scaler.evaluate(1_000.0 + cfg.cooldown_up_us)
        assert pool.active_device_count == 3

    def test_never_exceeds_max_devices(self, model):
        cfg = _scaler_cfg(cooldown_up_us=0.0)
        pool = _pool_runtime(model, cfg, max_devices=2)
        scaler = Autoscaler(cfg, [pool])
        _fill_queue(pool, 50)
        for tick in range(5):
            scaler.evaluate(1_000.0 * (tick + 1))
        assert pool.active_device_count == 2

    def test_p99_signal_fires(self, model):
        cfg = _scaler_cfg(scale_up_p99_us=100.0)
        pool = _pool_runtime(model, cfg)
        scaler = Autoscaler(cfg, [pool])
        for _ in range(10):
            pool.observe_completion(900.0, 500.0, alpha=0.2)
        actions = scaler.evaluate(1_000.0)
        assert [a.reason for a in actions] == ["p99"]


class TestScaleDown:
    def test_drains_idle_replica(self, model):
        cfg = _scaler_cfg()
        pool = _pool_runtime(model, cfg)
        pool.workers.add_device(0.0)
        scaler = Autoscaler(cfg, [pool])
        actions = scaler.evaluate(10_000.0)
        assert [a.direction for a in actions] == ["down"]
        assert pool.active_device_count == 1
        drained = pool.workers.devices[actions[0].device_id]
        assert drained.draining and drained.alive

    def test_respects_min_devices(self, model):
        cfg = _scaler_cfg()
        pool = _pool_runtime(model, cfg)
        scaler = Autoscaler(cfg, [pool])
        assert not scaler.evaluate(10_000.0)
        assert pool.active_device_count == 1

    def test_busy_pool_not_drained(self, model):
        cfg = _scaler_cfg()
        pool = _pool_runtime(model, cfg)
        pool.workers.add_device(0.0)
        scaler = Autoscaler(cfg, [pool])
        for device in pool.workers.devices:
            device.occupy(9_000.0, cfg.interval_us)
        assert not scaler.evaluate(10_000.0)

    def test_victim_is_soonest_free_device(self, model):
        cfg = _scaler_cfg()
        pool = _pool_runtime(model, cfg)
        pool.workers.add_device(0.0)
        pool.workers.devices[0].occupy(0.0, 50_000.0)
        # Absorb the old busy time into the snapshot so the evaluation
        # interval itself reads idle.
        pool.interval_busy_fraction(cfg.interval_us)
        scaler = Autoscaler(cfg, [pool])
        actions = scaler.evaluate(100_000.0)
        # Device 0 frees at 50 ms, device 1 is idle the whole time:
        # device 1 retires with zero drain waste.
        assert [a.device_id for a in actions] == [1]


class TestScope:
    def test_disabled_scaler_is_inert(self, model):
        cfg = _scaler_cfg(enabled=False)
        pool = _pool_runtime(model, cfg)
        scaler = Autoscaler(cfg, [pool])
        _fill_queue(pool, 50)
        assert scaler.evaluate(1_000.0) == []

    def test_layer_shard_pools_are_static(self, model):
        cfg = _scaler_cfg()
        pool = _pool_runtime(
            model, cfg, placement="layer_shard",
            num_devices=2, min_devices=1, max_devices=4,
        )
        scaler = Autoscaler(cfg, [pool])
        _fill_queue(pool, 50)
        assert scaler.evaluate(1_000.0) == []
        assert pool.active_device_count == 2


# --- safety properties over full simulated runs ------------------------

def _property_cluster(
    rate_rps, num_requests, interval_us, cooldown_up_us, cooldown_down_us,
    up_depth, max_devices, policy, seed,
):
    return ClusterConfig(
        pools=(
            PoolConfig(name="fpga", num_devices=1, min_devices=1,
                       max_devices=max_devices),
            PoolConfig(name="gpu", kind="gpu", num_devices=1,
                       min_devices=1, max_devices=2),
        ),
        tenants=(
            TenantConfig(name="t0", rate_rps=rate_rps,
                         num_requests=num_requests, min_len=8, max_len=32,
                         slo_us=50_000.0, seed=1),
            TenantConfig(name="t1", arrival="mmpp", rate_rps=rate_rps,
                         num_requests=num_requests, min_len=8, max_len=32,
                         slo_us=50_000.0, seed=2),
        ),
        router_policy=policy,
        autoscaler=AutoscalerConfig(
            interval_us=interval_us,
            scale_up_queue_depth=up_depth,
            scale_down_busy=0.4,
            cooldown_up_us=cooldown_up_us,
            cooldown_down_us=cooldown_down_us,
        ),
        queue_capacity=32,
        queue_timeout_us=60_000.0,
        max_batch_requests=4,
        seed=seed,
    )


scaler_runs = st.builds(
    _property_cluster,
    rate_rps=st.sampled_from([150.0, 400.0, 900.0]),
    num_requests=st.integers(min_value=15, max_value=40),
    interval_us=st.sampled_from([4_000.0, 10_000.0, 25_000.0]),
    cooldown_up_us=st.sampled_from([0.0, 15_000.0, 60_000.0]),
    cooldown_down_us=st.sampled_from([0.0, 30_000.0, 90_000.0]),
    up_depth=st.sampled_from([1.0, 2.0, 6.0]),
    max_devices=st.integers(min_value=1, max_value=4),
    policy=st.sampled_from(["round_robin", "least_queue", "ewma", "slo"]),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestAutoscalerProperties:
    @settings(max_examples=25, deadline=None)
    @given(cluster=scaler_runs)
    def test_cooldowns_never_violated(self, model, cluster):
        result = simulate_cluster(model, cluster)
        last = {}
        for action in result.actions:
            key = (action.pool, action.direction)
            cooldown = (
                cluster.autoscaler.cooldown_up_us
                if action.direction == "up"
                else cluster.autoscaler.cooldown_down_us
            )
            if key in last:
                assert action.at_us - last[key] >= cooldown
            last[key] = action.at_us

    @settings(max_examples=25, deadline=None)
    @given(cluster=scaler_runs)
    def test_replica_count_stays_in_bounds(self, model, cluster):
        result = simulate_cluster(model, cluster)
        bounds = {
            p.name: (p.min_devices, p.max_devices) for p in cluster.pools
        }
        # Replay the action log on top of the starting replica counts:
        # the live count must respect the pool bounds at every step.
        count = {p.name: p.num_devices for p in cluster.pools}
        for action in result.actions:
            count[action.pool] += 1 if action.direction == "up" else -1
            low, high = bounds[action.pool]
            assert low <= count[action.pool] <= high
        for name, summary in result.metrics.pools.items():
            assert summary.peak_devices <= bounds[name][1]
            assert bounds[name][0] <= summary.final_devices <= bounds[name][1]
        for name, samples in result.device_samples.items():
            for _, devices in samples:
                low, high = bounds[name]
                assert low <= devices <= high

    @settings(max_examples=25, deadline=None)
    @given(cluster=scaler_runs)
    def test_draining_never_drops_in_flight_requests(self, model, cluster):
        result = simulate_cluster(model, cluster)
        cm = result.metrics
        # Every request resolves to exactly one outcome...
        assert cm.offered == (
            cm.completed + cm.shed + cm.rejected + cm.expired
        )
        assert cm.offered == sum(t.num_requests for t in cluster.tenants)
        # ...and every dispatched request completes: draining retires a
        # replica only after its in-flight batch finishes, so scale-down
        # can never strand admitted work.
        for record in result.records:
            if record.dispatched_us is not None:
                assert record.status == "completed"
                assert record.completed_us is not None
                assert record.completed_us >= record.dispatched_us
