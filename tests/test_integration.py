"""Cross-module integration tests: the full paper pipeline end to end."""

import numpy as np

from repro.config import AcceleratorConfig
from repro.core import TransformerAccelerator, schedule_model
from repro.nmt import evaluate_bleu
from repro.quant import QuantizedTransformer, SOFTMAX_HARDWARE


class TestEncoderLayerOnAccelerator:
    """Drive a whole encoder layer (MHA ResBlock then FFN ResBlock)
    through the accelerator and compare with the quantized model."""

    def test_two_resblocks_chained(self, small_model_config, calibrated_quant):
        rng = np.random.default_rng(77)
        s = 12
        acc_cfg = AcceleratorConfig(seq_len=s)
        hw = TransformerAccelerator(small_model_config, acc_cfg,
                                    exact_nonlinear=True)
        hw.load_mha(calibrated_quant.enc_mha[0])
        hw.load_ffn(calibrated_quant.enc_ffn[0])
        x = rng.normal(size=(s, 128))
        mha_out = hw.run_mha(x).output
        layer_out = hw.run_ffn(mha_out).output

        ref = calibrated_quant.enc_mha[0].forward_int8(x[None], x[None], None)
        ref = calibrated_quant.enc_ffn[0].forward_int8(ref)[0]
        assert np.array_equal(layer_out, ref)

    def test_accelerator_output_feeds_decoder_unchanged(
        self, small_model_config, calibrated_quant
    ):
        # The accelerator's encoder output must be drop-in usable by the
        # quantized model's decode path.
        rng = np.random.default_rng(78)
        s = 12
        acc_cfg = AcceleratorConfig(seq_len=s)
        hw = TransformerAccelerator(small_model_config, acc_cfg,
                                    exact_nonlinear=True)
        hw.load_mha(calibrated_quant.enc_mha[0])
        hw.load_ffn(calibrated_quant.enc_ffn[0])

        src = rng.integers(1, 30, size=(1, s))
        x = calibrated_quant._embed_src(src)[0]
        memory_hw = hw.run_ffn(hw.run_mha(x).output).output
        memory_ref = calibrated_quant.encode(src).numpy()[0]
        assert np.array_equal(memory_hw, memory_ref)


class TestQuantizationStudyPipeline:
    """The Section V-A experiment end to end on the synthetic task."""

    def test_bleu_survives_int8(self, trained_nmt):
        model, task, test = trained_nmt
        subset = test[:30]
        fp_bleu = evaluate_bleu(model, task, subset)

        qt = QuantizedTransformer(model)
        from repro.nmt import encode_pairs

        batch = encode_pairs(test[30:50], task.src_vocab, task.tgt_vocab)
        qt.calibrate([(batch.src, batch.tgt_in, batch.src_lengths)])
        int8_bleu = evaluate_bleu(qt, task, subset)

        qt.softmax_mode = SOFTMAX_HARDWARE
        hw_bleu = evaluate_bleu(qt, task, subset)

        # The paper's shape: INT8 costs little; approx-softmax costs
        # little more (23.88 -> 23.48 -> 23.57).
        assert fp_bleu > 20.0
        assert int8_bleu > fp_bleu - 12.0
        assert hw_bleu > fp_bleu - 15.0


class TestFullModelTiming:
    def test_base_model_inference_budget(self):
        from repro.config import paper_accelerator, transformer_base

        totals = schedule_model(transformer_base(), paper_accelerator())
        # 6 encoder + 6 decoder layers; decoder layers hold 2 MHA blocks.
        assert totals["total_cycles"] == (
            6 * (totals["mha_cycles"] + totals["ffn_cycles"])
            + 6 * (2 * totals["mha_cycles"] + totals["ffn_cycles"])
        )
        # Whole-stack latency at 200 MHz lands in single-digit ms.
        assert 1_000 < totals["total_cycles"] / 200.0 < 10_000
