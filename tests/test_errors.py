"""Exception-hierarchy tests: one catchable base for the whole library."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigError,
    errors.DecodingError,
    errors.FixedPointError,
    errors.MemoryModelError,
    errors.PartitionError,
    errors.QuantizationError,
    errors.ScheduleError,
    errors.ShapeError,
    errors.TrainingError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_catchable_as_base(self, exc):
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_base_derives_from_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_library_raises_catchable_errors(self):
        # A representative cross-section of raisers.
        from repro.config import ModelConfig
        from repro.core import plan_qkt
        from repro.fixedpoint import QFormat

        with pytest.raises(errors.ReproError):
            ModelConfig("bad", d_model=100, d_ff=400, num_heads=2)
        with pytest.raises(errors.ReproError):
            plan_qkt(0)
        with pytest.raises(errors.ReproError):
            QFormat(0, 0)

    def test_cli_converts_to_exit_code(self, capsys):
        from repro.cli import main

        assert main(["--model", "nope", "schedule"]) == 1
        assert "error:" in capsys.readouterr().err
