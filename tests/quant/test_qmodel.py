"""Quantized Transformer tests (the Section V-A pipeline)."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import (
    QuantizedTransformer,
    SOFTMAX_FP32,
    SOFTMAX_HARDWARE,
)

RNG = np.random.default_rng(31)


def _batch(rng, vocab=30, batch=2, length=12):
    src = rng.integers(1, vocab, size=(batch, length))
    tgt = rng.integers(1, vocab, size=(batch, length))
    lengths = np.full(batch, length)
    return src, tgt, lengths


class TestCalibration:
    def test_calibrate_freezes(self, small_transformer):
        qt = QuantizedTransformer(small_transformer)
        qt.calibrate([_batch(np.random.default_rng(0))])
        assert qt.calibrator.frozen

    def test_calibrate_requires_batches(self, small_transformer):
        qt = QuantizedTransformer(small_transformer)
        with pytest.raises(QuantizationError):
            qt.calibrate([])

    def test_all_expected_taps_observed(self, calibrated_quant):
        taps = calibrated_quant.calibrator.taps()
        # 1 enc layer: self MHA (6 taps) + FFN (2); 1 dec layer:
        # self (6) + cross (6) + FFN (2) = 22 taps.
        assert len(taps) == 22
        assert "enc0.self.q_act" in taps
        assert "dec0.cross.in_kv" in taps
        assert "dec0.ffn.hidden" in taps


class TestInt8Inference:
    def test_close_to_fp32(self, small_transformer, calibrated_quant):
        src, tgt, lengths = _batch(np.random.default_rng(1))
        fp = small_transformer(src, tgt, src_lengths=lengths).numpy()
        q8 = calibrated_quant.forward(src, tgt, lengths).numpy()
        rel = np.abs(fp - q8).max() / np.abs(fp).max()
        assert rel < 0.05

    def test_argmax_mostly_agrees(self, small_transformer, calibrated_quant):
        src, tgt, lengths = _batch(np.random.default_rng(2))
        fp = small_transformer(src, tgt, src_lengths=lengths).numpy()
        q8 = calibrated_quant.forward(src, tgt, lengths).numpy()
        assert (fp.argmax(-1) == q8.argmax(-1)).mean() > 0.9

    def test_deterministic(self, calibrated_quant):
        src, tgt, lengths = _batch(np.random.default_rng(3))
        a = calibrated_quant.forward(src, tgt, lengths).numpy()
        b = calibrated_quant.forward(src, tgt, lengths).numpy()
        assert np.array_equal(a, b)

    def test_inference_before_calibration_fails(self, small_transformer):
        qt = QuantizedTransformer(small_transformer)
        src, tgt, lengths = _batch(np.random.default_rng(4))
        with pytest.raises(QuantizationError):
            qt.forward(src, tgt, lengths)


class TestBitWidths:
    def test_wider_words_reduce_error(self, small_transformer):
        rng = np.random.default_rng(8)
        src, tgt, lengths = _batch(rng)
        fp = small_transformer(src, tgt, src_lengths=lengths).numpy()
        errors = {}
        for bits in (4, 8, 12):
            qt = QuantizedTransformer(small_transformer, bits=bits)
            qt.calibrate([(src, tgt, lengths)])
            q = qt.forward(src, tgt, lengths).numpy()
            errors[bits] = np.abs(fp - q).max()
        assert errors[4] > errors[8] > errors[12]

    def test_bits_recorded(self, small_transformer):
        qt = QuantizedTransformer(small_transformer, bits=6)
        assert qt.bits == 6
        assert qt.calibrator.bits == 6
        assert qt.enc_mha[0].weights["q"].params.bits == 6


class TestSoftmaxModes:
    def test_mode_switch_propagates(self, calibrated_quant):
        calibrated_quant.softmax_mode = SOFTMAX_HARDWARE
        blocks = (
            calibrated_quant.enc_mha + calibrated_quant.dec_self
            + calibrated_quant.dec_cross
        )
        assert all(b.softmax_mode == SOFTMAX_HARDWARE for b in blocks)
        calibrated_quant.softmax_mode = SOFTMAX_FP32
        assert all(b.softmax_mode == SOFTMAX_FP32 for b in blocks)

    def test_invalid_mode_rejected(self, calibrated_quant):
        with pytest.raises(QuantizationError):
            calibrated_quant.softmax_mode = "approximate-ish"

    def test_hardware_softmax_changes_output_slightly(self, calibrated_quant):
        src, tgt, lengths = _batch(np.random.default_rng(5))
        calibrated_quant.softmax_mode = SOFTMAX_FP32
        a = calibrated_quant.forward(src, tgt, lengths).numpy()
        calibrated_quant.softmax_mode = SOFTMAX_HARDWARE
        b = calibrated_quant.forward(src, tgt, lengths).numpy()
        calibrated_quant.softmax_mode = SOFTMAX_FP32
        diff = np.abs(a - b).max()
        assert 0 < diff < np.abs(a).max() * 0.5


class TestProtocolAndStorage:
    def test_decoding_protocol(self, calibrated_quant):
        from repro.transformer.decoding import greedy_decode

        src = np.random.default_rng(6).integers(1, 30, size=(1, 8))
        res = greedy_decode(calibrated_quant, src, [8], bos_id=1, eos_id=2,
                            max_len=4)
        assert len(res) == 1
        assert all(isinstance(t, int) for t in res[0].tokens)

    def test_weight_memory_bytes(self, calibrated_quant, small_model_config):
        d = small_model_config.d_model
        dff = small_model_config.d_ff
        per_mha = 4 * d * d
        per_ffn = 2 * d * dff
        expected = 3 * per_mha + 2 * per_ffn  # 1 enc + 2 dec MHA, 2 FFN
        assert calibrated_quant.weight_memory_bytes() == expected

    def test_masked_inference_matches_fp_behaviour(
        self, small_transformer, calibrated_quant
    ):
        # Padded source positions must not affect quantized outputs either.
        rng = np.random.default_rng(7)
        src1 = rng.integers(1, 30, size=(1, 10))
        src2 = src1.copy()
        src2[0, 6:] = 3
        tgt = rng.integers(1, 30, size=(1, 5))
        lengths = np.array([6])
        a = calibrated_quant.forward(src1, tgt, lengths).numpy()
        b = calibrated_quant.forward(src2, tgt, lengths).numpy()
        assert np.allclose(a, b, atol=1e-10)
