"""Symmetric INT8 quantizer tests."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import (
    QuantParams,
    QuantizedTensor,
    int_gemm,
    quantization_error,
    symmetric_scale,
)

RNG = np.random.default_rng(17)


class TestScale:
    def test_basic_scale(self):
        assert symmetric_scale(127.0) == 1.0
        assert symmetric_scale(12.7) == pytest.approx(0.1)

    def test_zero_amax_degenerate(self):
        assert symmetric_scale(0.0) > 0

    def test_negative_amax_rejected(self):
        with pytest.raises(QuantizationError):
            symmetric_scale(-1.0)

    def test_bits_parameter(self):
        assert symmetric_scale(7.0, bits=4) == 1.0


class TestQuantParams:
    def test_from_tensor_covers_range(self):
        x = RNG.normal(size=100) * 5
        params = QuantParams.from_tensor(x)
        codes = params.quantize(x)
        assert codes.max() <= 127 and codes.min() >= -128
        assert np.abs(codes).max() == 127  # extremal value uses full range

    def test_roundtrip_error_half_scale(self):
        x = RNG.normal(size=1000)
        params = QuantParams.from_tensor(x)
        err = np.abs(params.fake_quantize(x) - x)
        assert err.max() <= params.scale / 2 + 1e-12

    def test_saturation(self):
        params = QuantParams(scale=1.0)
        assert params.quantize(np.array([500.0]))[0] == 127
        assert params.quantize(np.array([-500.0]))[0] == -128

    def test_invalid_scale_rejected(self):
        with pytest.raises(QuantizationError):
            QuantParams(scale=0.0)

    def test_qmax_qmin(self):
        p = QuantParams(scale=1.0, bits=4)
        assert p.qmax == 7 and p.qmin == -8

    def test_rounding_symmetric(self):
        p = QuantParams(scale=1.0)
        assert p.quantize(np.array([0.5]))[0] == 1
        assert p.quantize(np.array([-0.5]))[0] == -1


class TestQuantizedTensor:
    def test_roundtrip(self):
        x = RNG.normal(size=(4, 5))
        qt = QuantizedTensor.quantize(x)
        assert qt.shape == (4, 5)
        assert np.abs(qt.dequantize() - x).max() <= qt.params.scale / 2 + 1e-12

    def test_error_metric(self):
        x = RNG.normal(size=500)
        rms = quantization_error(x)
        assert 0 < rms < QuantParams.from_tensor(x).scale


class TestIntGemm:
    def test_equals_fake_quant_fp_gemm(self):
        # The integer datapath must equal FP math on fake-quantized values
        # (this is the identity the accelerator correctness rests on).
        x = RNG.normal(size=(6, 8))
        w = RNG.normal(size=(8, 4))
        px = QuantParams.from_tensor(x)
        pw = QuantParams.from_tensor(w)
        got = int_gemm(px.quantize(x), pw.quantize(w), px, pw)
        expected = px.fake_quantize(x) @ pw.fake_quantize(w)
        assert np.allclose(got, expected, atol=1e-12)

    def test_bias_added(self):
        x = np.ones((2, 3))
        w = np.ones((3, 2))
        px = QuantParams.from_tensor(x)
        pw = QuantParams.from_tensor(w)
        bias = np.array([10.0, -10.0])
        out = int_gemm(px.quantize(x), pw.quantize(w), px, pw, bias)
        assert np.allclose(out, np.array([[13.0, -7.0], [13.0, -7.0]]),
                           atol=0.1)

    def test_shape_mismatch_rejected(self):
        px = QuantParams(scale=1.0)
        with pytest.raises(QuantizationError):
            int_gemm(np.zeros((2, 3), dtype=np.int64),
                     np.zeros((4, 2), dtype=np.int64), px, px)

    def test_int8_accumulation_no_overflow_at_dff(self):
        # Worst case: 4096-deep reduction of +-127 * +-127 products fits
        # easily in the modelled accumulator (and in the RTL's 26+ bits).
        k = 4096
        x = np.full((1, k), 127, dtype=np.int64)
        w = np.full((k, 1), 127, dtype=np.int64)
        px = QuantParams(scale=1.0)
        out = int_gemm(x, w, px, px)
        assert out[0, 0] == 127 * 127 * k
