"""Hypothesis fuzzing of the quantized-model pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ModelConfig
from repro.quant import QuantizedTransformer
from repro.transformer import Transformer


def _build(seed: int, heads: int, layers: int):
    config = ModelConfig(
        "fuzz", d_model=64 * heads, d_ff=256 * heads, num_heads=heads,
        num_encoder_layers=layers, num_decoder_layers=1,
        max_seq_len=12, dropout=0.0,
    )
    model = Transformer(config, 20, 20,
                        rng=np.random.default_rng(seed)).eval()
    qt = QuantizedTransformer(model)
    rng = np.random.default_rng(seed + 1)
    src = rng.integers(1, 20, size=(2, 10))
    tgt = rng.integers(1, 20, size=(2, 10))
    lengths = np.array([10, 7])
    qt.calibrate([(src, tgt, lengths)])
    return model, qt, src, tgt, lengths


class TestQuantizedModelProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), heads=st.sampled_from([1, 2]),
           layers=st.integers(1, 2))
    def test_int8_outputs_finite_and_close(self, seed, heads, layers):
        model, qt, src, tgt, lengths = _build(seed, heads, layers)
        fp = model(src, tgt, src_lengths=lengths).numpy()
        q8 = qt.forward(src, tgt, lengths).numpy()
        assert np.isfinite(q8).all()
        rel = np.abs(fp - q8).max() / max(np.abs(fp).max(), 1e-9)
        assert rel < 0.15

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_deterministic(self, seed):
        _, qt, src, tgt, lengths = _build(seed, 1, 1)
        a = qt.forward(src, tgt, lengths).numpy()
        b = qt.forward(src, tgt, lengths).numpy()
        assert np.array_equal(a, b)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_hardware_softmax_stays_finite(self, seed):
        from repro.quant import SOFTMAX_HARDWARE

        _, qt, src, tgt, lengths = _build(seed, 1, 1)
        qt.softmax_mode = SOFTMAX_HARDWARE
        out = qt.forward(src, tgt, lengths).numpy()
        assert np.isfinite(out).all()

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_accelerator_always_bit_matches(self, seed):
        from repro.config import AcceleratorConfig
        from repro.core import TransformerAccelerator

        model, qt, src, tgt, lengths = _build(seed, 2, 1)
        hw = TransformerAccelerator(
            model.config, AcceleratorConfig(seq_len=12),
            exact_nonlinear=True,
        )
        hw.load_mha(qt.enc_mha[0])
        hw.load_ffn(qt.enc_ffn[0])
        rng = np.random.default_rng(seed + 2)
        x = rng.normal(size=(12, model.config.d_model))
        ref = qt.enc_mha[0].forward_int8(x[None], x[None], None)
        ref = qt.enc_ffn[0].forward_int8(ref)[0]
        got = hw.run_ffn(hw.run_mha(x).output).output
        assert np.array_equal(got, ref)
