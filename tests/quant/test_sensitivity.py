"""Quantization sensitivity analysis tests."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import (
    QuantizedTransformer,
    full_vs_sum_of_parts,
    rank_by_sensitivity,
    tap_sensitivity,
)
from repro.quant.sensitivity import TAP_GROUPS


@pytest.fixture
def probe(rng):
    src = rng.integers(1, 30, size=(2, 12))
    tgt = rng.integers(1, 30, size=(2, 12))
    return src, tgt, np.full(2, 12)


class TestTapSensitivity:
    def test_all_groups_measured(self, small_transformer, calibrated_quant,
                                 probe):
        src, tgt, lengths = probe
        results = tap_sensitivity(
            small_transformer, calibrated_quant, src, tgt, lengths
        )
        assert [r.tap_group for r in results] == list(TAP_GROUPS)
        assert all(r.rms_error >= 0 for r in results)

    def test_single_tap_error_below_full(self, small_transformer,
                                         calibrated_quant, probe):
        src, tgt, lengths = probe
        results = tap_sensitivity(
            small_transformer, calibrated_quant, src, tgt, lengths
        )
        fp = small_transformer(src, tgt, src_lengths=lengths).numpy()
        full = calibrated_quant.forward(src, tgt, lengths).numpy()
        full_rms = np.sqrt(np.mean((full - fp) ** 2))
        # No single tap should exceed ~the full-pipeline error by much.
        assert max(r.rms_error for r in results) < full_rms * 3 + 1e-6

    def test_requires_calibration(self, small_transformer, probe):
        src, tgt, lengths = probe
        qt = QuantizedTransformer(small_transformer)
        with pytest.raises(QuantizationError):
            tap_sensitivity(small_transformer, qt, src, tgt, lengths)

    def test_patching_is_restored(self, small_transformer,
                                  calibrated_quant, probe):
        src, tgt, lengths = probe
        before = calibrated_quant.forward(src, tgt, lengths).numpy()
        tap_sensitivity(small_transformer, calibrated_quant, src, tgt,
                        lengths)
        after = calibrated_quant.forward(src, tgt, lengths).numpy()
        assert np.array_equal(before, after)


class TestRanking:
    def test_sorted_descending(self, small_transformer, calibrated_quant,
                               probe):
        src, tgt, lengths = probe
        results = tap_sensitivity(
            small_transformer, calibrated_quant, src, tgt, lengths
        )
        ranked = rank_by_sensitivity(results)
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            rank_by_sensitivity([])


class TestInteraction:
    def test_full_vs_parts_structure(self, small_transformer,
                                     calibrated_quant, probe):
        src, tgt, lengths = probe
        out = full_vs_sum_of_parts(
            small_transformer, calibrated_quant, src, tgt, lengths
        )
        assert set(out) == {"full_rms", "per_tap_rss", "interaction_ratio"}
        assert out["full_rms"] > 0
        assert out["per_tap_rss"] > 0
        # Errors neither vanish nor explode relative to independence.
        assert 0.1 < out["interaction_ratio"] < 10.0
