"""Hardware (EXP/LN unit) softmax tests."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import HardwareSoftmax
from repro.transformer.functional import scaled_masked_softmax

RNG = np.random.default_rng(23)


class TestHardwareSoftmax:
    def setup_method(self):
        self.hw = HardwareSoftmax()

    def test_rows_approximately_stochastic(self):
        logits = RNG.normal(0, 8, size=(16, 16))
        y = self.hw(logits)
        assert np.all(y >= 0)
        assert np.abs(y.sum(-1) - 1.0).max() < 0.15

    def test_close_to_exact_softmax(self):
        logits = RNG.normal(0, 8, size=(8, 8))
        approx = self.hw(logits)
        exact = scaled_masked_softmax(logits, None, 8.0)
        assert np.abs(approx - exact).max() < 0.05

    def test_argmax_preserved(self):
        # The PWL approximation must not change which key wins.
        logits = RNG.normal(0, 16, size=(64, 64))
        approx = self.hw(logits)
        exact = scaled_masked_softmax(logits, None, 8.0)
        assert (approx.argmax(-1) == exact.argmax(-1)).mean() > 0.95

    def test_masked_entries_exactly_zero(self):
        logits = RNG.normal(size=(4, 4))
        mask = np.zeros((4, 4), dtype=bool)
        mask[:, 1] = True
        y = self.hw(logits, mask)
        assert np.all(y[:, 1] == 0.0)

    def test_scale_divisor_shift_bits(self):
        assert self.hw.shift_bits == 3  # /8 = >>3 (Fig. 6)

    def test_non_power_of_two_divisor_rejected(self):
        with pytest.raises(QuantizationError):
            HardwareSoftmax(scale_divisor=7.0)

    def test_batched_input(self):
        logits = RNG.normal(size=(2, 3, 5, 5))
        y = self.hw(logits)
        assert y.shape == (2, 3, 5, 5)

    def test_row_sum_error_metric(self):
        assert 0 < self.hw.max_row_sum_error() < 0.2

    def test_monotone_in_logit(self):
        # Raising one logit must not lower its probability.
        base = np.zeros((1, 8))
        lo = self.hw(base.copy())[0, 0]
        base[0, 0] = 16.0
        hi = self.hw(base)[0, 0]
        assert hi > lo

    def test_uniform_logits_near_uniform_output(self):
        y = self.hw(np.zeros((1, 16)))
        assert np.abs(y - 1.0 / 16).max() < 0.01

    def test_extreme_negative_logits_flush_to_zero(self):
        logits = np.zeros((1, 4))
        logits[0, 1:] = -500.0
        y = self.hw(logits)
        assert y[0, 0] == pytest.approx(1.0, abs=0.01)
        assert np.all(y[0, 1:] == 0.0)
