"""Calibrator tests."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import Calibrator


class TestObservation:
    def test_records_max_over_batches(self):
        cal = Calibrator()
        cal.observe("x", np.array([1.0, -3.0]))
        cal.observe("x", np.array([2.0]))
        assert cal.amax("x") == 3.0

    def test_multiple_taps_independent(self):
        cal = Calibrator()
        cal.observe("a", np.array([1.0]))
        cal.observe("b", np.array([10.0]))
        assert cal.amax("a") == 1.0
        assert cal.amax("b") == 10.0

    def test_observation_counts(self):
        cal = Calibrator()
        cal.observe("x", np.zeros(3))
        cal.observe("x", np.zeros(3))
        assert cal.observation_count("x") == 2
        assert cal.observation_count("never") == 0

    def test_taps_sorted(self):
        cal = Calibrator()
        cal.observe("z", np.zeros(1))
        cal.observe("a", np.zeros(1))
        assert cal.taps() == ["a", "z"]


class TestFreezeAndParams:
    def test_params_require_freeze(self):
        cal = Calibrator()
        cal.observe("x", np.array([4.0]))
        with pytest.raises(QuantizationError):
            cal.params("x")
        cal.freeze()
        assert cal.params("x").scale == pytest.approx(4.0 / 127)

    def test_frozen_rejects_observe(self):
        cal = Calibrator()
        cal.observe("x", np.array([1.0]))
        cal.freeze()
        with pytest.raises(QuantizationError):
            cal.observe("x", np.array([2.0]))

    def test_empty_freeze_rejected(self):
        with pytest.raises(QuantizationError):
            Calibrator().freeze()

    def test_unknown_tap_rejected(self):
        cal = Calibrator()
        cal.observe("x", np.array([1.0]))
        cal.freeze()
        with pytest.raises(QuantizationError):
            cal.params("y")
        with pytest.raises(QuantizationError):
            cal.amax("y")

    def test_bits_propagate(self):
        cal = Calibrator(bits=4)
        cal.observe("x", np.array([7.0]))
        cal.freeze()
        assert cal.params("x").bits == 4
        assert cal.params("x").scale == pytest.approx(1.0)

    def test_summary_copy(self):
        cal = Calibrator()
        cal.observe("x", np.array([1.0]))
        summary = cal.summary()
        summary["x"] = 99.0
        assert cal.amax("x") == 1.0
