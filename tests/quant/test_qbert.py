"""Quantized encoder-only model tests, incl. accelerator compatibility."""

import numpy as np
import pytest

from repro.config import AcceleratorConfig, ModelConfig
from repro.errors import QuantizationError, ScheduleError
from repro.quant import QuantizedEncoderOnly
from repro.transformer import EncoderOnlyClassifier

RNG = np.random.default_rng(67)


@pytest.fixture
def model():
    config = ModelConfig(
        "enc", d_model=128, d_ff=512, num_heads=2,
        num_encoder_layers=2, num_decoder_layers=0,
        max_seq_len=16, dropout=0.0,
    )
    return EncoderOnlyClassifier(
        config, vocab_size=25, num_classes=3,
        rng=np.random.default_rng(0),
    ).eval()


@pytest.fixture
def quantized(model):
    q = QuantizedEncoderOnly(model)
    ids = RNG.integers(1, 25, size=(4, 12))
    q.calibrate([(ids, np.full(4, 12))])
    return q


class TestQuantizedEncoderOnly:
    def test_close_to_fp(self, model, quantized):
        ids = RNG.integers(1, 25, size=(3, 12))
        fp = model(ids).numpy()
        q8 = quantized.forward(ids)
        assert np.abs(fp - q8).max() / np.abs(fp).max() < 0.1

    def test_predictions_mostly_agree(self, model, quantized):
        ids = RNG.integers(1, 25, size=(32, 12))
        fp = model.predict(ids)
        q8 = quantized.predict(ids)
        assert (fp == q8).mean() > 0.8

    def test_inference_before_calibration_fails(self, model):
        q = QuantizedEncoderOnly(model)
        with pytest.raises(QuantizationError):
            q.forward(RNG.integers(1, 25, size=(1, 8)))

    def test_empty_calibration_rejected(self, model):
        with pytest.raises(QuantizationError):
            QuantizedEncoderOnly(model).calibrate([])

    def test_softmax_mode_switch(self, quantized):
        ids = RNG.integers(1, 25, size=(2, 12))
        a = quantized.forward(ids)
        quantized.softmax_mode = "hardware"
        b = quantized.forward(ids)
        quantized.softmax_mode = "fp32"
        assert quantized.softmax_mode == "fp32"
        assert not np.array_equal(a, b)
        with pytest.raises(QuantizationError):
            quantized.softmax_mode = "bogus"

    def test_padding_respected(self, quantized):
        ids1 = RNG.integers(1, 25, size=(1, 12))
        ids2 = ids1.copy()
        ids2[0, 7:] = 5
        lengths = np.array([7])
        assert np.allclose(
            quantized.forward(ids1, lengths),
            quantized.forward(ids2, lengths), atol=1e-10,
        )


class TestAcceleratorCompatibility:
    def test_accelerated_stack_accepts_quant_bert(self, quantized):
        from repro.core import AcceleratedStack, StackReport

        stack = AcceleratedStack(quantized, AcceleratorConfig(seq_len=12))
        ids = RNG.integers(1, 25, size=(1, 12))
        x = quantized._embed_src(ids)[0]
        report = StackReport()
        hw_states = stack.run_encoder(x, report=report)
        ref = quantized.encode(ids)[0]
        assert np.array_equal(hw_states, ref)
        # 2 encoder layers -> 4 ResBlocks.
        assert len(report.blocks) == 4

    def test_uncalibrated_rejected_by_stack(self, model):
        from repro.core import AcceleratedStack

        with pytest.raises(ScheduleError):
            AcceleratedStack(
                QuantizedEncoderOnly(model), AcceleratorConfig(seq_len=12)
            )
