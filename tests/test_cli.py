"""CLI tests (python -m repro ...)."""

import json

import pytest

from repro.cli import main


class TestScheduleCommand:
    def test_default_model(self, capsys):
        assert main(["schedule"]) == 0
        out = capsys.readouterr().out
        assert "Transformer-base" in out
        assert "21,578" in out

    def test_preset_and_seq_len(self, capsys):
        assert main(["--model", "bert-base", "--seq-len", "32",
                     "schedule"]) == 0
        out = capsys.readouterr().out
        assert "BERT-base" in out
        assert "s=32" in out

    def test_unknown_model_is_clean_error(self, capsys):
        assert main(["--model", "gpt-4", "schedule"]) == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_resources(self, capsys):
        assert main(["resources"]) == 0
        out = capsys.readouterr().out
        assert "weight_memory" in out
        assert "456" in out

    def test_power(self, capsys):
        assert main(["power"]) == 0
        assert "16.7" in capsys.readouterr().out

    def test_tables_at_paper_point(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "21,344" in out          # paper MHA cycles
        assert "14.6x" in out           # paper speedup
        assert "471,563" in out         # paper top LUT

    def test_tables_off_paper_point_falls_back(self, capsys):
        assert main(["--seq-len", "32", "tables"]) == 0
        out = capsys.readouterr().out
        assert "21,344" not in out

    def test_trace(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main(["trace", "--block", "ffn", "--out",
                     str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["otherData"]["block"] == "ffn"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_schedule_gantt(self, capsys):
        assert main(["schedule", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "MHA schedule" in out
        assert "FFN schedule" in out
        assert "#" in out  # SA track bars

    def test_selftest_exit_code_zero(self, capsys):
        assert main(["selftest"]) == 0


class TestServeSimCommand:
    def test_metrics_table(self, capsys):
        assert main(["serve-sim", "--requests", "40", "--rate", "1000",
                     "--max-len", "32", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "serving — Transformer-base" in out
        assert "p99 latency" in out
        assert "SA utilization" in out
        assert "rejection rate" in out

    def test_compare_batch1(self, capsys):
        assert main(["serve-sim", "--requests", "40", "--rate", "2000",
                     "--max-len", "32", "--compare-batch1"]) == 0
        out = capsys.readouterr().out
        assert "dynamic batching vs batch-1" in out
        assert "speed-up" in out

    def test_trace_out(self, tmp_path, capsys):
        out_file = tmp_path / "serve.json"
        assert main(["serve-sim", "--requests", "20", "--max-len", "32",
                     "--trace-out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["traceEvents"]

    def test_bad_placement_is_clean_error(self, capsys):
        # layer_shard across more devices than there are layer units
        assert main(["serve-sim", "--requests", "10", "--devices", "99",
                     "--placement", "layer_shard"]) == 1
        assert "error:" in capsys.readouterr().err


class TestMemsysCommand:
    def test_preset_sweep(self, capsys):
        assert main(["memsys"]) == 0
        out = capsys.readouterr().out
        assert "ddr4-2400" in out
        assert "lpddr4-2133" in out
        assert "steady-state crossover" in out
        assert "compute" in out and "memory" in out

    def test_explicit_bandwidths(self, capsys):
        assert main(["memsys", "--bandwidths", "4", "64"]) == 0
        out = capsys.readouterr().out
        assert "4 GB/s" in out
        assert "64 GB/s" in out

    def test_no_double_buffer_exposes_stalls(self, capsys):
        assert main(["memsys", "--bandwidths", "19.2"]) == 0
        db_out = capsys.readouterr().out
        assert main(["memsys", "--bandwidths", "19.2",
                     "--no-double-buffer"]) == 0
        serial_out = capsys.readouterr().out
        assert "prefetch on" in db_out
        assert "prefetch off" in serial_out
        assert db_out != serial_out


class TestServeSimMemoryFlags:
    def test_bandwidth_and_cache_flags(self, capsys):
        assert main(["serve-sim", "--requests", "30", "--max-len", "32",
                     "--bandwidth-gbps", "19.2",
                     "--weight-cache-kib", "45056"]) == 0
        out = capsys.readouterr().out
        assert "weight-cache hit rate" in out
        assert "0.0%" not in out.split("hit rate")[1].splitlines()[0]

    def test_memory_preset_with_no_cache(self, capsys):
        assert main(["serve-sim", "--requests", "30", "--max-len", "32",
                     "--memory-preset", "ddr4-2400",
                     "--no-weight-cache"]) == 0
        out = capsys.readouterr().out
        assert "weight-cache misses" in out

    def test_unknown_preset_is_clean_error(self, capsys):
        assert main(["serve-sim", "--requests", "10",
                     "--memory-preset", "sram-9000"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_flags_keeps_flat_reload(self, capsys):
        assert main(["serve-sim", "--requests", "30",
                     "--max-len", "32"]) == 0
        out = capsys.readouterr().out
        # Flat accounting: the memory counters exist but stay zero.
        assert "reload stall cycles" in out


class TestProfileCommand:
    def test_paper_point_matches_closed_form(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "MHA cycle attribution" in out
        assert "FFN cycle attribution" in out
        assert out.count("exact match") == 2
        assert "21,578" in out
        assert "39,052" in out

    def test_single_block_with_memory(self, capsys):
        assert main(["profile", "--block", "mha",
                     "--bandwidth-gbps", "8"]) == 0
        out = capsys.readouterr().out
        assert "FFN" not in out
        assert "dram" in out
        assert "exact match" in out

    def test_artifact_outputs(self, tmp_path, capsys):
        folded = tmp_path / "profile.folded"
        metrics = tmp_path / "metrics.json"
        prom = tmp_path / "metrics.prom"
        assert main(["profile", "--collapsed", str(folded),
                     "--json", str(metrics), "--prom", str(prom)]) == 0
        lines = folded.read_text().strip().splitlines()
        assert sum(
            int(line.rsplit(" ", 1)[1]) for line in lines
        ) == 21_578 + 39_052
        payload = json.loads(metrics.read_text())
        names = {m["name"] for m in payload["metrics"]}
        assert "repro_schedule_cycles_total" in names
        assert "repro_schedule_cycles_total" in prom.read_text()


class TestBenchDiffCommand:
    def _write(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "BENCH_smoke.json"
        baseline.write_text(json.dumps({
            "config_fingerprint": "aaaa",
            "headlines": {
                "cycles.mha_total": {
                    "value": 21578, "direction": "lower", "rel_tol": 0.0,
                },
            },
        }))
        current.write_text(json.dumps({
            "suite": "smoke",
            "config_fingerprint": "bbbb",
            "headlines": {"cycles.mha_total": 21578},
        }))
        return str(baseline), str(current)

    def test_clean_run_passes(self, tmp_path, capsys):
        baseline, current = self._write(tmp_path)
        assert main(["bench-diff", "--current", current,
                     "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "gate passed" in out
        assert "config fingerprint changed" in out

    def test_seeded_slowdown_fails(self, tmp_path, capsys):
        baseline, current = self._write(tmp_path)
        report = tmp_path / "report.json"
        assert main(["bench-diff", "--current", current,
                     "--baseline", baseline,
                     "--seed-slowdown", "1.2",
                     "--json", str(report)]) == 1
        out = capsys.readouterr().out
        assert "gate FAILED" in out
        assert "cycles.mha_total" in out
        assert json.loads(report.read_text())["passed"] is False

    def test_missing_baseline_is_clean_error(self, tmp_path, capsys):
        _, current = self._write(tmp_path)
        assert main(["bench-diff", "--current", current,
                     "--baseline", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err
