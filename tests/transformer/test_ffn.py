"""FFN ResBlock tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.transformer import FFNResBlock, PositionwiseFFN, Tensor
from repro.transformer.functional import ffn as ffn_ref
from repro.transformer.functional import layer_norm

RNG = np.random.default_rng(21)


class TestPositionwiseFFN:
    def test_matches_eq2(self):
        net = PositionwiseFFN(d_model=8, d_ff=32, rng=RNG)
        net.eval()
        x = RNG.normal(size=(5, 8))
        expected = ffn_ref(
            x, net.linear1.weight.data, net.linear1.bias.data,
            net.linear2.weight.data, net.linear2.bias.data,
        )
        assert np.allclose(net(Tensor(x)).data, expected)

    def test_w1_blocks_cover_matrix(self):
        net = PositionwiseFFN(d_model=64, d_ff=256, rng=RNG)
        blocks = [net.w1_block(i) for i in range(4)]
        assert np.array_equal(
            np.concatenate(blocks, axis=1), net.linear1.weight.data
        )

    def test_w2_blocks_cover_matrix(self):
        net = PositionwiseFFN(d_model=64, d_ff=256, rng=RNG)
        assert np.array_equal(net.w2_block(0), net.linear2.weight.data)

    def test_bias_blocks(self):
        net = PositionwiseFFN(d_model=64, d_ff=256, rng=RNG)
        net.linear1.bias.data[:] = np.arange(256)
        assert np.array_equal(net.b1_block(1), np.arange(64, 128))
        assert np.array_equal(net.b2_block(0), net.linear2.bias.data)

    def test_block_index_validation(self):
        net = PositionwiseFFN(d_model=64, d_ff=256, rng=RNG)
        with pytest.raises(ShapeError):
            net.w1_block(4)
        with pytest.raises(ShapeError):
            net.w2_block(1)
        with pytest.raises(ShapeError):
            net.b1_block(-1)
        with pytest.raises(ShapeError):
            net.b2_block(5)


class TestFFNResBlock:
    def test_residual_and_norm(self):
        block = FFNResBlock(d_model=8, d_ff=16, rng=RNG)
        block.eval()
        x = RNG.normal(size=(3, 8))
        out = block(Tensor(x[None]))
        inner = block.ffn(Tensor(x[None])).data[0]
        expected = layer_norm(
            x + inner, block.norm.gamma.data, block.norm.beta.data
        )
        assert np.allclose(out.data[0], expected)

    def test_gradients_reach_all_params(self):
        block = FFNResBlock(d_model=8, d_ff=16, rng=RNG)
        block.eval()
        block(Tensor(RNG.normal(size=(1, 3, 8)))).sum().backward()
        assert all(p.grad is not None for p in block.parameters())

    def test_position_wise_independence(self):
        # Changing one position must not change any other position's
        # FFN() output (before the row-local LayerNorm).
        net = PositionwiseFFN(d_model=8, d_ff=16, rng=RNG)
        net.eval()
        x1 = RNG.normal(size=(4, 8))
        x2 = x1.copy()
        x2[2] += 10.0
        y1 = net(Tensor(x1)).data
        y2 = net(Tensor(x2)).data
        assert np.allclose(y1[[0, 1, 3]], y2[[0, 1, 3]])
        assert not np.allclose(y1[2], y2[2])
