"""Greedy and beam-search decoding tests on a rigged deterministic model."""

import numpy as np
import pytest

from repro.errors import DecodingError
from repro.transformer import Tensor
from repro.transformer.decoding import (
    beam_search_decode,
    greedy_decode,
)


class RiggedModel:
    """A fake model that emits a fixed script of next tokens.

    The script maps (previous token) -> next token logits; it lets the
    tests assert exact decoder behaviour without training anything.
    """

    def __init__(self, vocab: int, transitions: dict, eos_id: int):
        self.vocab = vocab
        self.transitions = transitions
        self.eos_id = eos_id

    def build_masks(self, src_lengths, tgt_len, src_len, tgt_lengths=None):
        batch = len(np.asarray(src_lengths))
        return (
            np.zeros((batch, src_len, src_len), dtype=bool),
            np.zeros((batch, tgt_len, tgt_len), dtype=bool),
            np.zeros((batch, tgt_len, src_len), dtype=bool),
        )

    def encode(self, src_ids, src_mask=None):
        return Tensor(np.zeros((np.asarray(src_ids).shape[0], 1, 4)))

    def decode(self, tgt_ids, memory, self_mask=None, cross_mask=None):
        # "State" is simply the last token id, carried via a one-hot.
        tgt_ids = np.asarray(tgt_ids)
        out = np.zeros((tgt_ids.shape[0], tgt_ids.shape[1], self.vocab))
        for b in range(tgt_ids.shape[0]):
            for t in range(tgt_ids.shape[1]):
                out[b, t, tgt_ids[b, t]] = 1.0
        return Tensor(out)

    def generator(self, states):
        data = states.numpy()
        logits = np.full(data.shape[:-1] + (self.vocab,), -20.0)
        last = data.argmax(-1)
        for b in range(data.shape[0]):
            for t in range(data.shape[1]):
                prev = int(last[b, t])
                for token, score in self.transitions.get(prev, {self.eos_id: 0.0}).items():
                    logits[b, t, token] = score
        return Tensor(logits)


BOS, EOS = 1, 2


@pytest.fixture
def chain_model():
    # BOS -> 5 -> 6 -> 7 -> EOS, each step near-deterministic.
    transitions = {
        BOS: {5: 0.0},
        5: {6: 0.0},
        6: {7: 0.0},
        7: {EOS: 0.0},
    }
    return RiggedModel(vocab=10, transitions=transitions, eos_id=EOS)


class TestGreedy:
    def test_follows_argmax_chain(self, chain_model):
        res = greedy_decode(chain_model, np.zeros((1, 3), dtype=int), [3],
                            BOS, EOS, max_len=10)
        assert res[0].tokens == [5, 6, 7]

    def test_stops_at_eos(self, chain_model):
        res = greedy_decode(chain_model, np.zeros((1, 3), dtype=int), [3],
                            BOS, EOS, max_len=50)
        assert EOS not in res[0].tokens
        assert len(res[0].tokens) == 3

    def test_max_len_truncates(self, chain_model):
        res = greedy_decode(chain_model, np.zeros((1, 3), dtype=int), [3],
                            BOS, EOS, max_len=2)
        assert res[0].tokens == [5, 6]

    def test_batch_decoding(self, chain_model):
        res = greedy_decode(chain_model, np.zeros((3, 3), dtype=int),
                            [3, 3, 3], BOS, EOS, max_len=10)
        assert len(res) == 3
        assert all(r.tokens == [5, 6, 7] for r in res)

    def test_score_accumulates_log_probs(self, chain_model):
        res = greedy_decode(chain_model, np.zeros((1, 3), dtype=int), [3],
                            BOS, EOS, max_len=10)
        # Each step is near-certain, so total log prob ~ 0.
        assert res[0].score == pytest.approx(0.0, abs=0.01)

    def test_invalid_ids_rejected(self, chain_model):
        with pytest.raises(DecodingError):
            greedy_decode(chain_model, np.zeros((1, 3), dtype=int), [3],
                          -1, EOS)


class TestBeam:
    def test_matches_greedy_on_deterministic_chain(self, chain_model):
        res = beam_search_decode(
            chain_model, np.zeros((1, 3), dtype=int), [3], BOS, EOS,
            beam_size=3, max_len=10,
        )
        assert res[0].tokens == [5, 6, 7]

    def test_beam_finds_delayed_reward_path(self):
        # Greedy takes 3 (slightly higher first step), but state 3 splits
        # its continuation mass between 9 and 5 (each ~50%), while state 4
        # continues to 8 with near-certainty; beam should find 4 -> 8.
        transitions = {
            BOS: {3: 0.1, 4: 0.0},
            3: {9: 0.0, 5: -0.01},
            9: {EOS: 0.0},
            5: {EOS: 0.0},
            4: {8: 5.0, 7: -5.0},
            8: {EOS: 0.0},
        }
        model = RiggedModel(10, transitions, EOS)
        greedy = greedy_decode(model, np.zeros((1, 2), dtype=int), [2],
                               BOS, EOS, max_len=6)
        beam = beam_search_decode(model, np.zeros((1, 2), dtype=int), [2],
                                  BOS, EOS, beam_size=4, max_len=6)
        assert greedy[0].tokens == [3, 9]
        assert beam[0].tokens == [4, 8]

    def test_beam_size_one_equals_greedy(self, chain_model):
        beam = beam_search_decode(chain_model, np.zeros((1, 2), dtype=int),
                                  [2], BOS, EOS, beam_size=1, max_len=10)
        greedy = greedy_decode(chain_model, np.zeros((1, 2), dtype=int),
                               [2], BOS, EOS, max_len=10)
        assert beam[0].tokens == greedy[0].tokens

    def test_invalid_beam_size(self, chain_model):
        with pytest.raises(DecodingError):
            beam_search_decode(chain_model, np.zeros((1, 2), dtype=int),
                               [2], BOS, EOS, beam_size=0)

    def test_no_eos_returns_best_open_beam(self):
        transitions = {BOS: {5: 0.0}, 5: {5: 0.0}}  # never emits EOS
        model = RiggedModel(10, transitions, EOS)
        res = beam_search_decode(model, np.zeros((1, 2), dtype=int), [2],
                                 BOS, EOS, beam_size=2, max_len=4)
        assert res[0].tokens == [5, 5, 5, 5]
