"""Module/Parameter system tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.transformer import LayerNorm, Linear, Module, Parameter


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.lin = Linear(4, 3, rng=np.random.default_rng(0))
        self.norm = LayerNorm(3)
        self.scale = Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return self.norm(self.lin(x)) * self.scale


class TestRegistration:
    def test_named_parameters_paths(self):
        m = Nested()
        names = {n for n, _ in m.named_parameters()}
        assert names == {
            "lin.weight", "lin.bias", "norm.gamma", "norm.beta", "scale",
        }

    def test_num_parameters(self):
        m = Nested()
        assert m.num_parameters() == 4 * 3 + 3 + 3 + 3 + 1

    def test_parameters_are_parameters(self):
        m = Nested()
        assert all(isinstance(p, Parameter) for p in m.parameters())
        assert all(p.requires_grad for p in m.parameters())


class TestModes:
    def test_train_eval_recursive(self):
        m = Nested()
        m.eval()
        assert not m.training and not m.lin.training and not m.norm.training
        m.train()
        assert m.training and m.lin.training


class TestStateDict:
    def test_roundtrip(self):
        m1 = Nested()
        m2 = Nested()
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(
            m1.named_parameters(), m2.named_parameters()
        ):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        m = Nested()
        state = m.state_dict()
        state["scale"][0] = 99.0
        assert m.scale.data[0] == 1.0

    def test_missing_key_rejected(self):
        m = Nested()
        state = m.state_dict()
        del state["scale"]
        with pytest.raises(ShapeError):
            m.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        m = Nested()
        state = m.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(ShapeError):
            m.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        m = Nested()
        state = m.state_dict()
        state["scale"] = np.zeros(2)
        with pytest.raises(ShapeError):
            m.load_state_dict(state)


class TestZeroGrad:
    def test_zero_grad_clears_all(self):
        from repro.transformer import Tensor

        m = Nested()
        out = m(Tensor(np.random.default_rng(1).normal(size=(2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())
