"""Mask construction tests (paper convention: 1 = illegal)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.transformer import (
    causal_mask,
    combine_masks,
    cross_attention_mask,
    padding_mask,
)


class TestCausalMask:
    def test_strictly_upper_triangular(self):
        m = causal_mask(4)
        assert m.dtype == bool
        assert not m[2, 2] and not m[2, 1]
        assert m[1, 2] and m[0, 3]

    def test_first_row_sees_only_itself(self):
        m = causal_mask(5)
        assert m[0].sum() == 4

    def test_last_row_sees_everything(self):
        m = causal_mask(5)
        assert m[4].sum() == 0

    def test_invalid_length(self):
        with pytest.raises(ShapeError):
            causal_mask(0)


class TestPaddingMask:
    def test_hides_positions_beyond_length(self):
        m = padding_mask([2, 4], seq_len=4)
        assert m.shape == (2, 4, 4)
        assert np.all(m[0, :, 2:])       # batch 0: cols 2,3 padded
        assert not m[0, :, :2].any()
        assert not m[1].any()            # batch 1: full length

    def test_num_queries_override(self):
        m = padding_mask([3], seq_len=5, num_queries=2)
        assert m.shape == (1, 2, 5)

    def test_zero_length_masks_everything(self):
        m = padding_mask([0], seq_len=3)
        assert m.all()

    def test_invalid_lengths(self):
        with pytest.raises(ShapeError):
            padding_mask([5], seq_len=4)
        with pytest.raises(ShapeError):
            padding_mask([-1], seq_len=4)

    def test_writable_result(self):
        m = padding_mask([2], seq_len=4)
        m[0, 0, 0] = True  # must not raise (not a broadcast view)


class TestCombine:
    def test_or_semantics(self):
        a = np.array([[True, False], [False, False]])
        b = np.array([[False, False], [False, True]])
        assert np.array_equal(
            combine_masks(a, b),
            np.array([[True, False], [False, True]]),
        )

    def test_none_inputs_skipped(self):
        a = np.array([True, False])
        assert np.array_equal(combine_masks(None, a, None), a)

    def test_all_none_gives_none(self):
        assert combine_masks(None, None) is None

    def test_broadcasting(self):
        causal = causal_mask(3)[None]
        pad = padding_mask([2], seq_len=3)
        out = combine_masks(causal, pad)
        assert out.shape == (1, 3, 3)
        assert out[0, 0, 2] and out[0, 1, 2]   # padded OR future


class TestCrossMask:
    def test_shape_and_content(self):
        m = cross_attention_mask(3, [2], source_len=4)
        assert m.shape == (1, 3, 4)
        assert np.all(m[0, :, 2:])
        assert not m[0, :, :2].any()
