"""Autograd engine tests: every op's backward is checked numerically."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.transformer import Tensor, concatenate, embedding_lookup


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = fn(x)
        flat[i] = orig - eps
        fm = fn(x)
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad


def check_grad(build, x: np.ndarray, atol: float = 1e-6):
    """Compare autograd gradient of ``build(Tensor)`` with numeric."""
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    num = numeric_grad(lambda arr: build(Tensor(arr)).item(), x.copy())
    assert np.allclose(t.grad, num, atol=atol), (
        f"max err {np.abs(t.grad - num).max()}"
    )


RNG = np.random.default_rng(0)


class TestArithmeticGrads:
    def test_add(self):
        check_grad(lambda t: (t + t * 2.0).sum(), RNG.normal(size=(3, 4)))

    def test_add_broadcast(self):
        bias = Tensor(RNG.normal(size=(4,)))
        check_grad(lambda t: (t + bias).sum(), RNG.normal(size=(3, 4)))

    def test_broadcast_grad_accumulates_on_small_side(self):
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        x = Tensor(RNG.normal(size=(5, 4)))
        (x + b).sum().backward()
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 5.0)

    def test_mul(self):
        check_grad(lambda t: (t * t).sum(), RNG.normal(size=(3, 3)))

    def test_div(self):
        check_grad(lambda t: (t / 3.0).sum(), RNG.normal(size=(4,)))

    def test_rdiv(self):
        x = RNG.uniform(1.0, 2.0, size=(4,))
        check_grad(lambda t: (1.0 / t).sum(), x, atol=1e-5)

    def test_neg_sub(self):
        check_grad(lambda t: (2.0 - t).sum(), RNG.normal(size=(3,)))

    def test_pow(self):
        x = RNG.uniform(0.5, 2.0, size=(5,))
        check_grad(lambda t: (t ** 3.0).sum(), x, atol=1e-4)

    def test_pow_negative_exponent(self):
        x = RNG.uniform(1.0, 2.0, size=(5,))
        check_grad(lambda t: (t ** -0.5).sum(), x, atol=1e-5)

    def test_matmul(self):
        w = Tensor(RNG.normal(size=(4, 2)))
        check_grad(lambda t: (t @ w).sum(), RNG.normal(size=(3, 4)), 1e-5)

    def test_matmul_batched(self):
        w = Tensor(RNG.normal(size=(2, 4, 5)))
        check_grad(lambda t: (t @ w).sum(), RNG.normal(size=(2, 3, 4)), 1e-5)

    def test_matmul_weight_grad(self):
        w = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        x = Tensor(RNG.normal(size=(3, 4)))
        (x @ w).sum().backward()
        assert np.allclose(w.grad, x.data.T @ np.ones((3, 2)))


class TestNonlinearGrads:
    def test_relu(self):
        x = RNG.normal(size=(10,))
        x[np.abs(x) < 0.1] = 0.5  # keep away from the kink
        check_grad(lambda t: t.relu().sum(), x)

    def test_exp(self):
        check_grad(lambda t: t.exp().sum(), RNG.normal(size=(5,)), 1e-5)

    def test_log(self):
        x = RNG.uniform(0.5, 3.0, size=(5,))
        check_grad(lambda t: t.log().sum(), x, atol=1e-5)

    def test_tanh(self):
        check_grad(lambda t: t.tanh().sum(), RNG.normal(size=(5,)))

    def test_softmax_forward_rows_sum_to_one(self):
        t = Tensor(RNG.normal(size=(4, 6)))
        out = t.softmax(axis=-1)
        assert np.allclose(out.data.sum(-1), 1.0)

    def test_softmax_grad(self):
        w = Tensor(RNG.normal(size=(6,)))
        check_grad(
            lambda t: (t.softmax(axis=-1) * w).sum(),
            RNG.normal(size=(3, 6)), 1e-5,
        )

    def test_log_softmax_grad(self):
        w = Tensor(RNG.normal(size=(6,)))
        check_grad(
            lambda t: (t.log_softmax(axis=-1) * w).sum(),
            RNG.normal(size=(2, 6)), 1e-5,
        )


class TestReductionsAndShapes:
    def test_sum_axis(self):
        check_grad(lambda t: (t.sum(axis=0) ** 2.0).sum(),
                   RNG.normal(size=(3, 4)), 1e-5)

    def test_mean(self):
        check_grad(lambda t: (t.mean(axis=-1) ** 2.0).sum(),
                   RNG.normal(size=(3, 4)), 1e-5)

    def test_var_matches_numpy(self):
        x = RNG.normal(size=(3, 8))
        t = Tensor(x)
        assert np.allclose(t.var(axis=-1).data, x.var(axis=-1))

    def test_var_grad(self):
        check_grad(lambda t: t.var(axis=-1).sum(),
                   RNG.normal(size=(2, 5)), 1e-5)

    def test_reshape_grad(self):
        check_grad(lambda t: (t.reshape(6) * Tensor(np.arange(6.0))).sum(),
                   RNG.normal(size=(2, 3)))

    def test_transpose_grad(self):
        w = Tensor(RNG.normal(size=(4, 3)))
        check_grad(lambda t: (t.transpose(1, 0) * w).sum(),
                   RNG.normal(size=(3, 4)))

    def test_swapaxes(self):
        t = Tensor(RNG.normal(size=(2, 3, 4)))
        assert t.swapaxes(-1, -2).shape == (2, 4, 3)

    def test_getitem_grad(self):
        check_grad(lambda t: (t[1:] ** 2.0).sum(), RNG.normal(size=(4, 3)), 1e-5)

    def test_masked_fill_grad_zero_in_masked(self):
        x = Tensor(RNG.normal(size=(3, 3)), requires_grad=True)
        mask = np.eye(3, dtype=bool)
        x.masked_fill(mask, -1e9).sum().backward()
        assert np.allclose(x.grad[mask], 0.0)
        assert np.allclose(x.grad[~mask], 1.0)

    def test_concatenate_grad(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        (out * Tensor(np.arange(10.0).reshape(2, 5))).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (2, 2)
        assert np.allclose(a.grad, [[0, 1, 2], [5, 6, 7]])
        assert np.allclose(b.grad, [[3, 4], [8, 9]])

    def test_embedding_lookup_grad_scatter(self):
        table = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        out = embedding_lookup(table, np.array([1, 1, 4]))
        out.sum().backward()
        assert np.allclose(table.grad[1], 2.0)
        assert np.allclose(table.grad[4], 1.0)
        assert np.allclose(table.grad[0], 0.0)

    def test_embedding_rejects_float_indices(self):
        table = Tensor(np.zeros((5, 3)))
        with pytest.raises(ShapeError):
            embedding_lookup(table, np.array([1.5]))


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad[0] == 7.0

    def test_diamond_graph_counted_once(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        a = x * 2.0
        y = a + a
        y.backward()
        assert x.grad[0] == 4.0

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 1.0
        y.backward()
        assert x.grad[0] == 1.0

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_backward_on_no_grad_tensor_raises(self):
        with pytest.raises(ShapeError):
            Tensor(np.array([1.0])).backward()

    def test_no_grad_path_builds_no_graph(self):
        x = Tensor(np.ones(3))
        y = x * 2.0 + 1.0
        assert not y.requires_grad
        assert y._parents == ()

    def test_custom_seed_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        y.backward(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(x.grad, [2.0, 4.0, 6.0])

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None
