"""Multi-head attention tests against independent references."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.transformer import (
    MHAResBlock,
    MultiHeadAttention,
    ScaledDotProductAttention,
    Tensor,
    causal_mask,
    merge_heads,
    split_heads,
)
from repro.transformer.functional import (
    layer_norm,
    scaled_masked_softmax,
)

RNG = np.random.default_rng(11)


def reference_mha(mha: MultiHeadAttention, q, k, v, mask=None):
    """Independent numpy implementation of Fig. 2 with per-head slices."""
    h, d_k = mha.num_heads, mha.d_k
    outs = []
    for i in range(h):
        qi = q @ mha.head_weight("q", i) + mha.head_bias("q", i)
        ki = k @ mha.head_weight("k", i) + mha.head_bias("k", i)
        vi = v @ mha.head_weight("v", i) + mha.head_bias("v", i)
        probs = scaled_masked_softmax(
            qi @ ki.T, mask, scale_divisor=np.sqrt(d_k)
        )
        outs.append(probs @ vi)
    concat = np.concatenate(outs, axis=-1)
    return concat @ mha.out_proj.weight.data + mha.out_proj.bias.data


class TestSplitMergeHeads:
    def test_roundtrip(self):
        x = Tensor(RNG.normal(size=(2, 5, 8)))
        assert np.array_equal(merge_heads(split_heads(x, 4)).data, x.data)

    def test_split_shape(self):
        x = Tensor(RNG.normal(size=(2, 5, 8)))
        assert split_heads(x, 2).shape == (2, 2, 5, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ShapeError):
            split_heads(Tensor(np.zeros((1, 4, 6))), 4)


class TestScaledDotProductAttention:
    def test_weights_are_stochastic(self):
        attn = ScaledDotProductAttention()
        q = Tensor(RNG.normal(size=(1, 2, 4, 8)))
        out, weights = attn(q, q, q)
        assert np.allclose(weights.data.sum(-1), 1.0)
        assert out.shape == (1, 2, 4, 8)

    def test_mask_broadcast_over_heads(self):
        attn = ScaledDotProductAttention()
        q = Tensor(RNG.normal(size=(1, 2, 4, 8)))
        mask = causal_mask(4)[None, :, :]
        _, weights = attn(q, q, q, mask)
        for head in range(2):
            w = weights.data[0, head]
            assert np.allclose(w[np.triu_indices(4, 1)], 0.0, atol=1e-9)


class TestMultiHeadAttention:
    def test_matches_per_head_reference(self):
        # The fused implementation equals the paper's per-head Fig. 3 math.
        mha = MultiHeadAttention(d_model=32, num_heads=4, rng=RNG)
        q = RNG.normal(size=(6, 32))
        kv = RNG.normal(size=(6, 32))
        out = mha(Tensor(q[None]), Tensor(kv[None]), Tensor(kv[None]))
        ref = reference_mha(mha, q, kv, kv)
        assert np.allclose(out.data[0], ref, atol=1e-10)

    def test_matches_reference_with_mask(self):
        mha = MultiHeadAttention(d_model=16, num_heads=2, rng=RNG)
        q = RNG.normal(size=(5, 16))
        mask = causal_mask(5)
        out = mha(
            Tensor(q[None]), Tensor(q[None]), Tensor(q[None]),
            mask[None, :, :],
        )
        ref = reference_mha(mha, q, q, q, mask)
        assert np.allclose(out.data[0], ref, atol=1e-8)

    def test_head_weight_blocks_cover_matrix(self):
        mha = MultiHeadAttention(d_model=32, num_heads=4, rng=RNG)
        blocks = [mha.head_weight("q", i) for i in range(4)]
        assert np.array_equal(
            np.concatenate(blocks, axis=1), mha.q_proj.weight.data
        )

    def test_head_weight_validation(self):
        mha = MultiHeadAttention(d_model=32, num_heads=4, rng=RNG)
        with pytest.raises(ShapeError):
            mha.head_weight("q", 4)
        with pytest.raises(ShapeError):
            mha.head_weight("x", 0)
        with pytest.raises(ShapeError):
            mha.head_bias("z", 0)

    def test_invalid_d_model_heads(self):
        with pytest.raises(ShapeError):
            MultiHeadAttention(d_model=30, num_heads=4)

    def test_cross_attention_shapes(self):
        mha = MultiHeadAttention(d_model=16, num_heads=2, rng=RNG)
        q = Tensor(RNG.normal(size=(1, 3, 16)))
        kv = Tensor(RNG.normal(size=(1, 7, 16)))
        assert mha(q, kv, kv).shape == (1, 3, 16)


class TestMHAResBlock:
    def test_residual_and_norm(self):
        # Output = LayerNorm(q + MHA(q,k,v)) per Algorithm 1 line 10-12.
        block = MHAResBlock(d_model=16, num_heads=2, rng=RNG)
        block.eval()
        q = RNG.normal(size=(4, 16))
        out = block(Tensor(q[None]), Tensor(q[None]), Tensor(q[None]))
        mha_out = block.mha(Tensor(q[None]), Tensor(q[None]), Tensor(q[None]))
        expected = layer_norm(
            q + mha_out.data[0], block.norm.gamma.data, block.norm.beta.data
        )
        assert np.allclose(out.data[0], expected)

    def test_output_rows_normalized(self):
        block = MHAResBlock(d_model=64, num_heads=1, rng=RNG)
        block.eval()
        x = Tensor(RNG.normal(size=(1, 8, 64)))
        out = block(x, x, x).data[0]
        assert np.allclose(out.mean(-1), 0.0, atol=1e-7)

    def test_gradients_reach_all_params(self):
        block = MHAResBlock(d_model=16, num_heads=2, rng=RNG)
        block.eval()
        x = Tensor(RNG.normal(size=(1, 4, 16)))
        block(x, x, x).sum().backward()
        assert all(p.grad is not None for p in block.parameters())
