"""KV-cached incremental decoding tests: equality with full re-runs."""

import numpy as np
import pytest

from repro.errors import DecodingError, ShapeError
from repro.transformer.decoding import greedy_decode
from repro.transformer.incremental import (
    IncrementalDecoder,
    greedy_decode_incremental,
)


@pytest.fixture
def model(small_transformer):
    return small_transformer


class TestStepEquivalence:
    def test_logits_match_full_forward(self, model, rng):
        src = rng.integers(1, 30, size=10)
        tgt = rng.integers(1, 30, size=6)
        dec = IncrementalDecoder(model)
        dec.start(src, src_length=8)

        incremental = [dec.step(int(t)) for t in tgt]

        # Full re-run reference for every prefix.
        lengths = np.array([8])
        enc_mask, _, _ = model.build_masks(lengths, 1, 10)
        memory = model.encode(src[None], enc_mask)
        for t in range(1, len(tgt) + 1):
            _, dec_self, cross = model.build_masks(lengths, t, 10)
            states = model.decode(tgt[None, :t], memory, dec_self, cross)
            full = model.generator(states).numpy()[0, -1]
            assert np.allclose(incremental[t - 1], full, atol=1e-9), (
                f"mismatch at step {t}"
            )

    def test_greedy_equivalence(self, model, rng):
        src = rng.integers(1, 30, size=9)
        fast = greedy_decode_incremental(
            model, src, src_length=9, bos_id=1, eos_id=2, max_len=8
        )
        slow = greedy_decode(
            model, src[None], [9], bos_id=1, eos_id=2, max_len=8
        )[0].tokens
        assert fast == slow

    def test_source_padding_respected(self, model, rng):
        src1 = rng.integers(1, 30, size=8)
        src2 = src1.copy()
        src2[5:] = 7
        d1 = IncrementalDecoder(model)
        d1.start(src1, src_length=5)
        d2 = IncrementalDecoder(model)
        d2.start(src2, src_length=5)
        assert np.allclose(d1.step(1), d2.step(1), atol=1e-12)


class TestMechanics:
    def test_cache_grows_per_step(self, model, rng):
        dec = IncrementalDecoder(model)
        dec.start(rng.integers(1, 30, size=8))
        before = dec.cache_bytes()
        dec.step(1)
        mid = dec.cache_bytes()
        dec.step(3)
        after = dec.cache_bytes()
        assert before < mid < after
        # Each step adds 2 (K+V) * d_model per decoder layer.
        assert mid - before == after - mid == 2 * 128 * 1

    def test_step_before_start_rejected(self, model):
        with pytest.raises(DecodingError):
            IncrementalDecoder(model).step(1)

    def test_batched_src_rejected(self, model):
        with pytest.raises(ShapeError):
            IncrementalDecoder(model).start(np.zeros((2, 8), dtype=int))

    def test_bad_src_length_rejected(self, model, rng):
        dec = IncrementalDecoder(model)
        with pytest.raises(DecodingError):
            dec.start(rng.integers(1, 30, size=8), src_length=9)

    def test_max_len_guard(self, model, rng):
        dec = IncrementalDecoder(model)
        dec.start(rng.integers(1, 30, size=8))
        for _ in range(model.config.max_seq_len):
            dec.step(1)
        with pytest.raises(DecodingError):
            dec.step(1)

    def test_restart_resets_cache(self, model, rng):
        dec = IncrementalDecoder(model)
        dec.start(rng.integers(1, 30, size=8))
        dec.step(1)
        dec.start(rng.integers(1, 30, size=8))
        assert dec._position == 0
        first = dec.cache_bytes()
        dec.step(1)
        assert dec.cache_bytes() > first
