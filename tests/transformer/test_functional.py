"""Golden-function tests: the paper's equations hold as identities."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.transformer.functional import (
    LAYERNORM_EPS,
    attention,
    ffn,
    layer_norm,
    layer_norm_one_pass,
    layer_norm_two_pass,
    log_sum_exp_softmax,
    relu,
    residual_layer_norm,
    scaled_masked_softmax,
    softmax,
)

RNG = np.random.default_rng(42)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = RNG.normal(size=(5, 9))
        assert np.allclose(softmax(x).sum(-1), 1.0)

    def test_shift_invariance(self):
        x = RNG.normal(size=(4, 7))
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_log_sum_exp_identity(self):
        # Eq. (5): the hardware's reformulation equals the definition.
        x = RNG.normal(size=(6, 8)) * 10
        assert np.allclose(log_sum_exp_softmax(x), softmax(x), atol=1e-12)

    def test_extreme_values_stable(self):
        x = np.array([[1000.0, 0.0, -1000.0]])
        out = softmax(x)
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)


class TestScaledMaskedSoftmax:
    def test_masked_positions_zero(self):
        # Eq. (4): M(i,j) = 1 -> Y(i,j) = 0.
        logits = RNG.normal(size=(4, 4))
        mask = np.zeros((4, 4), dtype=bool)
        mask[:, 2] = True
        out = scaled_masked_softmax(logits, mask)
        assert np.all(out[:, 2] == 0.0)
        assert np.allclose(out.sum(-1), 1.0)

    def test_scale_divisor_is_eight(self):
        # d_k = 64 -> dividing by 8 equals a 3-bit right shift in HW.
        logits = RNG.normal(size=(3, 3)) * 8
        assert np.allclose(
            scaled_masked_softmax(logits, None),
            softmax(logits / 8.0),
        )

    def test_fully_masked_row_yields_zeros(self):
        logits = RNG.normal(size=(2, 3))
        mask = np.array([[True, True, True], [False, False, False]])
        out = scaled_masked_softmax(logits, mask)
        assert np.all(out[0] == 0.0)
        assert np.isfinite(out).all()

    def test_no_mask_equals_plain(self):
        logits = RNG.normal(size=(3, 5))
        assert np.allclose(
            scaled_masked_softmax(logits), softmax(logits / 8.0)
        )


class TestLayerNorm:
    def test_normalizes_rows(self):
        x = RNG.normal(3.0, 5.0, size=(6, 32))
        out = layer_norm(x, np.ones(32), np.zeros(32))
        assert np.allclose(out.mean(-1), 0.0, atol=1e-7)
        assert np.allclose(out.var(-1), 1.0, atol=1e-3)

    def test_gamma_beta_affine(self):
        x = RNG.normal(size=(2, 8))
        gamma = RNG.normal(size=8)
        beta = RNG.normal(size=8)
        base = layer_norm(x, np.ones(8), np.zeros(8))
        assert np.allclose(layer_norm(x, gamma, beta), base * gamma + beta)

    def test_eq9_variance_identity(self):
        # Fig. 7 step two: E[x^2] - E[x]^2 == E[(x-mu)^2].
        x = RNG.normal(2.0, 3.0, size=(10, 64))
        assert np.allclose(
            layer_norm_one_pass(x), layer_norm_two_pass(x), atol=1e-10
        )

    def test_one_pass_never_negative(self):
        x = np.full((3, 16), 7.123456)
        assert np.all(layer_norm_one_pass(x) >= 0.0)

    def test_epsilon_guards_constant_rows(self):
        x = np.ones((2, 8)) * 5.0
        out = layer_norm(x, np.ones(8), np.zeros(8))
        assert np.isfinite(out).all()
        assert np.allclose(out, 0.0)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            layer_norm(np.zeros((2, 8)), np.ones(4), np.zeros(4))

    def test_paper_epsilon(self):
        assert LAYERNORM_EPS == 1e-8


class TestAttentionAndFFN:
    def test_attention_is_convex_combination(self):
        q = RNG.normal(size=(5, 8))
        k = RNG.normal(size=(6, 8))
        v = RNG.normal(size=(6, 8))
        out = attention(q, k, v)
        assert out.shape == (5, 8)
        assert out.min() >= v.min() - 1e-9
        assert out.max() <= v.max() + 1e-9

    def test_attention_with_identity_weights(self):
        # A single dominant key makes attention return (almost) its value.
        q = np.array([[100.0, 0.0]])
        k = np.array([[1.0, 0.0], [-1.0, 0.0]])
        v = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = attention(q, k, v)
        assert np.allclose(out, v[0], atol=1e-8)

    def test_causal_mask_blocks_future(self):
        from repro.transformer import causal_mask

        s = 4
        q = RNG.normal(size=(s, 8))
        v1 = RNG.normal(size=(s, 8))
        v2 = v1.copy()
        v2[-1] += 100.0  # perturb only the last (future-most) value row
        mask = causal_mask(s)
        out1 = attention(q, q, v1, mask)
        out2 = attention(q, q, v2, mask)
        # Rows before the last cannot see the perturbation.
        assert np.allclose(out1[:-1], out2[:-1])

    def test_ffn_formula(self):
        x = RNG.normal(size=(3, 4))
        w1 = RNG.normal(size=(4, 8))
        b1 = RNG.normal(size=8)
        w2 = RNG.normal(size=(8, 4))
        b2 = RNG.normal(size=4)
        expected = np.maximum(x @ w1 + b1, 0) @ w2 + b2
        assert np.allclose(ffn(x, w1, b1, w2, b2), expected)

    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])),
                              np.array([0.0, 0.0, 2.0]))

    def test_residual_layer_norm(self):
        x = RNG.normal(size=(2, 8))
        sub = RNG.normal(size=(2, 8))
        gamma, beta = np.ones(8), np.zeros(8)
        assert np.allclose(
            residual_layer_norm(x, sub, gamma, beta),
            layer_norm(x + sub, gamma, beta),
        )
