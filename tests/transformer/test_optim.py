"""Optimizer / loss / schedule tests."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.transformer import Adam, NoamSchedule, Tensor, cross_entropy
from repro.transformer.module import Parameter


class TestCrossEntropy:
    def test_matches_manual(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))
        loss = cross_entropy(Tensor(logits, requires_grad=True), targets)
        shifted = logits - logits.max(-1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(-1, keepdims=True))
        manual = -np.take_along_axis(
            log_probs, targets[..., None], axis=-1
        ).mean()
        assert loss.item() == pytest.approx(manual)

    def test_ignore_index_excluded(self):
        logits = np.zeros((1, 3, 4))
        logits[0, 0, 1] = 10.0  # confident & correct at position 0
        targets = np.array([[1, 0, 0]])  # positions 1,2 are PAD(0)
        with_pad = cross_entropy(
            Tensor(logits, requires_grad=True), targets, ignore_index=0
        )
        only = cross_entropy(
            Tensor(logits[:, :1], requires_grad=True), targets[:, :1]
        )
        assert with_pad.item() == pytest.approx(only.item())

    def test_all_ignored_raises(self):
        with pytest.raises(TrainingError):
            cross_entropy(
                Tensor(np.zeros((1, 2, 3)), requires_grad=True),
                np.zeros((1, 2), dtype=int), ignore_index=0,
            )

    def test_label_smoothing_increases_loss_on_confident_model(self):
        logits = np.zeros((1, 1, 4))
        logits[0, 0, 2] = 20.0
        targets = np.array([[2]])
        plain = cross_entropy(Tensor(logits, requires_grad=True), targets)
        smooth = cross_entropy(
            Tensor(logits, requires_grad=True), targets, label_smoothing=0.1
        )
        assert smooth.item() > plain.item()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            cross_entropy(
                Tensor(np.zeros((1, 2, 3)), requires_grad=True),
                np.zeros((1, 3), dtype=int),
            )

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(1, 1, 4)),
                        requires_grad=True)
        targets = np.array([[2]])
        cross_entropy(logits, targets).backward()
        probs = np.exp(logits.data) / np.exp(logits.data).sum()
        expected = probs.copy()
        expected[0, 0, 2] -= 1.0
        assert np.allclose(logits.grad, expected, atol=1e-10)


class TestAdam:
    def test_minimizes_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss = ((p - Tensor(np.array([1.0, 2.0]))) ** 2.0).sum()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, [1.0, 2.0], atol=1e-3)

    def test_skips_missing_gradients(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        opt = Adam([p1, p2], lr=0.1)
        (p1 * 2.0).sum().backward()
        opt.step()
        assert p1.data[0] != 1.0
        assert p2.data[0] == 1.0

    def test_grad_clip_bounds_update(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=1.0, grad_clip=1.0)
        p.grad = np.array([1e6])
        norm_before = opt.global_grad_norm()
        opt.step()
        assert norm_before == pytest.approx(1e6)
        # First Adam step magnitude is ~lr regardless, but must be finite.
        assert np.isfinite(p.data).all()

    def test_empty_params_rejected(self):
        with pytest.raises(TrainingError):
            Adam([])

    def test_global_grad_norm(self):
        p1 = Parameter(np.array([3.0]))
        p2 = Parameter(np.array([4.0]))
        opt = Adam([p1, p2])
        p1.grad = np.array([3.0])
        p2.grad = np.array([4.0])
        assert opt.global_grad_norm() == pytest.approx(5.0)


class TestNoamSchedule:
    def test_warmup_then_decay(self):
        sched = NoamSchedule(d_model=512, warmup=100)
        rates = [sched.rate(step) for step in range(1, 400)]
        peak = int(np.argmax(rates)) + 1
        assert 95 <= peak <= 105       # peak at the warmup step
        assert rates[-1] < rates[peak - 1]

    def test_linear_during_warmup(self):
        sched = NoamSchedule(d_model=512, warmup=100)
        assert sched.rate(50) == pytest.approx(2 * sched.rate(25))

    def test_inverse_sqrt_after_warmup(self):
        sched = NoamSchedule(d_model=512, warmup=10)
        assert sched.rate(400) == pytest.approx(sched.rate(100) / 2)

    def test_step_updates_optimizer(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=999.0)
        sched = NoamSchedule(d_model=64, warmup=10)
        rate = sched.step(opt)
        assert opt.lr == rate

    def test_invalid_warmup(self):
        with pytest.raises(TrainingError):
            NoamSchedule(64, warmup=0)
