"""Encoder / decoder stack tests (direct, not through the full model)."""

import numpy as np

from repro.config import ModelConfig
from repro.transformer import Decoder, DecoderLayer, Encoder, EncoderLayer
from repro.transformer import Tensor, causal_mask

RNG = np.random.default_rng(51)


def config(enc=2, dec=2):
    return ModelConfig(
        "t", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=enc, num_decoder_layers=dec,
        max_seq_len=16, dropout=0.0,
    )


class TestEncoderLayer:
    def test_shape_preserved(self):
        layer = EncoderLayer(config(), rng=RNG)
        layer.eval()
        x = Tensor(RNG.normal(size=(2, 8, 64)))
        assert layer(x).shape == (2, 8, 64)

    def test_output_is_ffn_of_attention(self):
        layer = EncoderLayer(config(), rng=RNG)
        layer.eval()
        x = Tensor(RNG.normal(size=(1, 5, 64)))
        attended = layer.self_attn(x, x, x)
        expected = layer.ffn(attended)
        assert np.allclose(layer(x).data, expected.data)

    def test_mask_forwarded(self):
        layer = EncoderLayer(config(), rng=RNG)
        layer.eval()
        x1 = RNG.normal(size=(1, 6, 64))
        x2 = x1.copy()
        x2[0, 4:] += 5.0
        from repro.transformer import padding_mask

        mask = padding_mask([4], 6)
        out1 = layer(Tensor(x1), mask).data
        out2 = layer(Tensor(x2), mask).data
        # Rows 0-3 attend only to unperturbed positions; rows 4-5
        # themselves changed, so compare only the visible prefix.
        assert np.allclose(out1[0, :4], out2[0, :4])


class TestEncoderStack:
    def test_layer_count(self):
        encoder = Encoder(config(enc=3), rng=RNG)
        assert len(encoder.layers) == 3

    def test_layers_have_distinct_parameters(self):
        encoder = Encoder(config(enc=2), rng=RNG)
        w0 = encoder.layers[0].self_attn.mha.q_proj.weight.data
        w1 = encoder.layers[1].self_attn.mha.q_proj.weight.data
        assert not np.array_equal(w0, w1)

    def test_stacking_applies_sequentially(self):
        encoder = Encoder(config(enc=2), rng=RNG)
        encoder.eval()
        x = Tensor(RNG.normal(size=(1, 4, 64)))
        manual = encoder.layers[1](encoder.layers[0](x))
        assert np.allclose(encoder(x).data, manual.data)


class TestDecoderLayer:
    def test_three_sublayers_applied(self):
        layer = DecoderLayer(config(), rng=RNG)
        layer.eval()
        y = Tensor(RNG.normal(size=(1, 4, 64)))
        memory = Tensor(RNG.normal(size=(1, 6, 64)))
        manual = layer.self_attn(y, y, y, None)
        manual = layer.cross_attn(manual, memory, memory, None)
        manual = layer.ffn(manual)
        assert np.allclose(layer(y, memory).data, manual.data)

    def test_cross_attention_uses_memory(self):
        layer = DecoderLayer(config(), rng=RNG)
        layer.eval()
        y = Tensor(RNG.normal(size=(1, 4, 64)))
        m1 = Tensor(RNG.normal(size=(1, 6, 64)))
        m2 = Tensor(RNG.normal(size=(1, 6, 64)))
        assert not np.allclose(layer(y, m1).data, layer(y, m2).data)

    def test_causal_mask_respected(self):
        layer = DecoderLayer(config(), rng=RNG)
        layer.eval()
        memory = Tensor(RNG.normal(size=(1, 6, 64)))
        y1 = RNG.normal(size=(1, 4, 64))
        y2 = y1.copy()
        y2[0, 3] += 10.0          # future-most position
        mask = causal_mask(4)[None]
        out1 = layer(Tensor(y1), memory, self_mask=mask).data
        out2 = layer(Tensor(y2), memory, self_mask=mask).data
        assert np.allclose(out1[0, :3], out2[0, :3])
        assert not np.allclose(out1[0, 3], out2[0, 3])


class TestDecoderStack:
    def test_layer_count(self):
        decoder = Decoder(config(dec=4), rng=RNG)
        assert len(decoder.layers) == 4

    def test_gradients_reach_every_layer(self):
        decoder = Decoder(config(dec=2), rng=RNG)
        decoder.eval()
        y = Tensor(RNG.normal(size=(1, 3, 64)))
        memory = Tensor(RNG.normal(size=(1, 5, 64)))
        decoder(y, memory).sum().backward()
        assert all(p.grad is not None for p in decoder.parameters())
