"""Full Transformer model tests: shapes, masking semantics, causality."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.errors import ShapeError
from repro.transformer import Transformer

RNG = np.random.default_rng(9)


def tiny_config(**overrides):
    defaults = dict(
        name="t", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=1, num_decoder_layers=1,
        max_seq_len=16, dropout=0.0,
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)


@pytest.fixture
def model():
    return Transformer(tiny_config(), 20, 25,
                       rng=np.random.default_rng(0)).eval()


class TestForward:
    def test_logit_shape(self, model):
        src = RNG.integers(1, 20, size=(3, 8))
        tgt = RNG.integers(1, 25, size=(3, 6))
        assert model(src, tgt).shape == (3, 6, 25)

    def test_rejects_1d_input(self, model):
        with pytest.raises(ShapeError):
            model(np.array([1, 2]), np.array([[1]]))

    def test_deterministic_in_eval(self, model):
        src = RNG.integers(1, 20, size=(1, 5))
        tgt = RNG.integers(1, 25, size=(1, 5))
        a = model(src, tgt).numpy()
        b = model(src, tgt).numpy()
        assert np.array_equal(a, b)

    def test_decoder_causality(self, model):
        # Changing target token t must not change logits before t.
        src = RNG.integers(1, 20, size=(1, 5))
        tgt1 = RNG.integers(1, 25, size=(1, 6))
        tgt2 = tgt1.copy()
        tgt2[0, 4] = (tgt2[0, 4] + 1) % 24 + 1
        l1 = model(src, tgt1).numpy()
        l2 = model(src, tgt2).numpy()
        assert np.allclose(l1[0, :4], l2[0, :4], atol=1e-10)
        assert not np.allclose(l1[0, 4:], l2[0, 4:])

    def test_source_padding_invariance(self, model):
        # Tokens beyond src_length must not affect the output.
        src1 = RNG.integers(1, 20, size=(1, 6))
        src2 = src1.copy()
        src2[0, 4:] = 7  # junk in padded region
        tgt = RNG.integers(1, 25, size=(1, 4))
        lengths = np.array([4])
        l1 = model(src1, tgt, src_lengths=lengths).numpy()
        l2 = model(src2, tgt, src_lengths=lengths).numpy()
        assert np.allclose(l1, l2, atol=1e-10)

    def test_batch_row_independence(self, model):
        src = RNG.integers(1, 20, size=(2, 5))
        tgt = RNG.integers(1, 25, size=(2, 5))
        joint = model(src, tgt).numpy()
        solo = model(src[:1], tgt[:1]).numpy()
        assert np.allclose(joint[0], solo[0], atol=1e-10)


class TestMaskBuilding:
    def test_shapes(self, model):
        enc, dec, cross = model.build_masks(
            np.array([3, 5]), tgt_len=4, src_len=5
        )
        assert enc.shape == (2, 5, 5)
        assert dec.shape == (2, 4, 4)
        assert cross.shape == (2, 4, 5)

    def test_decoder_mask_is_causal(self, model):
        _, dec, _ = model.build_masks(np.array([5]), 4, 5)
        assert dec[0, 0, 1] and not dec[0, 1, 1]

    def test_target_lengths_add_padding(self, model):
        _, dec, _ = model.build_masks(
            np.array([5]), 4, 5, tgt_lengths=np.array([2])
        )
        assert dec[0, 3, 2]  # padded target position masked even in past


class TestConfiguration:
    def test_tied_embeddings_share_table(self):
        m = Transformer(tiny_config(), 20, 20, tie_embeddings=True,
                        rng=np.random.default_rng(0))
        assert m.src_embed is m.tgt_embed

    def test_tied_embeddings_require_equal_vocab(self):
        with pytest.raises(ShapeError):
            Transformer(tiny_config(), 20, 25, tie_embeddings=True)

    def test_encoder_only_config_rejected(self):
        with pytest.raises(ShapeError):
            Transformer(tiny_config(num_decoder_layers=0), 20, 20)

    def test_multi_layer_stacks(self):
        m = Transformer(
            tiny_config(num_encoder_layers=2, num_decoder_layers=3), 10, 10,
            rng=np.random.default_rng(0),
        )
        assert len(m.encoder.layers) == 2
        assert len(m.decoder.layers) == 3

    def test_parameter_count_scales_with_layers(self):
        m1 = Transformer(tiny_config(), 10, 10, rng=np.random.default_rng(0))
        m2 = Transformer(
            tiny_config(num_encoder_layers=2), 10, 10,
            rng=np.random.default_rng(0),
        )
        assert m2.num_parameters() > m1.num_parameters()
