"""Encoder-only (BERT-style) classifier tests."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.errors import ShapeError
from repro.transformer import EncoderOnlyClassifier

RNG = np.random.default_rng(41)


def enc_config(layers=1):
    return ModelConfig(
        "enc", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=layers, num_decoder_layers=0,
        max_seq_len=16, dropout=0.0,
    )


@pytest.fixture
def model():
    return EncoderOnlyClassifier(
        enc_config(), vocab_size=20, num_classes=3,
        rng=np.random.default_rng(0),
    ).eval()


class TestForward:
    def test_logit_shape(self, model):
        ids = RNG.integers(1, 20, size=(4, 10))
        assert model(ids).shape == (4, 3)

    def test_predict_labels_in_range(self, model):
        ids = RNG.integers(1, 20, size=(4, 10))
        preds = model.predict(ids)
        assert preds.shape == (4,)
        assert set(preds) <= {0, 1, 2}

    def test_padding_invariance(self, model):
        ids1 = RNG.integers(1, 20, size=(1, 10))
        ids2 = ids1.copy()
        ids2[0, 6:] = 9
        lengths = np.array([6])
        a = model(ids1, lengths).numpy()
        b = model(ids2, lengths).numpy()
        assert np.allclose(a, b, atol=1e-10)

    def test_cls_position_drives_output(self, model):
        # Only position 0's final state feeds the head: two inputs whose
        # encodings differ elsewhere can still classify differently, but
        # replacing the whole sequence must change the logits.
        ids1 = RNG.integers(1, 20, size=(1, 8))
        ids2 = RNG.integers(1, 20, size=(1, 8))
        assert not np.allclose(model(ids1).numpy(), model(ids2).numpy())

    def test_1d_input_rejected(self, model):
        with pytest.raises(ShapeError):
            model(np.array([1, 2, 3]))

    def test_invalid_class_count(self):
        with pytest.raises(ShapeError):
            EncoderOnlyClassifier(enc_config(), 20, 1)

    def test_encode_states_shape(self, model):
        ids = RNG.integers(1, 20, size=(2, 7))
        assert model.encode(ids).shape == (2, 7, 64)

    def test_multi_layer_stack(self):
        model = EncoderOnlyClassifier(
            enc_config(layers=3), 20, 2, rng=np.random.default_rng(0)
        )
        assert len(model.encoder.layers) == 3

    def test_gradients_flow_to_all_params(self, model):
        ids = RNG.integers(1, 20, size=(2, 6))
        model(ids).sum().backward()
        assert all(p.grad is not None for p in model.parameters())
