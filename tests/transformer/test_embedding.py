"""Embedding and positional-encoding tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.transformer import (
    Embedding,
    PositionalEncoding,
    Tensor,
    sinusoidal_encoding,
)

RNG = np.random.default_rng(4)


class TestEmbedding:
    def test_lookup_and_scale(self):
        emb = Embedding(10, 16, rng=RNG)
        ids = np.array([[1, 3], [0, 9]])
        out = emb(ids)
        expected = emb.table.data[ids] * np.sqrt(16)
        assert np.allclose(out.data, expected)

    def test_no_scale_option(self):
        emb = Embedding(10, 16, scale=False, rng=RNG)
        ids = np.array([2])
        assert np.allclose(emb(ids).data, emb.table.data[2])

    def test_out_of_range_rejected(self):
        emb = Embedding(10, 16, rng=RNG)
        with pytest.raises(ShapeError):
            emb(np.array([10]))
        with pytest.raises(ShapeError):
            emb(np.array([-1]))

    def test_gradient_scatter(self):
        emb = Embedding(5, 4, rng=RNG)
        out = emb(np.array([2, 2, 3]))
        out.sum().backward()
        scale = np.sqrt(4)
        assert np.allclose(emb.table.grad[2], 2 * scale)
        assert np.allclose(emb.table.grad[3], scale)
        assert np.allclose(emb.table.grad[0], 0.0)


class TestSinusoidalEncoding:
    def test_first_position_is_sin0_cos0(self):
        table = sinusoidal_encoding(8, 6)
        assert np.allclose(table[0, 0::2], 0.0)   # sin(0)
        assert np.allclose(table[0, 1::2], 1.0)   # cos(0)

    def test_known_value(self):
        table = sinusoidal_encoding(4, 4)
        assert table[1, 0] == pytest.approx(np.sin(1.0))
        assert table[1, 1] == pytest.approx(np.cos(1.0))
        assert table[2, 2] == pytest.approx(np.sin(2.0 / 100.0))

    def test_values_bounded(self):
        table = sinusoidal_encoding(100, 32)
        assert np.abs(table).max() <= 1.0

    def test_odd_d_model_rejected(self):
        with pytest.raises(ShapeError):
            sinusoidal_encoding(10, 7)

    def test_positions_distinguishable(self):
        table = sinusoidal_encoding(64, 32)
        # No two positions share an encoding.
        for i in range(0, 63, 7):
            diffs = np.abs(table - table[i]).sum(axis=1)
            assert (diffs < 1e-9).sum() == 1


class TestPositionalEncodingModule:
    def test_adds_table(self):
        pe = PositionalEncoding(10, 8)
        x = RNG.normal(size=(2, 5, 8))
        out = pe(Tensor(x))
        assert np.allclose(out.data, x + sinusoidal_encoding(10, 8)[:5])

    def test_too_long_rejected(self):
        pe = PositionalEncoding(4, 8)
        with pytest.raises(ShapeError):
            pe(Tensor(np.zeros((1, 5, 8))))

    def test_not_trainable(self):
        pe = PositionalEncoding(4, 8)
        assert pe.num_parameters() == 0
