"""Tests for Linear, Dropout, LayerNorm layers (autograd versions)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.transformer import Dropout, LayerNorm, Linear, Tensor
from repro.transformer.functional import layer_norm

RNG = np.random.default_rng(3)


class TestLinear:
    def test_forward_matches_numpy(self):
        lin = Linear(4, 3, rng=RNG)
        x = RNG.normal(size=(5, 4))
        out = lin(Tensor(x))
        assert np.allclose(out.data, x @ lin.weight.data + lin.bias.data)

    def test_weight_orientation_matches_paper(self):
        # weight is (in, out): the SA consumes columns of W directly.
        lin = Linear(8, 2, rng=RNG)
        assert lin.weight.data.shape == (8, 2)

    def test_no_bias(self):
        lin = Linear(4, 3, bias=False, rng=RNG)
        assert lin.bias is None
        x = RNG.normal(size=(2, 4))
        assert np.allclose(lin(Tensor(x)).data, x @ lin.weight.data)

    def test_batched_input(self):
        lin = Linear(4, 3, rng=RNG)
        x = RNG.normal(size=(2, 5, 4))
        assert lin(Tensor(x)).shape == (2, 5, 3)

    def test_wrong_width_rejected(self):
        lin = Linear(4, 3, rng=RNG)
        with pytest.raises(ShapeError):
            lin(Tensor(np.zeros((2, 5))))

    def test_xavier_scale(self):
        lin = Linear(100, 100, rng=np.random.default_rng(0))
        limit = np.sqrt(6.0 / 200)
        assert lin.weight.data.max() <= limit
        assert lin.weight.data.min() >= -limit

    def test_gradients_flow(self):
        lin = Linear(3, 2, rng=RNG)
        out = lin(Tensor(RNG.normal(size=(4, 3)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None

    def test_invalid_dims_rejected(self):
        with pytest.raises(ShapeError):
            Linear(0, 3)


class TestDropout:
    def test_eval_mode_identity(self):
        drop = Dropout(0.5, rng=RNG)
        drop.eval()
        x = RNG.normal(size=(10, 10))
        assert np.array_equal(drop(Tensor(x)).data, x)

    def test_zero_rate_identity_in_train(self):
        drop = Dropout(0.0)
        x = RNG.normal(size=(5, 5))
        assert np.array_equal(drop(Tensor(x)).data, x)

    def test_train_mode_masks_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = drop(Tensor(x)).data
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)          # inverted scaling
        assert 0.4 < (out != 0).mean() < 0.6   # ~keep probability

    def test_invalid_rate_rejected(self):
        with pytest.raises(ShapeError):
            Dropout(1.0)


class TestLayerNormLayer:
    def test_matches_functional(self):
        norm = LayerNorm(16)
        x = RNG.normal(2.0, 3.0, size=(4, 16))
        expected = layer_norm(x, norm.gamma.data, norm.beta.data)
        assert np.allclose(norm(Tensor(x)).data, expected)

    def test_gradcheck(self):
        norm = LayerNorm(6)
        x = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
        norm(x).sum().backward()
        eps = 1e-6
        num = np.zeros_like(x.data)
        for i in range(2):
            for j in range(6):
                xp = x.data.copy()
                xp[i, j] += eps
                xm = x.data.copy()
                xm[i, j] -= eps
                fp = layer_norm(xp, norm.gamma.data, norm.beta.data).sum()
                fm = layer_norm(xm, norm.gamma.data, norm.beta.data).sum()
                num[i, j] = (fp - fm) / (2 * eps)
        assert np.allclose(x.grad, num, atol=1e-5)

    def test_gamma_beta_trainable(self):
        norm = LayerNorm(4)
        out = norm(Tensor(RNG.normal(size=(3, 4)))).sum()
        out.backward()
        assert norm.gamma.grad is not None
        assert norm.beta.grad is not None

    def test_width_mismatch_rejected(self):
        norm = LayerNorm(8)
        with pytest.raises(ShapeError):
            norm(Tensor(np.zeros((2, 4))))
