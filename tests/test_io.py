"""Serialization tests: configs and checkpoints."""

import numpy as np
import pytest

from repro.config import AcceleratorConfig, transformer_base
from repro.errors import ConfigError, ShapeError
from repro.io import (
    config_from_dict,
    config_to_dict,
    load_checkpoint,
    load_config,
    save_checkpoint,
    save_config,
)
from repro.transformer import Linear, Transformer


class TestConfigRoundtrip:
    def test_model_config(self, tmp_path):
        path = tmp_path / "model.json"
        save_config(transformer_base(), path)
        loaded = load_config(path)
        assert loaded == transformer_base()

    def test_accelerator_config(self, tmp_path):
        original = AcceleratorConfig(seq_len=32, clock_mhz=250.0,
                                     layernorm_mode="step_one")
        path = tmp_path / "acc.json"
        save_config(original, path)
        assert load_config(path) == original

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict({"kind": "gpu", "fields": {}})
        with pytest.raises(ConfigError):
            config_from_dict({"fields": {}})
        with pytest.raises(ConfigError):
            config_from_dict({"kind": "model", "fields": None})

    def test_unknown_object_rejected(self):
        with pytest.raises(ConfigError):
            config_to_dict({"not": "a config"})

    def test_validation_runs_on_load(self, tmp_path):
        payload = config_to_dict(transformer_base())
        payload["fields"]["num_heads"] = 5  # breaks the 64h pattern
        with pytest.raises(ConfigError):
            config_from_dict(payload)


class TestCheckpointRoundtrip:
    def test_transformer_roundtrip(self, tmp_path, tiny_model_config):
        rng = np.random.default_rng(0)
        m1 = Transformer(tiny_model_config, 10, 10, rng=rng)
        path = tmp_path / "ckpt.npz"
        count = save_checkpoint(m1, path)
        assert count == len(m1.state_dict())

        m2 = Transformer(tiny_model_config, 10, 10,
                         rng=np.random.default_rng(99))
        load_checkpoint(m2, path)
        for (_, p1), (_, p2) in zip(m1.named_parameters(),
                                    m2.named_parameters()):
            assert np.array_equal(p1.data, p2.data)

    def test_checkpoint_preserves_behaviour(self, tmp_path,
                                            tiny_model_config):
        rng = np.random.default_rng(1)
        m1 = Transformer(tiny_model_config, 10, 10, rng=rng).eval()
        src = rng.integers(1, 10, size=(1, 6))
        tgt = rng.integers(1, 10, size=(1, 6))
        expected = m1(src, tgt).numpy()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        m2 = Transformer(tiny_model_config, 10, 10,
                         rng=np.random.default_rng(2)).eval()
        load_checkpoint(m2, path)
        assert np.allclose(m2(src, tgt).numpy(), expected)

    def test_architecture_mismatch_rejected(self, tmp_path,
                                            tiny_model_config):
        m1 = Linear(4, 4, rng=np.random.default_rng(0))
        path = tmp_path / "lin.npz"
        save_checkpoint(m1, path)
        wrong = Linear(4, 8, rng=np.random.default_rng(0))
        with pytest.raises(ShapeError):
            load_checkpoint(wrong, path)

    def test_empty_model_rejected(self, tmp_path):
        from repro.transformer import PositionalEncoding

        with pytest.raises(ShapeError):
            save_checkpoint(PositionalEncoding(4, 8), tmp_path / "x.npz")
