"""Roofline analysis tests."""

import pytest

from repro.analysis import (
    accelerator_roofline,
    ffn_point,
    mha_point,
    offchip_weights_point,
)
from repro.config import paper_accelerator, transformer_base
from repro.errors import ConfigError


@pytest.fixture
def acc():
    return paper_accelerator()


@pytest.fixture
def model():
    return transformer_base()


class TestRoofline:
    def test_peak_is_pe_times_clock(self, acc):
        roofline = accelerator_roofline(acc)
        assert roofline.peak_macs_per_s == 4096 * 200e6

    def test_ridge_intensity(self, acc):
        roofline = accelerator_roofline(acc)
        # (64 weight bytes + 64 activation bytes) per cycle.
        assert roofline.ridge_intensity == pytest.approx(4096 / 128)

    def test_custom_stream_width(self, acc):
        roofline = accelerator_roofline(acc, stream_bytes_per_cycle=64)
        assert roofline.ridge_intensity == pytest.approx(64.0)

    def test_invalid_stream_width(self, acc):
        with pytest.raises(ConfigError):
            accelerator_roofline(acc, stream_bytes_per_cycle=0)

    def test_place_validates(self, acc):
        roofline = accelerator_roofline(acc)
        with pytest.raises(ConfigError):
            roofline.place("x", 0, 10)


class TestWorkloadPlacement:
    def test_both_resblocks_compute_bound_onchip(self, model, acc):
        # The design premise: with resident weights the SA is the limit.
        roofline = accelerator_roofline(acc)
        assert mha_point(model, acc, roofline).bound == "compute"
        assert ffn_point(model, acc, roofline).bound == "compute"

    def test_attainable_capped_at_peak(self, model, acc):
        roofline = accelerator_roofline(acc)
        point = ffn_point(model, acc, roofline)
        assert point.attainable_macs_per_s <= roofline.peak_macs_per_s

    def test_offchip_weights_memory_bound(self, model, acc):
        # The motivation for the 456-BRAM weight memory.
        point = offchip_weights_point(model, acc)
        assert point.bound == "memory"
        assert point.attainable_macs_per_s < 4096 * 200e6

    def test_offchip_intensity_is_s(self, model, acc):
        # Every weight byte feeds exactly s MACs at batch 1.
        point = offchip_weights_point(model, acc)
        assert point.intensity == pytest.approx(acc.seq_len)

    def test_macs_match_config_counters(self, model, acc):
        roofline = accelerator_roofline(acc)
        assert mha_point(model, acc, roofline).macs == model.mha_macs(64)
        assert ffn_point(model, acc, roofline).macs == model.ffn_macs(64)
