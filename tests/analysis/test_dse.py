"""Design-space exploration tests."""

import pytest

from repro.analysis import (
    enumerate_designs,
    evaluate_design,
    pareto_frontier,
    summarize,
)
from repro.config import AcceleratorConfig, transformer_base
from repro.errors import ConfigError


@pytest.fixture
def model():
    return transformer_base()


@pytest.fixture
def points(model):
    return enumerate_designs(
        model, seq_lens=(32, 64), clocks_mhz=(150.0, 200.0),
    )


class TestEvaluation:
    def test_paper_point_values(self, model):
        point = evaluate_design(model, AcceleratorConfig())
        assert point.mha_cycles == 21_578
        assert point.ffn_cycles == 39_052
        assert point.layer_latency_us == pytest.approx(
            (21_578 + 39_052) / 200.0
        )
        assert point.fits_device

    def test_objectives_tuple(self, model):
        point = evaluate_design(model, AcceleratorConfig())
        latency, lut, power = point.objectives()
        assert latency == point.layer_latency_us
        assert lut == point.lut
        assert power == point.power_w


class TestEnumeration:
    def test_cross_product_size(self, points):
        assert len(points) == 4

    def test_axes_required(self, model):
        with pytest.raises(ConfigError):
            enumerate_designs(model, seq_lens=())

    def test_higher_clock_lower_latency(self, model):
        slow, fast = enumerate_designs(
            model, seq_lens=(64,), clocks_mhz=(150.0, 300.0),
        )
        assert fast.layer_latency_us < slow.layer_latency_us

    def test_bigger_array_more_lut(self, model):
        small, big = enumerate_designs(
            model, seq_lens=(32, 128), clocks_mhz=(200.0,),
        )
        assert big.lut > small.lut


class TestWorkloadFairness:
    def test_small_array_pays_chunking(self, model):
        # A 16-row array serving a 64-token workload runs 4 chunks; its
        # latency must exceed the 64-row array's at the same clock.
        small, large = enumerate_designs(
            model, seq_lens=(16, 64), clocks_mhz=(200.0,),
        )
        assert small.config.seq_len == 16
        assert small.layer_latency_us > large.layer_latency_us

    def test_chunk_count_multiplies_cycles(self, model):
        point16 = evaluate_design(
            model, AcceleratorConfig(seq_len=16), workload_seq_len=64,
        )
        single = evaluate_design(
            model, AcceleratorConfig(seq_len=16), workload_seq_len=16,
        )
        assert point16.mha_cycles == 4 * single.mha_cycles

    def test_oversized_array_runs_once(self, model):
        point = evaluate_design(
            model, AcceleratorConfig(seq_len=128), workload_seq_len=64,
        )
        single = evaluate_design(
            model, AcceleratorConfig(seq_len=128), workload_seq_len=128,
        )
        assert point.mha_cycles == single.mha_cycles

    def test_invalid_workload(self, model):
        with pytest.raises(ConfigError):
            evaluate_design(model, AcceleratorConfig(), workload_seq_len=0)


class TestPareto:
    def test_frontier_subset_and_sorted(self, points):
        frontier = pareto_frontier(points)
        assert set(id(p) for p in frontier) <= set(id(p) for p in points)
        latencies = [p.layer_latency_us for p in frontier]
        assert latencies == sorted(latencies)

    def test_dominated_point_excluded(self, model):
        # Same s, lower clock: strictly worse latency, same LUT, lower
        # power — not dominated on power! Use LN-mode variants instead:
        # straightforward LN at the same everything is strictly slower.
        base = enumerate_designs(
            model, seq_lens=(64,), clocks_mhz=(200.0,),
            layernorm_modes=("step_two", "straightforward"),
        )
        frontier = pareto_frontier(base)
        modes = {p.config.layernorm_mode for p in frontier}
        assert modes == {"step_two"}

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            pareto_frontier([])

    def test_single_point_is_frontier(self, model):
        only = [evaluate_design(model, AcceleratorConfig())]
        assert pareto_frontier(only) == only


class TestSummary:
    def test_rows_match_points(self, points):
        rows = summarize(points)
        assert len(rows) == len(points)
        assert rows[0]["s"] == points[0].config.seq_len
        assert all(isinstance(r["fits"], bool) for r in rows)
