"""Parameter/FLOP split tests — Section II-A's motivating claim."""

import numpy as np
import pytest

from repro.analysis import (
    flop_split,
    parameter_split,
    section2a_claim_holds,
)
from repro.config import ModelConfig, transformer_base, transformer_big
from repro.errors import ConfigError
from repro.transformer import Transformer


class TestParameterSplit:
    def test_matches_actual_model(self):
        # The analytic count must equal the built model's, component by
        # component (positional encoding has no parameters).
        config = ModelConfig(
            "t", d_model=64, d_ff=256, num_heads=1,
            num_encoder_layers=2, num_decoder_layers=1,
            max_seq_len=16, dropout=0.0,
        )
        src_vocab, tgt_vocab = 50, 60
        model = Transformer(config, src_vocab, tgt_vocab,
                            rng=np.random.default_rng(0))
        split = parameter_split(config, src_vocab, tgt_vocab)
        assert split.total == model.num_parameters()
        emb = (model.src_embed.num_parameters()
               + model.tgt_embed.num_parameters())
        assert split.embeddings == emb
        assert split.generator == model.generator.num_parameters()
        assert split.resblocks == (model.encoder.num_parameters()
                                   + model.decoder.num_parameters())

    def test_tied_embeddings_counted_once(self):
        config = transformer_base()
        tied = parameter_split(config, 100, 100, tied_embeddings=True)
        untied = parameter_split(config, 100, 100)
        assert untied.embeddings == 2 * tied.embeddings

    def test_invalid_vocab(self):
        with pytest.raises(ConfigError):
            parameter_split(transformer_base(), 0, 10)


class TestSection2AClaim:
    def test_holds_for_transformer_base_at_paper_scale(self):
        # IWSLT-scale vocabulary: the two stacks dominate both parameters
        # and computation — the paper's justification for its scope.
        assert section2a_claim_holds(transformer_base())

    def test_holds_for_big(self):
        assert section2a_claim_holds(transformer_big())

    def test_resblock_param_fraction_majority_when_tied(self):
        split = parameter_split(
            transformer_base(), 37_000, 37_000,
            tied_embeddings=True, tied_generator=True,
        )
        assert split.resblock_fraction > 0.65

    def test_untied_setup_weakens_claim(self):
        # Without weight sharing, IWSLT-scale vocabularies erode the
        # parameter majority (44% ResBlocks) — documenting that the
        # Section II-A statement presumes the standard tied setup.
        split = parameter_split(transformer_base(), 37_000, 37_000)
        assert 0.35 < split.resblock_fraction < 0.5

    def test_tied_generator_is_bias_only(self):
        tied = parameter_split(transformer_base(), 100, 100,
                               tied_generator=True)
        assert tied.generator == 100

    def test_flops_overwhelmingly_in_resblocks(self):
        flops = flop_split(transformer_base(), 37_000, 64, 64)
        assert flops.resblock_fraction > 0.6
        assert flops.embeddings == 0

    def test_tiny_vocab_strengthens_claim(self):
        small = parameter_split(transformer_base(), 100, 100)
        large = parameter_split(transformer_base(), 50_000, 50_000)
        assert small.resblock_fraction > large.resblock_fraction

    def test_invalid_lengths(self):
        with pytest.raises(ConfigError):
            flop_split(transformer_base(), 100, 0, 10)
