"""Analysis helpers: Eq. (3) sweep and report rendering."""

import pytest

from repro.analysis import (
    deviation_row,
    max_ratio_in_scope,
    ratio_sweep,
    render_table,
)
from repro.errors import ShapeError


class TestRatioSweep:
    def test_grid_size(self):
        points = ratio_sweep(seq_lens=(16, 64), heads=(8, 16))
        assert len(points) == 4

    def test_paper_and_exact_agree_at_64(self):
        points = [p for p in ratio_sweep() if p.s == 64]
        assert all(p.divergence < 1e-12 for p in points)

    def test_divergence_away_from_64(self):
        points = [p for p in ratio_sweep(seq_lens=(128,), heads=(8,))]
        assert points[0].divergence > 0

    def test_max_ratio_small(self):
        assert max_ratio_in_scope(ratio_sweep()) < 0.01

    def test_empty_sweep_rejected(self):
        with pytest.raises(ShapeError):
            ratio_sweep(seq_lens=(), heads=(8,))
        with pytest.raises(ShapeError):
            max_ratio_in_scope([])


class TestRenderTable:
    def test_contains_all_cells(self):
        text = render_table("T", ["a", "b"], [[1, 2.5], ["x", 10000.0]])
        assert "T" in text
        assert "x" in text and "10,000" in text and "2.500" in text

    def test_alignment_consistent(self):
        text = render_table("T", ["col"], [[1], [22], [333]])
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:]}) >= 1

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            render_table("T", ["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ShapeError):
            render_table("T", [], [])


class TestDeviationRow:
    def test_format(self):
        row = deviation_row("mha", 110.0, 100.0)
        assert row[0] == "mha"
        assert row[3] == "+10.0%"

    def test_negative(self):
        assert deviation_row("x", 90.0, 100.0)[3] == "-10.0%"

    def test_zero_published_rejected(self):
        with pytest.raises(ShapeError):
            deviation_row("x", 1.0, 0.0)
