"""CLI tests for ``repro trace --requests`` and ``repro slo-report``.

Both commands must be deterministic under a fixed seed: two invocations
print byte-identical reports and write byte-identical artifacts.
"""

import json

import pytest

from repro.cli import main


def run(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


class TestTraceRequestsMode:
    def test_cluster_report_is_deterministic(self, capsys):
        argv = ["trace", "--requests", "cluster",
                "--requests-per-tenant", "20", "--top", "5"]
        first = run(capsys, argv)
        second = run(capsys, argv)
        assert first == second
        assert "slowest requests" in first
        assert "hop rollup" in first

    def test_serving_waterfall_for_one_request(self, capsys):
        out = run(capsys, [
            "trace", "--requests", "serving",
            "--requests-per-tenant", "30", "--req-id", "3",
        ])
        assert "req 3" in out
        assert "share" in out

    def test_decode_report(self, capsys):
        out = run(capsys, [
            "trace", "--requests", "decode",
            "--requests-per-tenant", "8",
        ])
        assert "traces collected" in out

    def test_missing_req_id_is_clean_error(self, capsys):
        assert main([
            "trace", "--requests", "serving",
            "--requests-per-tenant", "10", "--req-id", "9999",
        ]) == 1
        assert "no trace for request id" in capsys.readouterr().err

    def test_otlp_artifact_is_deterministic(self, tmp_path, capsys):
        paths = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            run(capsys, [
                "trace", "--requests", "serving",
                "--requests-per-tenant", "25",
                "--otlp-out", str(path),
            ])
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]
        payload = json.loads(paths[0])
        assert payload["resourceSpans"][0]["scopeSpans"][0]["spans"]

    def test_block_mode_without_out_is_clean_error(self, capsys):
        assert main(["trace", "--block", "ffn"]) == 1
        assert "--out is required" in capsys.readouterr().err


class TestSloReport:
    @pytest.mark.parametrize("scenario", ["pinned", "bursty"])
    def test_deterministic_output(self, capsys, scenario):
        argv = ["slo-report", "--scenario", scenario,
                "--requests-per-tenant", "60"]
        first = run(capsys, argv)
        second = run(capsys, argv)
        assert first == second
        assert "SLO burn-rate report" in first

    def test_bursty_fires_and_scales(self, capsys, tmp_path):
        json_path = tmp_path / "slo.json"
        trace_path = tmp_path / "trace.json"
        out = run(capsys, [
            "slo-report", "--scenario", "bursty",
            "--requests-per-tenant", "200",
            "--json", str(json_path), "--trace-out", str(trace_path),
        ])
        assert "alert firings" in out
        payload = json.loads(json_path.read_text())
        assert payload["scenario"] == "bursty"
        assert payload["alerts"]
        assert payload["tenants"]["bursty"]["alerts_fired"] >= 1
        trace = json.loads(trace_path.read_text())
        tracks = {
            e["args"]["name"] for e in trace["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert "slo_alerts" in tracks

    def test_objective_override(self, capsys):
        out = run(capsys, [
            "slo-report", "--requests-per-tenant", "20",
            "--objective", "0.5",
        ])
        assert "objective 50%" in out
