"""Instrumentation parity: tracing/monitoring never perturbs a run.

The tracer and burn-rate monitor are strictly passive observers.  An
instrumented simulation must produce bit-identical outputs — metrics,
per-request records, Chrome-trace spans, autoscaler actions — to the
same run without instrumentation.  This extends the PR 5 registry
parity tests to the serving tracer and to cluster/decode.
"""

import dataclasses

import pytest

from repro.cluster import pinned_cluster, simulate_cluster
from repro.config import (
    AcceleratorConfig,
    DecodeConfig,
    ServingConfig,
    transformer_base,
)
from repro.decode import simulate_decode
from repro.obs import BurnRateMonitor, SamplingPolicy, TraceCollector, TraceSampler
from repro.serving import simulate_serving


@pytest.fixture(scope="module")
def model():
    return transformer_base()


@pytest.fixture(scope="module")
def acc():
    return AcceleratorConfig(abft_protected=True)


def serving_config():
    return ServingConfig(
        num_requests=80, max_len=64, batch_fault_rate=0.05,
        max_retries=2, queue_timeout_us=60_000.0, seed=0,
    )


class TestServingParity:
    def test_tracer_does_not_perturb_the_run(self, model, acc):
        cfg = serving_config()
        plain = simulate_serving(model, acc, cfg)
        tracer = TraceCollector(sampler=TraceSampler(SamplingPolicy()))
        traced = simulate_serving(model, acc, cfg, tracer=tracer)
        assert traced.metrics == plain.metrics
        assert traced.spans == plain.spans
        assert [dataclasses.astuple(r) for r in traced.records] == [
            dataclasses.astuple(r) for r in plain.records
        ]
        assert len(tracer) == len(plain.records)


class TestClusterParity:
    def test_tracer_and_monitor_do_not_perturb_the_run(self, model):
        cluster = pinned_cluster(requests_per_tenant=40)
        plain = simulate_cluster(model, cluster)
        tracer = TraceCollector(sampler=TraceSampler(SamplingPolicy()))
        monitor = BurnRateMonitor()
        traced = simulate_cluster(
            model, cluster, tracer=tracer, monitor=monitor
        )
        assert traced.metrics == plain.metrics
        assert traced.spans == plain.spans
        assert traced.actions == plain.actions
        assert [dataclasses.astuple(r) for r in traced.records] == [
            dataclasses.astuple(r) for r in plain.records
        ]
        assert len(tracer) == len(plain.records)
        # The monitor saw every terminal event.
        assert sum(
            e["events"] for e in monitor.summary().values()
        ) == len(plain.records)

    def test_burn_hook_changes_nothing_when_disabled(self, model):
        # pinned_cluster leaves scale_up_burn_rate unset, so attaching
        # a monitor must not alter autoscaling even in principle.
        cluster = pinned_cluster(requests_per_tenant=40)
        assert cluster.autoscaler.scale_up_burn_rate is None
        monitor = BurnRateMonitor()
        with_mon = simulate_cluster(model, cluster, monitor=monitor)
        without = simulate_cluster(model, cluster)
        assert with_mon.actions == without.actions


class TestDecodeParity:
    def test_tracer_does_not_perturb_the_run(self, model, acc):
        decode = DecodeConfig(num_streams=24, seed=0)
        plain = simulate_decode(model, acc, decode)
        tracer = TraceCollector()
        traced = simulate_decode(model, acc, decode, tracer=tracer)
        assert traced.metrics == plain.metrics
        assert traced.spans == plain.spans
        assert [dataclasses.astuple(r) for r in traced.records] == [
            dataclasses.astuple(r) for r in plain.records
        ]
        assert len(tracer) == len(plain.records)
