"""OTLP-JSON export and histogram-exemplar tests (repro.obs.export).

Ids must be pure functions of ``(req_id, index, seed)`` — stable across
processes and runs — and the emitted JSON must be loadable (strict
``allow_nan=False``), with every non-root span's ``parentSpanId``
resolving to a span in the same tree.
"""

import json

import pytest

from repro.obs import (
    AttemptSpan,
    attach_latency_exemplars,
    request_trace,
    span_id_hex,
    trace_id_hex,
    traces_to_otlp,
    write_otlp,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry.registry import MAX_EXEMPLARS_PER_BUCKET


def sample_trace(req_id=1, latency=20.0, tenant="a", sampled=True):
    att = AttemptSpan(
        dispatched_us=10.0, start_us=12.0, end_us=10.0 + latency,
        compute_boundary_us=15.0,
    )
    trace = request_trace(
        req_id=req_id, status="completed", arrival_us=10.0,
        attempts=(att,), tenant=tenant,
        attrs={"batch": 3, "corrupted": False},
    )
    if not sampled:
        trace.sampled = False
        trace.root.children.clear()
    return trace


class TestIds:
    def test_shapes_and_determinism(self):
        assert len(trace_id_hex(7)) == 32
        assert len(span_id_hex(7, 0)) == 16
        assert trace_id_hex(7) == trace_id_hex(7)
        assert span_id_hex(7, 2) == span_id_hex(7, 2)
        int(trace_id_hex(7), 16)  # valid hex

    def test_distinct_across_requests_indices_and_seeds(self):
        assert trace_id_hex(1) != trace_id_hex(2)
        assert trace_id_hex(1, seed=0) != trace_id_hex(1, seed=1)
        assert span_id_hex(1, 0) != span_id_hex(1, 1)
        assert span_id_hex(1, 0) != span_id_hex(2, 0)


class TestOtlpShape:
    def test_span_tree_renders_with_parent_links(self):
        trace = sample_trace()
        payload = traces_to_otlp([trace])
        spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert len(spans) == len(list(trace.root.walk()))
        by_id = {s["spanId"]: s for s in spans}
        roots = [s for s in spans if "parentSpanId" not in s]
        assert len(roots) == 1
        for span in spans:
            assert span["traceId"] == trace_id_hex(1)
            assert span["kind"] == 1
            if "parentSpanId" in span:
                assert span["parentSpanId"] in by_id
            # Nanosecond stamps are stringified integers (OTLP-JSON).
            assert span["startTimeUnixNano"] == str(
                int(span["startTimeUnixNano"])
            )

    def test_root_carries_request_attributes(self):
        payload = traces_to_otlp([sample_trace()])
        spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        root = next(s for s in spans if "parentSpanId" not in s)
        attrs = {a["key"]: a["value"] for a in root["attributes"]}
        assert attrs["repro.req_id"] == {"intValue": "1"}
        assert attrs["repro.status"] == {"stringValue": "completed"}
        assert attrs["repro.tenant"] == {"stringValue": "a"}
        # bool must render as boolValue, not intValue (bool < int).
        assert attrs["repro.corrupted"] == {"boolValue": False}
        assert attrs["repro.sampled"] == {"boolValue": True}
        assert attrs["repro.batch"] == {"intValue": "3"}

    def test_failed_trace_maps_to_error_status(self):
        trace = request_trace(
            req_id=5, status="expired", arrival_us=0.0, end_us=4.0
        )
        payload = traces_to_otlp([trace])
        spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert all(s["status"]["code"] == 2 for s in spans)

    def test_write_otlp_roundtrip(self, tmp_path):
        path = tmp_path / "otlp.json"
        count = write_otlp([sample_trace(), sample_trace(req_id=2)],
                           str(path))
        payload = json.loads(path.read_text())
        spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert len(spans) == count
        resource = payload["resourceSpans"][0]["resource"]["attributes"]
        assert resource[0]["key"] == "service.name"

    def test_two_calls_emit_identical_payloads(self):
        traces = [sample_trace(), sample_trace(req_id=2, latency=5.0)]
        a = json.dumps(traces_to_otlp(traces), sort_keys=True)
        b = json.dumps(traces_to_otlp(traces), sort_keys=True)
        assert a == b


class TestLatencyExemplars:
    FAMILY = "repro_serving_latency_us"

    def _registry_with_hist(self, values=(5.0, 50.0, 5000.0)):
        registry = MetricsRegistry()
        hist = registry.histogram(self.FAMILY, "request latency")
        for v in values:
            hist.observe(v)
        return registry

    def test_attaches_only_retained_completed(self):
        registry = self._registry_with_hist()
        traces = [
            sample_trace(req_id=1, latency=40.0),
            sample_trace(req_id=2, latency=60.0, sampled=False),
            request_trace(req_id=3, status="shed", arrival_us=0.0),
        ]
        attached = attach_latency_exemplars(registry, traces, self.FAMILY)
        assert attached == 1
        hist = registry.get(self.FAMILY)
        refs = [
            ref for bucket in hist.exemplars().values()
            for _, ref in bucket
        ]
        assert refs == [trace_id_hex(1)]

    def test_absent_family_is_a_noop(self):
        registry = MetricsRegistry()
        assert attach_latency_exemplars(
            registry, [sample_trace()], "repro_never_emitted"
        ) == 0

    def test_bucket_cap_keeps_slowest(self):
        registry = self._registry_with_hist()
        hist = registry.get(self.FAMILY)
        # All land in the same bucket; only the largest values survive.
        for i in range(MAX_EXEMPLARS_PER_BUCKET + 3):
            hist.attach_exemplar(40.0 + i, f"ref{i}")
        buckets = hist.exemplars()
        (bucket,) = buckets.values()
        assert len(bucket) == MAX_EXEMPLARS_PER_BUCKET
        values = [v for v, _ in bucket]
        assert values == sorted(values, reverse=True)
        assert values[0] == 40.0 + MAX_EXEMPLARS_PER_BUCKET + 2

    def test_exemplars_surface_in_series_value(self):
        registry = self._registry_with_hist()
        hist = registry.get(self.FAMILY)
        hist.attach_exemplar(1e9, "overflow-ref")  # beyond the last edge
        value = hist.series_value(())
        assert "exemplars" in value
        tops = [e for e in value["exemplars"] if e["le"] == "+Inf"]
        assert tops and tops[0]["refs"] == [
            {"value": 1e9, "trace": "overflow-ref"}
        ]

    def test_nan_exemplar_rejected(self):
        registry = self._registry_with_hist()
        hist = registry.get(self.FAMILY)
        with pytest.raises(Exception):
            hist.attach_exemplar(float("nan"), "bad")
