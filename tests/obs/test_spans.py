"""Span-tree unit and property tests (repro.obs.spans).

The load-bearing invariant: a request trace's leaf spans *exactly*
partition its wall time — children share boundary timestamps, so the
exact (Fraction) sum of leaf durations telescopes to end_us − start_us,
and rounding that single difference to float reproduces the recorded
latency bit-for-bit.  The hypothesis properties pin that for arbitrary
attempt chains; the unit tests pin each builder shape and each
validator rejection.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObsError
from repro.obs import (
    AttemptSpan,
    RequestTrace,
    Span,
    TraceCollector,
    request_trace,
    stream_trace,
)
from repro.telemetry import MetricsRegistry


def exact_leaf_sum(trace: RequestTrace) -> float:
    """Float of the exact Fraction sum of leaf durations."""
    total = sum(
        (Fraction(h.end_us) - Fraction(h.start_us) for h in trace.hops()),
        Fraction(0),
    )
    return float(total)


class TestBuilders:
    def test_completed_with_queue_wait_and_stall_split(self):
        att = AttemptSpan(
            dispatched_us=10.0, start_us=12.0, end_us=20.0,
            compute_boundary_us=17.0,
        )
        trace = request_trace(
            req_id=1, status="completed", arrival_us=3.0,
            attempts=(att,), tenant="a",
        )
        kinds = [h.kind for h in trace.hops()]
        assert kinds == [
            "queue_wait", "device_wait", "compute", "memsys_stall",
        ]
        assert trace.latency_us == 20.0 - 3.0
        assert exact_leaf_sum(trace) == trace.latency_us
        assert trace.attrs["retries"] == 0

    def test_retry_attempts_and_counter(self):
        attempts = (
            AttemptSpan(dispatched_us=0.0, start_us=0.0, end_us=5.0),
            AttemptSpan(dispatched_us=5.0, start_us=6.0, end_us=11.0),
        )
        trace = request_trace(
            req_id=2, status="completed", arrival_us=0.0,
            attempts=attempts,
        )
        assert trace.attrs["retries"] == 1
        names = [h.name for h in trace.hops()]
        assert "retry1.device_wait" in names
        assert "retry1.compute" in names
        assert exact_leaf_sum(trace) == trace.latency_us

    def test_no_queue_wait_when_dispatched_at_arrival(self):
        att = AttemptSpan(dispatched_us=4.0, start_us=4.0, end_us=9.0)
        trace = request_trace(
            req_id=3, status="completed", arrival_us=4.0, attempts=(att,)
        )
        assert [h.kind for h in trace.hops()] == ["compute"]

    def test_boundary_outside_run_collapses_to_compute(self):
        # Clamped boundary at (or past) either edge must not produce a
        # zero-width stall split — a single compute hop covers the run.
        for boundary in (3.9, 4.0, 9.0, 9.5):
            att = AttemptSpan(
                dispatched_us=4.0, start_us=4.0, end_us=9.0,
                compute_boundary_us=boundary,
            )
            trace = request_trace(
                req_id=4, status="completed", arrival_us=0.0,
                attempts=(att,),
            )
            kinds = [h.kind for h in trace.hops()]
            assert kinds == ["queue_wait", "compute"]

    def test_failed_after_attempts_gets_zero_width_marker(self):
        att = AttemptSpan(dispatched_us=1.0, start_us=1.0, end_us=6.0)
        trace = request_trace(
            req_id=5, status="failed", arrival_us=0.0, attempts=(att,)
        )
        marker = trace.hops()[-1]
        assert marker.kind == "failed"
        assert marker.duration_us == 0.0
        assert exact_leaf_sum(trace) == trace.latency_us

    def test_expired_requires_end_us(self):
        with pytest.raises(ObsError):
            request_trace(req_id=6, status="expired", arrival_us=0.0)
        trace = request_trace(
            req_id=6, status="expired", arrival_us=2.0, end_us=12.0
        )
        assert [h.kind for h in trace.hops()] == ["queue_wait", "expired"]
        assert trace.latency_us == 10.0

    def test_rejected_and_shed_hold_no_wall_time(self):
        for status in ("rejected", "shed"):
            trace = request_trace(
                req_id=7, status=status, arrival_us=42.0
            )
            assert trace.latency_us == 0.0
            assert [h.kind for h in trace.hops()] == [status]

    def test_completed_without_attempts_rejected(self):
        with pytest.raises(ObsError):
            request_trace(req_id=8, status="completed", arrival_us=0.0)

    def test_unknown_status_rejected(self):
        with pytest.raises(ObsError):
            request_trace(req_id=9, status="teleported", arrival_us=0.0)


class TestStreamTrace:
    def test_gaps_become_wait_spans(self):
        intervals = (
            ("s0.prefill", "prefill", 5.0, 9.0, {}),
            ("s0.decode.b0", "decode_step", 12.0, 15.0, {}),
        )
        trace = stream_trace(
            stream_id=0, status="completed", arrival_us=2.0,
            intervals=intervals,
        )
        kinds = [h.kind for h in trace.hops()]
        assert kinds == [
            "wait", "prefill", "wait", "decode_step",
        ]
        assert exact_leaf_sum(trace) == trace.latency_us == 13.0

    def test_back_to_back_intervals_need_no_wait(self):
        intervals = (
            ("s1.prefill", "prefill", 0.0, 4.0, {}),
            ("s1.decode.b0", "decode_step", 4.0, 6.0, {}),
        )
        trace = stream_trace(
            stream_id=1, status="completed", arrival_us=0.0,
            intervals=intervals,
        )
        assert [h.kind for h in trace.hops()] == ["prefill", "decode_step"]

    def test_out_of_order_interval_rejected(self):
        intervals = (
            ("s2.prefill", "prefill", 4.0, 8.0, {}),
            ("s2.decode.b0", "decode_step", 7.0, 9.0, {}),
        )
        with pytest.raises(ObsError):
            stream_trace(
                stream_id=2, status="completed", arrival_us=0.0,
                intervals=intervals,
            )

    def test_rejected_stream(self):
        trace = stream_trace(stream_id=3, status="rejected", arrival_us=1.0)
        assert trace.latency_us == 0.0


class TestValidate:
    def test_gap_between_children_rejected(self):
        root = Span("r", "request", 0.0, 10.0)
        root.child("a", "queue_wait", 0.0, 4.0)
        root.child("b", "compute", 5.0, 10.0)  # 4.0 != 5.0
        with pytest.raises(ObsError):
            root.validate()

    def test_first_child_must_start_with_parent(self):
        root = Span("r", "request", 0.0, 10.0)
        root.child("a", "compute", 1.0, 10.0)
        with pytest.raises(ObsError):
            root.validate()

    def test_last_child_must_end_with_parent(self):
        root = Span("r", "request", 0.0, 10.0)
        root.child("a", "compute", 0.0, 9.0)
        with pytest.raises(ObsError):
            root.validate()

    def test_negative_duration_rejected(self):
        with pytest.raises(ObsError):
            Span("r", "request", 5.0, 4.0).validate()

    def test_validation_recurses(self):
        root = Span("r", "request", 0.0, 10.0)
        mid = root.child("a", "service", 0.0, 10.0)
        mid.children.append(Span("bad", "compute", 0.0, 9.0))
        with pytest.raises(ObsError):
            root.validate()


class TestCollector:
    def _trace(self, req_id: int) -> RequestTrace:
        att = AttemptSpan(dispatched_us=0.0, start_us=0.0, end_us=1.0)
        return request_trace(
            req_id=req_id, status="completed", arrival_us=0.0,
            attempts=(att,),
        )

    def test_duplicate_req_id_rejected(self):
        collector = TraceCollector()
        collector.add(self._trace(0))
        with pytest.raises(ObsError):
            collector.add(self._trace(0))

    def test_traces_in_req_id_order(self):
        collector = TraceCollector()
        for req_id in (4, 1, 3):
            collector.add(self._trace(req_id))
        assert [t.req_id for t in collector.traces] == [1, 3, 4]
        assert len(collector) == 3
        assert collector.get(3).req_id == 3
        assert collector.get(99) is None

    def test_retention_counters(self):
        registry = MetricsRegistry()
        collector = TraceCollector(registry=registry)
        collector.add(self._trace(0))
        collector.add(self._trace(1))
        assert registry.counter(
            "repro_obs_traces_total",
            "Request traces observed by the collector",
        ).total() == 2
        assert registry.counter(
            "repro_obs_traces_retained_total",
            "Request traces retained in full by tail-based sampling",
        ).total() == 2


# Strategy: an attempt chain with queue wait, device waits, runs and
# optional stall boundaries, all built from raw floats so boundary
# timestamps inherit real rounding behavior.
_DELTAS = st.floats(
    min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False
)
_POSITIVE = st.floats(
    min_value=1e-3, max_value=1e5, allow_nan=False, allow_infinity=False
)


@st.composite
def attempt_chains(draw):
    arrival = draw(_DELTAS)
    cursor = arrival + draw(_DELTAS)  # dispatch time
    dispatched = cursor
    attempts = []
    for _ in range(draw(st.integers(1, 4))):
        wait = draw(_DELTAS)
        run = draw(_POSITIVE)
        start = cursor + wait
        end = start + run
        boundary = None
        if draw(st.booleans()):
            # Anywhere around the run window: clamping must cope.
            boundary = start + run * draw(st.floats(
                min_value=-0.5, max_value=1.5,
                allow_nan=False, allow_infinity=False,
            ))
        attempts.append(AttemptSpan(
            dispatched_us=cursor, start_us=start, end_us=end,
            compute_boundary_us=boundary,
        ))
        cursor = end
    return arrival, dispatched, tuple(attempts)


class TestPartitionProperties:
    @settings(max_examples=200, deadline=None)
    @given(chain=attempt_chains(), failed=st.booleans())
    def test_hops_partition_latency_exactly(self, chain, failed):
        arrival, dispatched, attempts = chain
        trace = request_trace(
            req_id=0,
            status="failed" if failed else "completed",
            arrival_us=arrival,
            dispatched_us=dispatched,
            attempts=attempts,
        )
        trace.validate()
        # Exact telescoping: float of the exact sum equals the (itself
        # correctly-rounded) end-to-end latency.
        assert exact_leaf_sum(trace) == trace.latency_us

    @settings(max_examples=200, deadline=None)
    @given(chain=attempt_chains())
    def test_children_stay_inside_parent(self, chain):
        arrival, dispatched, attempts = chain
        trace = request_trace(
            req_id=0, status="completed", arrival_us=arrival,
            dispatched_us=dispatched, attempts=attempts,
        )
        for span in trace.root.walk():
            for child in span.children:
                assert child.start_us >= span.start_us
                assert child.end_us <= span.end_us
        # Leaves are non-overlapping by the tiling invariant.
        hops = trace.hops()
        for prev, nxt in zip(hops, hops[1:]):
            assert prev.end_us == nxt.start_us
