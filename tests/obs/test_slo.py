"""Burn-rate monitor tests (repro.obs.slo).

The default policy burns error budget at ``(bad/total)/(1-objective)``,
so at the 95% objective an all-bad window burns at 20x.  Alerts need
*both* windows over threshold plus ``min_events`` in the long window
(no single-request page), and resolve on the short window alone
(hysteresis: the long window's memory does not pin an alert active
after traffic recovers).
"""

import pytest

from repro.errors import ObsError
from repro.obs import BurnRateMonitor, BurnRateWindow, SloPolicy
from repro.telemetry import MetricsRegistry


def feed(monitor, start_us, count, good, tenant="t", gap_us=1000.0):
    ts = start_us
    for _ in range(count):
        monitor.observe(ts, tenant, good)
        ts += gap_us
    return ts


class TestPolicyValidation:
    def test_objective_bounds(self):
        with pytest.raises(ObsError):
            SloPolicy(objective=0.0)
        with pytest.raises(ObsError):
            SloPolicy(objective=1.0)

    def test_short_window_cannot_exceed_long(self):
        with pytest.raises(ObsError):
            SloPolicy(
                long=BurnRateWindow(50_000.0, 3.0),
                short=BurnRateWindow(60_000.0, 6.0),
            )

    def test_window_validation(self):
        with pytest.raises(ObsError):
            BurnRateWindow(0.0, 3.0)
        with pytest.raises(ObsError):
            BurnRateWindow(1000.0, 0.0)

    def test_budget(self):
        assert SloPolicy(objective=0.95).budget == pytest.approx(0.05)


class TestAlertLifecycle:
    def test_fires_only_past_min_events(self):
        monitor = BurnRateMonitor()
        feed(monitor, 0.0, 9, good=False)
        assert monitor.alerts == []
        feed(monitor, 9_000.0, 1, good=False)
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].active

    def test_no_alert_when_burn_is_low(self):
        monitor = BurnRateMonitor()
        # 1 bad in 40: burn = 20 * 1/40 = 0.5, far below thresholds.
        feed(monitor, 0.0, 39, good=True)
        monitor.observe(39_000.0, "t", False)
        assert monitor.alerts == []

    def test_resolves_when_short_window_clears(self):
        monitor = BurnRateMonitor()
        end = feed(monitor, 0.0, 10, good=False)
        alert = monitor.alerts[0]
        assert alert.active
        # Good traffic inside the short window dilutes bad/total below
        # 6/20 = 0.3; the long window still remembers the bad burst,
        # which must NOT keep the alert pinned (hysteresis is
        # short-window only).
        feed(monitor, end, 30, good=True, gap_us=500.0)
        assert not monitor.alerts[0].active
        assert monitor.alerts[0].resolved_us is not None

    def test_no_double_fire_while_active(self):
        monitor = BurnRateMonitor()
        feed(monitor, 0.0, 20, good=False)
        assert len(monitor.alerts) == 1

    def test_refire_after_resolution(self):
        monitor = BurnRateMonitor()
        end = feed(monitor, 0.0, 10, good=False)
        end = feed(monitor, end, 30, good=True, gap_us=500.0)
        assert not monitor.alerts[0].active
        # A fresh bad burst past the long window's memory re-fires.
        feed(monitor, end + 400_000.0, 10, good=False)
        assert len(monitor.alerts) == 2

    def test_time_regression_rejected(self):
        monitor = BurnRateMonitor()
        monitor.observe(1000.0, "t", True)
        with pytest.raises(ObsError):
            monitor.observe(999.0, "t", True)

    def test_tenants_are_independent(self):
        monitor = BurnRateMonitor()
        for i in range(10):
            monitor.observe(i * 1000.0, "bad-tenant", False)
            monitor.observe(i * 1000.0, "good-tenant", True)
        assert [a.tenant for a in monitor.alerts] == ["bad-tenant"]


class TestAccessors:
    def test_short_burn_and_max_short_burn(self):
        monitor = BurnRateMonitor()
        feed(monitor, 0.0, 10, good=False, tenant="a")
        feed(monitor, 9_000.0, 10, good=True, tenant="b")
        assert monitor.short_burn(10_000.0, "a") == pytest.approx(20.0)
        assert monitor.short_burn(10_000.0, "b") == 0.0
        assert monitor.short_burn(10_000.0, "ghost") == 0.0
        assert monitor.max_short_burn(10_000.0) == pytest.approx(20.0)
        # Past the short window the burn decays to idle.
        assert monitor.short_burn(1e9, "a") == 0.0

    def test_alert_spans_on_registered_track(self):
        monitor = BurnRateMonitor()
        end = feed(monitor, 0.0, 10, good=False)
        feed(monitor, end, 30, good=True, gap_us=500.0)
        feed(monitor, 500_000.0, 10, good=False)
        spans = monitor.alert_spans()
        assert len(spans) == 2
        resolved, unresolved = spans
        assert all(s.track == "slo_alerts" for s in spans)
        assert resolved.args["resolved"] is True
        assert resolved.duration_us > 0
        assert unresolved.args["resolved"] is False
        # Unresolved alerts extend to the last observed event.
        assert unresolved.end_us == 509_000.0

    def test_summary_rollup(self):
        monitor = BurnRateMonitor()
        feed(monitor, 0.0, 10, good=False, tenant="b")
        feed(monitor, 9_000.0, 5, good=True, tenant="a")
        summary = monitor.summary()
        assert list(summary) == ["a", "b"]  # sorted, deterministic
        assert summary["b"]["events"] == 10
        assert summary["b"]["alerts_fired"] == 1
        assert summary["b"]["alerts_unresolved"] == 1
        assert summary["b"]["peak_burn_short"] == pytest.approx(20.0)
        assert summary["a"]["alerts_fired"] == 0

    def test_timeline_records_every_event(self):
        monitor = BurnRateMonitor()
        feed(monitor, 0.0, 7, good=True)
        assert len(monitor.timeline["t"]) == 7
        ts = [p[0] for p in monitor.timeline["t"]]
        assert ts == sorted(ts)


class TestRegistryEmission:
    def test_families_and_values(self):
        registry = MetricsRegistry()
        monitor = BurnRateMonitor(registry=registry)
        feed(monitor, 0.0, 10, good=False)
        feed(monitor, 9_000.0, 4, good=True)
        assert registry.counter(
            "repro_obs_slo_bad_total",
            "SLO-bad terminal request events per tenant",
        ).total() == 10
        assert registry.counter(
            "repro_obs_slo_good_total",
            "SLO-good terminal request events per tenant",
        ).total() == 4
        assert registry.counter(
            "repro_obs_alerts_total",
            "Burn-rate alert firings per tenant",
        ).total() == 1
        assert "repro_obs_burn_rate" in registry
        assert "repro_obs_alert_active" in registry
