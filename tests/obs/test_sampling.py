"""Tail-based sampling tests (repro.obs.sampling).

The acceptance-critical rule: every interesting outcome — SLO
violation, retry, corruption, and every non-completed terminal — is
retained at 100%, regardless of head_rate.  The head-sample itself is a
pure arithmetic hash, so retention decisions are identical across runs
and processes.
"""

import pytest

from repro.errors import ObsError
from repro.obs import (
    AttemptSpan,
    SamplingPolicy,
    TraceCollector,
    TraceSampler,
    request_trace,
)


def completed_trace(req_id: int, **attrs):
    att = AttemptSpan(dispatched_us=0.0, start_us=0.0, end_us=1.0)
    return request_trace(
        req_id=req_id, status="completed", arrival_us=0.0,
        attempts=(att,), attrs=attrs,
    )


class TestPolicy:
    def test_head_rate_bounds(self):
        SamplingPolicy(head_rate=0.0)
        SamplingPolicy(head_rate=1.0)
        with pytest.raises(ObsError):
            SamplingPolicy(head_rate=1.5)
        with pytest.raises(ObsError):
            SamplingPolicy(head_rate=-0.1)


class TestKeepRules:
    def test_interesting_outcomes_always_kept(self):
        sampler = TraceSampler(SamplingPolicy(head_rate=0.0))
        assert sampler.keep(completed_trace(0, slo_violated=True))
        assert sampler.keep(completed_trace(1, corrupted=True))
        retried = completed_trace(2)
        retried.attrs["retries"] = 1
        assert sampler.keep(retried)
        for status in ("shed", "rejected"):
            assert sampler.keep(request_trace(
                req_id=3, status=status, arrival_us=0.0
            ))
        assert sampler.keep(request_trace(
            req_id=4, status="expired", arrival_us=0.0, end_us=5.0
        ))

    def test_boring_completions_follow_head_rate_extremes(self):
        keep_none = TraceSampler(SamplingPolicy(head_rate=0.0))
        keep_all = TraceSampler(SamplingPolicy(head_rate=1.0))
        for req_id in range(50):
            trace = completed_trace(req_id)
            assert not keep_none.keep(trace)
            assert keep_all.keep(trace)

    def test_head_sample_is_deterministic(self):
        a = TraceSampler(SamplingPolicy(head_rate=0.3, seed=7))
        b = TraceSampler(SamplingPolicy(head_rate=0.3, seed=7))
        decisions_a = [a.keep(completed_trace(i)) for i in range(200)]
        decisions_b = [b.keep(completed_trace(i)) for i in range(200)]
        assert decisions_a == decisions_b
        # And roughly proportional — the hash should not be degenerate.
        kept = sum(decisions_a)
        assert 30 <= kept <= 90

    def test_seed_changes_which_exemplars_survive(self):
        a = TraceSampler(SamplingPolicy(head_rate=0.3, seed=0))
        b = TraceSampler(SamplingPolicy(head_rate=0.3, seed=1))
        decisions_a = [a.keep(completed_trace(i)) for i in range(200)]
        decisions_b = [b.keep(completed_trace(i)) for i in range(200)]
        assert decisions_a != decisions_b


class TestCollectorIntegration:
    def test_dropped_trace_keeps_only_its_root(self):
        collector = TraceCollector(
            sampler=TraceSampler(SamplingPolicy(head_rate=0.0))
        )
        collector.add(completed_trace(0))
        trace = collector.get(0)
        assert not trace.sampled
        assert trace.root.children == []
        # A root-only tree still satisfies the partition invariant and
        # still answers latency queries.
        trace.validate()
        assert trace.latency_us == 1.0
        assert collector.retained() == []

    def test_violating_trace_survives_zero_head_rate(self):
        collector = TraceCollector(
            sampler=TraceSampler(SamplingPolicy(head_rate=0.0))
        )
        collector.add(completed_trace(0, slo_violated=True))
        assert collector.get(0).sampled
        assert len(collector.retained()) == 1
