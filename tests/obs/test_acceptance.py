"""Issue acceptance criteria for the observability stack.

Pins the end-to-end guarantees: on the pinned cluster scenario every
request id appears in exactly one trace tree whose per-hop spans sum
*exactly* (Fraction arithmetic, no epsilon) to the recorded latency;
tail sampling retains 100% of SLO-violating requests; and in the
bursty-tenant scenario the burn-rate monitor drives at least one
``slo_burn`` autoscale-up that does not happen without it.
"""

from fractions import Fraction

import dataclasses

import pytest

from repro.cluster import pinned_cluster, simulate_cluster
from repro.cluster.scenario import bursty_obs_cluster
from repro.config import (
    AcceleratorConfig,
    DecodeConfig,
    ServingConfig,
    transformer_base,
)
from repro.decode import simulate_decode
from repro.memsys.bandwidth import ddr4_2400
from repro.obs import (
    BurnRateMonitor,
    SamplingPolicy,
    TraceCollector,
    TraceSampler,
)
from repro.serving import simulate_serving


@pytest.fixture(scope="module")
def model():
    return transformer_base()


def exact_leaf_sum(trace) -> float:
    total = sum(
        (Fraction(h.end_us) - Fraction(h.start_us) for h in trace.hops()),
        Fraction(0),
    )
    return float(total)


@pytest.fixture(scope="module")
def pinned_traced(model):
    tracer = TraceCollector()  # no sampler: every tree kept whole
    result = simulate_cluster(
        model, pinned_cluster(requests_per_tenant=60), tracer=tracer
    )
    return result, tracer


class TestPinnedClusterAcceptance:
    def test_every_request_id_in_exactly_one_tree(self, pinned_traced):
        result, tracer = pinned_traced
        record_ids = [r.request.req_id for r in result.records]
        assert len(record_ids) == len(set(record_ids))
        assert sorted(record_ids) == [t.req_id for t in tracer.traces]

    def test_statuses_and_tenants_match_records(self, pinned_traced):
        result, tracer = pinned_traced
        for record in result.records:
            trace = tracer.get(record.request.req_id)
            assert trace.status == record.status
            assert trace.tenant == record.request.tenant

    def test_hops_sum_exactly_to_recorded_latency(self, pinned_traced):
        result, tracer = pinned_traced
        checked = 0
        for record in result.records:
            trace = tracer.get(record.request.req_id)
            trace.validate()
            assert exact_leaf_sum(trace) == trace.latency_us
            if record.status == "completed":
                assert trace.root.start_us == record.request.arrival_us
                assert trace.root.end_us == record.completed_us
                assert trace.latency_us == record.latency_us
                checked += 1
        assert checked > 0

    def test_violation_flag_mirrors_attainment(self, pinned_traced):
        result, tracer = pinned_traced
        for record in result.records:
            if record.status != "completed":
                continue
            trace = tracer.get(record.request.req_id)
            assert trace.attrs["slo_violated"] == (not record.attained)


class TestServingExactPartition:
    def test_faulty_memsys_run_partitions_exactly(self, model):
        acc = AcceleratorConfig(abft_protected=True)
        serving = ServingConfig(
            num_requests=80, max_len=64, batch_fault_rate=0.08,
            max_retries=2, queue_timeout_us=60_000.0,
            memory=ddr4_2400(), seed=0,
        )
        tracer = TraceCollector()
        result = simulate_serving(model, acc, serving, tracer=tracer)
        assert len(tracer) == len(result.records)
        kinds = set()
        for record in result.records:
            trace = tracer.get(record.request.req_id)
            trace.validate()
            assert exact_leaf_sum(trace) == trace.latency_us
            kinds.update(h.kind for h in trace.hops())
        # The interesting hops all appear in this configuration.
        assert {"queue_wait", "compute", "memsys_stall"} <= kinds
        retried = [
            t for t in tracer.traces if t.attrs.get("retries", 0) > 0
        ]
        assert retried, "fault rate should have forced at least one retry"


class TestDecodeExactPartition:
    def test_streams_partition_exactly(self, model):
        acc = AcceleratorConfig()
        tracer = TraceCollector()
        result = simulate_decode(
            model, acc, DecodeConfig(num_streams=24, seed=0),
            tracer=tracer,
        )
        assert len(tracer) == len(result.records)
        for record in result.records:
            trace = tracer.get(record.stream.stream_id)
            trace.validate()
            assert exact_leaf_sum(trace) == trace.latency_us
            if record.status == "completed":
                assert trace.root.end_us == record.completed_us


class TestBurstyAlertAutoscale:
    @pytest.fixture(scope="class")
    def bursty_run(self, model):
        monitor = BurnRateMonitor()
        tracer = TraceCollector(
            sampler=TraceSampler(SamplingPolicy(head_rate=0.0))
        )
        result = simulate_cluster(
            model, bursty_obs_cluster(requests_per_tenant=200),
            tracer=tracer, monitor=monitor,
        )
        return result, monitor, tracer

    def test_alert_driven_scale_up_fires(self, bursty_run):
        result, monitor, _ = bursty_run
        assert monitor.alerts
        assert any(
            a.direction == "up" and a.reason == "slo_burn"
            for a in result.actions
        )

    def test_without_monitor_nothing_scales(self, model):
        # The scenario disables every other up-signal, so the burn
        # hook is provably the cause of the scale-up above.
        result = simulate_cluster(
            model, bursty_obs_cluster(requests_per_tenant=200)
        )
        assert not any(a.direction == "up" for a in result.actions)

    def test_all_slo_violations_retained_at_zero_head_rate(
        self, bursty_run
    ):
        _, _, tracer = bursty_run
        violating = [
            t for t in tracer.traces
            if t.attrs.get("slo_violated", False)
        ]
        assert violating
        assert all(t.sampled for t in violating)

    def test_monitored_run_is_deterministic(self, model, bursty_run):
        result_a, monitor_a, _ = bursty_run
        monitor_b = BurnRateMonitor()
        result_b = simulate_cluster(
            model, bursty_obs_cluster(requests_per_tenant=200),
            monitor=monitor_b,
        )
        assert result_a.actions == result_b.actions
        assert [dataclasses.astuple(r) for r in result_a.records] == [
            dataclasses.astuple(r) for r in result_b.records
        ]
        assert [dataclasses.astuple(a) for a in monitor_a.alerts] == [
            dataclasses.astuple(a) for a in monitor_b.alerts
        ]
        assert monitor_a.timeline == monitor_b.timeline
