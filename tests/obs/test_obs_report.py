"""Trace/SLO report rendering tests (repro.obs.report)."""

import json

from repro.obs import (
    AttemptSpan,
    BurnRateMonitor,
    hop_rollup,
    render_slo_report,
    render_trace_report,
    render_waterfall,
    request_trace,
    slo_report_data,
    slowest_traces,
    waterfall_rows,
)


def make_trace(req_id, latency, status="completed", sampled=True, **attrs):
    att = AttemptSpan(
        dispatched_us=2.0, start_us=2.0, end_us=latency,
        compute_boundary_us=latency - 1.0,
    )
    if status == "completed":
        trace = request_trace(
            req_id=req_id, status=status, arrival_us=0.0,
            attempts=(att,), tenant="a", attrs=attrs,
        )
    else:
        end_us = latency if status in ("failed", "expired") else None
        trace = request_trace(
            req_id=req_id, status=status, arrival_us=0.0,
            end_us=end_us, attrs=attrs,
        )
    if not sampled:
        trace.sampled = False
        trace.root.children.clear()
    return trace


class TestSlowest:
    def test_orders_by_latency_then_req_id(self):
        traces = [
            make_trace(1, 10.0), make_trace(2, 30.0),
            make_trace(3, 30.0), make_trace(4, 5.0),
            make_trace(5, 99.0, status="shed"),
        ]
        top = slowest_traces(traces, 3)
        assert [t.req_id for t in top] == [2, 3, 1]

    def test_only_completed_counted(self):
        traces = [make_trace(1, 99.0, status="rejected")]
        assert slowest_traces(traces, 5) == []


class TestWaterfall:
    def test_offsets_relative_to_root(self):
        trace = make_trace(7, 10.0)
        rows = waterfall_rows(trace)
        assert rows[0][0] == "req7"
        # Leaf shares are printed; internal nodes leave share blank.
        leaf_shares = [r[4] for r in rows if r[4]]
        assert leaf_shares  # at least the hops
        text = render_waterfall(trace)
        assert "req 7" in text
        assert "queue_wait" in text

    def test_zero_latency_trace_renders(self):
        text = render_waterfall(make_trace(1, 0.0, status="shed"))
        assert "shed" in text


class TestRollup:
    def test_skips_unsampled_and_non_completed(self):
        traces = [
            make_trace(1, 10.0),
            make_trace(2, 10.0, sampled=False),
            make_trace(3, 10.0, status="expired"),
        ]
        rollup = hop_rollup(traces)
        # Only trace 1 contributes: queue_wait + compute + memsys_stall.
        assert sum(e["spans"] for e in rollup.values()) == 3
        assert sum(e["total_us"] for e in rollup.values()) == 10.0

    def test_report_renders_both_sections(self):
        traces = [make_trace(i, 10.0 + i) for i in range(5)]
        text = render_trace_report(traces, top=3)
        assert "top 3 slowest requests" in text
        assert "hop rollup" in text


class TestSloReport:
    def _monitor(self, fire=True):
        monitor = BurnRateMonitor()
        for i in range(10):
            monitor.observe(i * 1000.0, "t", good=not fire)
        return monitor

    def test_no_alert_branch(self):
        text = render_slo_report(self._monitor(fire=False))
        assert "no burn-rate alerts fired" in text

    def test_alert_branch(self):
        text = render_slo_report(self._monitor())
        assert "alert firings" in text
        assert "active" in text

    def test_data_payload_is_strict_json(self):
        monitor = self._monitor()
        payload = slo_report_data(monitor)
        encoded = json.dumps(payload, allow_nan=False, sort_keys=True)
        decoded = json.loads(encoded)
        assert decoded["policy"]["objective"] == 0.95
        assert decoded["tenants"]["t"]["alerts_fired"] == 1
        assert len(decoded["timeline"]["t"]) == 10
        assert decoded["alerts"][0]["resolved_us"] is None
