"""Hypothesis fuzzing of the compress subsystem's contracts.

Three families of properties:

* **format equivalence** — the block-circulant / N:M matvec kernels
  must equal a dense matvec with the expanded matrix, in float and in
  exact INT8 integer arithmetic;
* **mask validity** — an N:M pruning keeps exactly ``n`` rows per
  ``m``-row group in every 64-column tile;
* **pricing exactness** — the compressed event-timeline scheduler and
  the compressed closed-form cycle model agree exactly across random
  model / accelerator / memory-system configurations, and a ratio-1.0
  spec degenerates bit-identically to the dense schedule.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    BlockCirculantMatrix,
    NMSparseMatrix,
    compressed_ffn_breakdown,
    compressed_mha_breakdown,
    schedule_compressed_ffn,
    schedule_compressed_mha,
)
from repro.config import (
    AcceleratorConfig,
    CompressionSpec,
    MemoryConfig,
    ModelConfig,
    circulant_spec,
    nm_sparse_spec,
)
from repro.core import schedule_ffn, schedule_mha

model_configs = st.builds(
    lambda h, ff_mult: ModelConfig(
        "fuzz", d_model=64 * h, d_ff=64 * h * ff_mult, num_heads=h,
        num_encoder_layers=1, num_decoder_layers=1, max_seq_len=64,
    ),
    h=st.integers(1, 8),
    ff_mult=st.integers(1, 8),
)

acc_configs = st.builds(
    AcceleratorConfig,
    seq_len=st.sampled_from([8, 16, 32, 64, 128]),
    sa_cols=st.just(64),
    clock_mhz=st.sampled_from([100.0, 200.0]),
    sa_drain_cycles=st.integers(0, 32),
    weight_load_cycles=st.integers(0, 64),
    pass_issue_cycles=st.integers(0, 8),
    softmax_pipeline_depth=st.integers(0, 64),
    layernorm_pipeline_depth=st.integers(0, 64),
    pass_overlap=st.booleans(),
    single_ported_buffers=st.booleans(),
    abft_protected=st.booleans(),
    abft_check_cycles=st.integers(0, 32),
)

mem_configs = st.one_of(
    st.none(),
    st.builds(
        MemoryConfig,
        bandwidth_gbps=st.sampled_from([0.5, 2.0, 19.2, float("inf")]),
        burst_efficiency=st.sampled_from([0.5, 0.8, 1.0]),
        transfer_latency_cycles=st.integers(0, 64),
        double_buffered_prefetch=st.booleans(),
    ),
)

compress_specs = st.one_of(
    st.builds(circulant_spec, st.sampled_from([1, 2, 4, 8, 16, 32, 64])),
    st.builds(
        lambda m, n: nm_sparse_spec(min(n, m), m),
        m=st.sampled_from([2, 4, 8, 16]),
        n=st.integers(1, 16),
    ),
    st.just(CompressionSpec()),
)

dense_equivalent_specs = st.sampled_from([
    CompressionSpec(), circulant_spec(1), nm_sparse_spec(4, 4),
    nm_sparse_spec(2, 2),
])


class TestCirculantEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        b=st.sampled_from([1, 2, 4, 8]),
        rb=st.integers(1, 4),
        cb=st.integers(1, 4),
        batch=st.integers(1, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_float_matvec_equals_expanded_dense(self, b, rb, cb, batch,
                                                seed):
        rng = np.random.default_rng(seed)
        mat = BlockCirculantMatrix.from_dense(
            rng.normal(size=(rb * b, cb * b)), b
        )
        x = rng.normal(size=(batch, rb * b))
        np.testing.assert_allclose(
            mat.matvec(x), x @ mat.expand(), rtol=1e-10, atol=1e-10
        )

    @settings(max_examples=40, deadline=None)
    @given(
        b=st.sampled_from([1, 2, 4, 8]),
        rb=st.integers(1, 4),
        cb=st.integers(1, 4),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_int8_matvec_is_exact(self, b, rb, cb, seed):
        # Integer seeds + integer activations: the rotation kernel and
        # the expanded dense GEMM must agree bit for bit (both run in
        # int64, like the SA's INT8 MAC chains).
        rng = np.random.default_rng(seed)
        mat = BlockCirculantMatrix.from_dense(
            rng.normal(size=(rb * b, cb * b)), b
        )
        codes, params = mat.quantize(bits=8)
        x = rng.integers(-128, 128, size=(2, rb * b))
        assert codes.seeds.dtype.kind == "i"
        np.testing.assert_array_equal(
            codes.matvec(x), x @ codes.expand()
        )

    @settings(max_examples=30, deadline=None)
    @given(
        b=st.sampled_from([2, 4, 8]),
        rb=st.integers(1, 3),
        cb=st.integers(1, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_projection_is_idempotent(self, b, rb, cb, seed):
        # An already-circulant matrix is a fixed point of the
        # least-squares projection.
        rng = np.random.default_rng(seed)
        once = BlockCirculantMatrix.from_dense(
            rng.normal(size=(rb * b, cb * b)), b
        ).expand()
        twice = BlockCirculantMatrix.from_dense(once, b).expand()
        np.testing.assert_allclose(once, twice, rtol=1e-10, atol=1e-12)


class TestNMSparseEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        m=st.sampled_from([2, 4, 8]),
        n=st.integers(1, 8),
        groups=st.integers(1, 4),
        tiles=st.integers(1, 3),
        batch=st.integers(1, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_float_matvec_equals_expanded_dense(self, m, n, groups,
                                                tiles, batch, seed):
        if n > m:
            n = m
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(groups * m, tiles * 64))
        mat = NMSparseMatrix.from_dense(dense, n, m, tile_cols=64)
        x = rng.normal(size=(batch, groups * m))
        np.testing.assert_allclose(
            mat.matvec(x), x @ mat.expand(), rtol=1e-10, atol=1e-10
        )

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.sampled_from([2, 4, 8]),
        n=st.integers(1, 8),
        groups=st.integers(1, 4),
        tiles=st.integers(1, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_int8_matvec_is_exact(self, m, n, groups, tiles, seed):
        if n > m:
            n = m
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(groups * m, tiles * 64))
        codes, _ = NMSparseMatrix.from_dense(
            dense, n, m, tile_cols=64
        ).quantize(bits=8)
        x = rng.integers(-128, 128, size=(2, groups * m))
        np.testing.assert_array_equal(codes.matvec(x), x @ codes.expand())

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.sampled_from([2, 4, 8]),
        n=st.integers(1, 8),
        groups=st.integers(1, 5),
        tiles=st.integers(1, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_mask_keeps_exactly_n_rows_per_group(self, m, n, groups,
                                                 tiles, seed):
        if n > m:
            n = m
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(groups * m, tiles * 64))
        mask = NMSparseMatrix.from_dense(dense, n, m, tile_cols=64).mask()
        assert mask.shape == dense.shape
        # Per (group, tile): each m-row group keeps exactly n rows, and
        # a kept row is kept across the whole tile's 64 columns.
        for g in range(groups):
            for t in range(tiles):
                block = mask[g * m:(g + 1) * m, t * 64:(t + 1) * 64]
                row_kept = block.any(axis=1)
                assert int(row_kept.sum()) == n
                assert (block == row_kept[:, None]).all()


class TestCompressedPricingExactness:
    @settings(max_examples=60, deadline=None)
    @given(model=model_configs, acc=acc_configs, mem=mem_configs,
           spec=compress_specs)
    def test_mha_scheduler_matches_closed_form(self, model, acc, mem,
                                               spec):
        sched = schedule_compressed_mha(model, acc, spec, mem)
        breakdown = compressed_mha_breakdown(model, acc, spec, mem)
        assert sched.total_cycles == breakdown.total_cycles
        assert sched.memsys_stall_cycles == breakdown.memsys_stall_cycles

    @settings(max_examples=60, deadline=None)
    @given(model=model_configs, acc=acc_configs, mem=mem_configs,
           spec=compress_specs)
    def test_ffn_scheduler_matches_closed_form(self, model, acc, mem,
                                               spec):
        sched = schedule_compressed_ffn(model, acc, spec, mem)
        breakdown = compressed_ffn_breakdown(model, acc, spec, mem)
        assert sched.total_cycles == breakdown.total_cycles
        assert sched.memsys_stall_cycles == breakdown.memsys_stall_cycles

    @settings(max_examples=30, deadline=None)
    @given(model=model_configs, acc=acc_configs, mem=mem_configs,
           spec=dense_equivalent_specs)
    def test_ratio_one_degenerates_bit_identically(self, model, acc,
                                                   mem, spec):
        # Every ratio-1.0 spec (dense, circulant b=1, n == m) must
        # reproduce the uncompressed schedule event for event.
        assert spec.is_dense
        for compressed_fn, dense_fn in (
            (schedule_compressed_mha, schedule_mha),
            (schedule_compressed_ffn, schedule_ffn),
        ):
            compressed = compressed_fn(model, acc, spec, mem)
            dense = dense_fn(model, acc, mem)
            assert compressed.events == dense.events
            assert compressed.total_cycles == dense.total_cycles
            assert compressed.compress_overhead_cycles == 0

    @settings(max_examples=30, deadline=None)
    @given(model=model_configs, acc=acc_configs,
           spec=compress_specs.filter(lambda s: not s.is_dense))
    def test_overhead_accounting_is_consistent(self, model, acc, spec):
        # The timeline's accumulated extra overhead equals the spec's
        # per-pass charge times the weight-pass count.
        mha = schedule_compressed_mha(model, acc, spec)
        per_pass = spec.pass_overhead_cycles(model.d_model)
        weight_passes = 4 * model.num_heads
        assert mha.compress_overhead_cycles == weight_passes * per_pass

        ffn = schedule_compressed_ffn(model, acc, spec)
        expected = (
            model.num_w1_blocks * spec.pass_overhead_cycles(model.d_model)
            + model.num_w2_blocks * spec.pass_overhead_cycles(model.d_ff)
        )
        assert ffn.compress_overhead_cycles == expected
