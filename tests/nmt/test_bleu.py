"""BLEU implementation tests against hand-computed values."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nmt import corpus_bleu, sentence_bleu, sentence_stats


class TestSentenceStats:
    def test_perfect_match(self):
        m, t, hl, rl = sentence_stats("abcd", "abcd")
        assert m == [4, 3, 2, 1]
        assert t == [4, 3, 2, 1]
        assert hl == rl == 4

    def test_clipping(self):
        # hypothesis repeats a unigram beyond reference count.
        m, t, _, _ = sentence_stats(["the"] * 5, ["the", "cat"])
        assert m[0] == 1  # clipped to reference count
        assert t[0] == 5

    def test_no_overlap(self):
        m, _, _, _ = sentence_stats("abc", "xyz")
        assert m == [0, 0, 0, 0]


class TestCorpusBleu:
    def test_perfect_translation_scores_100(self):
        refs = [["a", "b", "c", "d", "e"], ["x", "y", "z", "w", "v"]]
        assert corpus_bleu(refs, refs) == pytest.approx(100.0)

    def test_known_value(self):
        # 1 sentence: hyp "the cat sat" vs ref "the cat sat down".
        # p1=3/3, p2=2/2, p3=1/1, p4 -> 0 totals; with max_order=3:
        # geometric mean 1, brevity = exp(1 - 4/3).
        score = corpus_bleu([["the", "cat", "sat"]],
                            [["the", "cat", "sat", "down"]], max_order=3)
        assert score == pytest.approx(100 * np.exp(1 - 4 / 3), rel=1e-6)

    def test_zero_when_no_match(self):
        assert corpus_bleu([["a"]], [["b"]]) == 0.0

    def test_brevity_penalty_applied(self):
        ref = [list("abcdefgh")]
        short = [list("abcd")]
        full = [list("abcdefgh")]
        assert corpus_bleu(short, ref) < corpus_bleu(full, ref)

    def test_no_penalty_for_long_hypothesis_beyond_bp(self):
        # Longer-than-reference hypotheses get BP = 1 (only precision
        # suffers).
        ref = [list("abcd")]
        hyp = [list("abcdx")]
        score = corpus_bleu(hyp, ref, max_order=2)
        p1, p2 = 4 / 5, 3 / 4
        assert score == pytest.approx(100 * np.sqrt(p1 * p2), rel=1e-6)

    def test_corpus_level_pooling(self):
        # BLEU pools counts across sentences, not averaged per sentence.
        hyps = [["a", "b"], ["c", "d"]]
        refs = [["a", "b"], ["x", "y"]]
        score = corpus_bleu(hyps, refs, max_order=1)
        assert score == pytest.approx(100 * (2 / 4), rel=1e-6)

    def test_smoothing_avoids_zero(self):
        score = corpus_bleu([["a", "b"]], [["a", "c"]], smooth=True)
        assert score > 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ShapeError):
            corpus_bleu([["a"]], [])

    def test_empty_corpus_rejected(self):
        with pytest.raises(ShapeError):
            corpus_bleu([], [])

    def test_empty_hypothesis_scores_zero(self):
        assert corpus_bleu([[]], [["a", "b"]]) == 0.0

    def test_works_on_id_sequences(self):
        # Token type is irrelevant (strings or ints).
        assert corpus_bleu([[1, 2, 3, 4]], [[1, 2, 3, 4]]) == 100.0


class TestSentenceBleu:
    def test_smoothed_by_default(self):
        assert sentence_bleu(["a", "b"], ["a", "c"]) > 0.0

    def test_perfect(self):
        assert sentence_bleu(list("abcde"), list("abcde")) == \
            pytest.approx(100.0)
