"""Synthetic classification task tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nmt import (
    CLS_WORD,
    FLIP_WORD,
    SyntheticClassificationTask,
)


@pytest.fixture
def task():
    return SyntheticClassificationTask(words_per_group=4, min_len=4,
                                       max_len=8)


class TestLabelRule:
    def test_majority_label(self, task):
        assert task.label_of(["g0w0", "g0w1", "g1w0"]) == 0
        assert task.label_of(["g2w0", "g2w1", "g2w2", "g1w0"]) == 2

    def test_flip_selects_minority(self, task):
        tokens = ["g0w0", "g0w1", "g0w2", "g1w0", "g1w1", "g2w0", FLIP_WORD]
        # counts: g0=3, g1=2, g2=1 -> majority 0, flipped -> minority 2.
        assert task.label_of(tokens) == 2

    def test_cls_ignored(self, task):
        assert task.label_of([CLS_WORD, "g1w0", "g1w1", "g0w0"]) == 1

    def test_unknown_word_rejected(self, task):
        with pytest.raises(ShapeError):
            task.label_of(["zzz"])

    def test_empty_content_rejected(self, task):
        with pytest.raises(ShapeError):
            task.label_of([FLIP_WORD])


class TestSampling:
    def test_deterministic(self, task):
        assert task.make_dataset(20, seed=3) == task.make_dataset(20, seed=3)

    def test_labels_consistent_with_rule(self, task):
        for example in task.make_dataset(100, seed=4):
            assert task.label_of(list(example.tokens)) == example.label

    def test_all_classes_appear(self, task):
        labels = {e.label for e in task.make_dataset(200, seed=5)}
        assert labels == {0, 1, 2}

    def test_flip_examples_appear(self, task):
        data = task.make_dataset(300, seed=6)
        assert any(FLIP_WORD in e.tokens for e in data)

    def test_invalid_size(self, task):
        with pytest.raises(ShapeError):
            task.make_dataset(0)

    def test_invalid_construction(self):
        with pytest.raises(ShapeError):
            SyntheticClassificationTask(words_per_group=1)
        with pytest.raises(ShapeError):
            SyntheticClassificationTask(min_len=9, max_len=4)


class TestEncoding:
    def test_cls_at_position_zero(self, task):
        data = task.make_dataset(5, seed=7)
        ids, lengths, labels = task.encode_batch(data)
        assert np.all(ids[:, 0] == task.vocab.id(CLS_WORD))
        assert lengths.min() >= 2
        assert labels.shape == (5,)

    def test_padding(self, task):
        data = task.make_dataset(10, seed=8)
        ids, lengths, _ = task.encode_batch(data)
        for i, length in enumerate(lengths):
            assert np.all(ids[i, length:] == task.vocab.pad_id)

    def test_empty_batch_rejected(self, task):
        with pytest.raises(ShapeError):
            task.encode_batch([])


class TestTraining:
    def test_classifier_learns_above_chance(self, task):
        from repro.config import ModelConfig
        from repro.nmt import accuracy, train_classifier
        from repro.transformer import EncoderOnlyClassifier

        config = ModelConfig(
            "enc", d_model=64, d_ff=256, num_heads=1,
            num_encoder_layers=1, num_decoder_layers=0,
            max_seq_len=16, dropout=0.0,
        )
        model = EncoderOnlyClassifier(
            config, len(task.vocab), task.num_classes,
            rng=np.random.default_rng(0),
        )
        train = task.make_dataset(400, seed=1)
        test = task.make_dataset(100, seed=2)
        losses = train_classifier(model, task, train, epochs=5,
                                  batch_size=32, lr=2e-3, seed=0)
        assert np.mean(losses[-5:]) < np.mean(losses[:5])
        assert accuracy(model, task, test) > 0.5   # chance = 1/3

    def test_accuracy_empty_rejected(self, task):
        from repro.nmt import accuracy

        with pytest.raises(ShapeError):
            accuracy(None, task, [])
