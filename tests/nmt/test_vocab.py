"""Vocabulary tests."""

import pytest

from repro.errors import ShapeError
from repro.nmt import Vocab


class TestVocab:
    def setup_method(self):
        self.vocab = Vocab(["alpha", "beta", "gamma"])

    def test_special_ids_reserved(self):
        assert self.vocab.pad_id == 0
        assert self.vocab.bos_id == 1
        assert self.vocab.eos_id == 2
        assert self.vocab.unk_id == 3

    def test_len_includes_specials(self):
        assert len(self.vocab) == 7

    def test_encode_decode_roundtrip(self):
        words = ["beta", "alpha", "gamma"]
        assert self.vocab.decode(self.vocab.encode(words)) == words

    def test_unknown_maps_to_unk(self):
        assert self.vocab.encode(["nope"]) == [self.vocab.unk_id]

    def test_decode_strips_specials_by_default(self):
        ids = [self.vocab.bos_id, 4, self.vocab.eos_id, self.vocab.pad_id]
        assert self.vocab.decode(ids) == ["alpha"]

    def test_decode_keeps_specials_on_request(self):
        ids = [self.vocab.bos_id, 4]
        assert self.vocab.decode(ids, strip_special=False) == ["<bos>", "alpha"]

    def test_contains(self):
        assert "alpha" in self.vocab
        assert "nope" not in self.vocab

    def test_duplicate_word_rejected(self):
        with pytest.raises(ShapeError):
            Vocab(["a", "a"])

    def test_out_of_range_id_rejected(self):
        with pytest.raises(ShapeError):
            self.vocab.decode([99])
        with pytest.raises(ShapeError):
            self.vocab.word(99)

    def test_id_lookup(self):
        assert self.vocab.id("alpha") == 4
        with pytest.raises(ShapeError):
            self.vocab.id("nope")
