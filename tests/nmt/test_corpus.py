"""Synthetic translation task tests: the ground-truth rules themselves."""

import pytest

from repro.errors import ShapeError
from repro.nmt import MARKER_WORD, SyntheticTranslationTask


class TestTranslationRules:
    def setup_method(self):
        self.task = SyntheticTranslationTask(num_words=8)

    def test_cipher_and_reversal(self):
        out = self.task.translate(["s01", "s02", "s03"])
        assert out == ["t03", "t02", "t01"]

    def test_marker_mutates_following_word(self):
        out = self.task.translate(["s01", MARKER_WORD, "s02"])
        # s02 follows the marker -> alternate form t02x; order reversed.
        assert out == ["t02x", "dop", "t01"]

    def test_marker_affects_only_next_word(self):
        out = self.task.translate([MARKER_WORD, "s02", "s03"])
        assert out == ["t03", "t02x", "dop"]

    def test_double_marker(self):
        out = self.task.translate(["s00", MARKER_WORD, "s01", MARKER_WORD, "s02"])
        assert out == ["t02x", "dop", "t01x", "dop", "t00"]

    def test_unknown_word_rejected(self):
        with pytest.raises(ShapeError):
            self.task.translate(["zzz"])

    def test_out_of_lexicon_rejected(self):
        with pytest.raises(ShapeError):
            self.task.translate(["s99"])

    def test_translation_preserves_length(self):
        src = ["s01", MARKER_WORD, "s02", "s03"]
        assert len(self.task.translate(src)) == len(src)


class TestSampling:
    def setup_method(self):
        self.task = SyntheticTranslationTask(num_words=8, min_len=3, max_len=6)

    def test_deterministic_given_seed(self):
        a = self.task.make_corpus(20, seed=5)
        b = self.task.make_corpus(20, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = self.task.make_corpus(20, seed=1)
        b = self.task.make_corpus(20, seed=2)
        assert a != b

    def test_lengths_in_range(self):
        for pair in self.task.make_corpus(50, seed=0):
            assert 3 <= len(pair.source) <= 6 + 2  # markers may extend

    def test_pairs_consistent_with_rules(self):
        for pair in self.task.make_corpus(50, seed=3):
            assert tuple(self.task.translate(list(pair.source))) == pair.target

    def test_no_trailing_marker(self):
        for pair in self.task.make_corpus(100, seed=4):
            assert pair.source[-1] != MARKER_WORD

    def test_markers_do_appear(self):
        corpus = self.task.make_corpus(200, seed=6)
        assert any(MARKER_WORD in p.source for p in corpus)

    def test_splits_disjoint_and_sized(self):
        train, valid, test = self.task.splits(train=30, valid=10, test=5,
                                              seed=0)
        assert len(train) == 30 and len(valid) == 10 and len(test) == 5

    def test_all_source_words_in_vocab(self):
        for pair in self.task.make_corpus(50, seed=7):
            for word in pair.source:
                assert word in self.task.src_vocab
            for word in pair.target:
                assert word in self.task.tgt_vocab

    def test_invalid_construction(self):
        with pytest.raises(ShapeError):
            SyntheticTranslationTask(num_words=2)
        with pytest.raises(ShapeError):
            SyntheticTranslationTask(min_len=8, max_len=4)
        with pytest.raises(ShapeError):
            self.task.make_corpus(0)
