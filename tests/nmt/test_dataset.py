"""Batching / padding tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nmt import SyntheticTranslationTask, encode_pairs, iter_batches
from repro.nmt.corpus import SentencePair


@pytest.fixture
def task():
    return SyntheticTranslationTask(num_words=8, min_len=3, max_len=6)


@pytest.fixture
def pairs(task):
    return task.make_corpus(10, seed=0)


class TestEncodePairs:
    def test_padding_to_longest(self, task):
        pairs = [
            SentencePair(("s01", "s02"), ("t02", "t01")),
            SentencePair(("s01", "s02", "s03"), ("t03", "t02", "t01")),
        ]
        batch = encode_pairs(pairs, task.src_vocab, task.tgt_vocab)
        assert batch.src.shape == (2, 3)
        assert batch.src[0, 2] == task.src_vocab.pad_id

    def test_bos_eos_placement(self, task):
        pairs = [SentencePair(("s01",), ("t01",))]
        batch = encode_pairs(pairs, task.src_vocab, task.tgt_vocab)
        assert batch.tgt_in[0, 0] == task.tgt_vocab.bos_id
        assert batch.tgt_out[0, -1] == task.tgt_vocab.eos_id

    def test_teacher_forcing_alignment(self, task, pairs):
        batch = encode_pairs(pairs, task.src_vocab, task.tgt_vocab)
        # tgt_in shifted right by one equals tgt_out shifted left, on the
        # overlap (classic teacher forcing).
        for i in range(batch.size):
            n = batch.tgt_lengths[i] - 1
            assert np.array_equal(
                batch.tgt_in[i, 1:n + 1], batch.tgt_out[i, :n]
            )

    def test_lengths_recorded(self, task):
        pairs = [
            SentencePair(("s01", "s02"), ("t02", "t01")),
            SentencePair(("s03",), ("t03",)),
        ]
        batch = encode_pairs(pairs, task.src_vocab, task.tgt_vocab)
        assert batch.src_lengths.tolist() == [2, 1]
        assert batch.tgt_lengths.tolist() == [3, 2]  # +1 for EOS

    def test_empty_rejected(self, task):
        with pytest.raises(ShapeError):
            encode_pairs([], task.src_vocab, task.tgt_vocab)


class TestIterBatches:
    def test_covers_all_pairs(self, task, pairs):
        total = sum(
            b.size for b in iter_batches(
                pairs, task.src_vocab, task.tgt_vocab, batch_size=3
            )
        )
        assert total == len(pairs)

    def test_batch_size_respected(self, task, pairs):
        sizes = [
            b.size for b in iter_batches(
                pairs, task.src_vocab, task.tgt_vocab, batch_size=4
            )
        ]
        assert sizes == [4, 4, 2]

    def test_shuffle_changes_order(self, task, pairs):
        fixed = list(iter_batches(pairs, task.src_vocab, task.tgt_vocab, 10))
        shuffled = list(iter_batches(
            pairs, task.src_vocab, task.tgt_vocab, 10,
            rng=np.random.default_rng(0),
        ))
        assert not np.array_equal(fixed[0].src, shuffled[0].src)

    def test_invalid_batch_size(self, task, pairs):
        with pytest.raises(ShapeError):
            list(iter_batches(pairs, task.src_vocab, task.tgt_vocab, 0))
