"""Trainer / evaluation tests, including the session-trained model."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.errors import TrainingError
from repro.nmt import (
    default_nmt_config,
    evaluate_bleu,
    exact_match_rate,
    train_model,
)
from repro.transformer import Transformer


class TestTrainingLoop:
    def test_loss_decreases(self, nmt_task):
        rng = np.random.default_rng(1)
        config = ModelConfig(
            "t", d_model=64, d_ff=128, num_heads=1,
            num_encoder_layers=1, num_decoder_layers=1,
            max_seq_len=16, dropout=0.0,
        )
        model = Transformer(
            config, len(nmt_task.src_vocab), len(nmt_task.tgt_vocab), rng=rng
        )
        pairs = nmt_task.make_corpus(96, seed=2)
        log = train_model(model, nmt_task, pairs, epochs=3, batch_size=32,
                          warmup=20, seed=0)
        first = np.mean(log.losses[:3])
        last = np.mean(log.losses[-3:])
        assert last < first

    def test_model_left_in_eval_mode(self, trained_nmt):
        model, _, _ = trained_nmt
        assert not model.training

    def test_invalid_epochs(self, nmt_task):
        model = Transformer(
            default_nmt_config(), len(nmt_task.src_vocab),
            len(nmt_task.tgt_vocab), rng=np.random.default_rng(0),
        )
        with pytest.raises(TrainingError):
            train_model(model, nmt_task, nmt_task.make_corpus(4), epochs=0)

    def test_log_records_rates(self, nmt_task):
        model = Transformer(
            default_nmt_config(), len(nmt_task.src_vocab),
            len(nmt_task.tgt_vocab), rng=np.random.default_rng(0),
        )
        log = train_model(model, nmt_task, nmt_task.make_corpus(32, seed=1),
                          epochs=1, batch_size=16, warmup=10)
        assert len(log.rates) == len(log.losses) == 2
        assert log.rates[1] > log.rates[0]  # still warming up


class TestEvaluation:
    def test_trained_model_beats_untrained(self, trained_nmt, nmt_task):
        model, task, test = trained_nmt
        trained_bleu = evaluate_bleu(model, task, test[:30])
        fresh = Transformer(
            default_nmt_config(), len(task.src_vocab), len(task.tgt_vocab),
            rng=np.random.default_rng(99),
        ).eval()
        fresh_bleu = evaluate_bleu(fresh, task, test[:30])
        assert trained_bleu > fresh_bleu + 10.0

    def test_trained_model_reaches_usable_bleu(self, trained_nmt):
        model, task, test = trained_nmt
        assert evaluate_bleu(model, task, test[:30]) > 20.0

    def test_exact_match_rate_bounds(self, trained_nmt):
        model, task, test = trained_nmt
        rate = exact_match_rate(model, task, test[:20])
        assert 0.0 <= rate <= 1.0

    def test_empty_pairs_rejected(self, trained_nmt):
        model, task, _ = trained_nmt
        with pytest.raises(TrainingError):
            evaluate_bleu(model, task, [])
        with pytest.raises(TrainingError):
            exact_match_rate(model, task, [])


class TestDefaultConfig:
    def test_head_width_matches_sa(self):
        config = default_nmt_config()
        assert config.head_dim == 64

    def test_follows_dff_pattern(self):
        assert default_nmt_config().follows_dff_pattern
