"""Golden functional tests: decode-step == full-sequence attention.

The decode subsystem's *cycle* models are checked elsewhere; these
tests pin the *functional* contract they price: a single-token decode
step through the fixed-point datapath produces bit-identical codes to
the same token's row of a full-sequence run, and the streamed
(online-softmax) path reproduces the batch softmax exactly.
"""

import numpy as np
import pytest

from repro.config import AcceleratorConfig
from repro.core.streaming import StreamingSoftmax
from repro.decode import kv_bytes_per_token
from repro.quant import SOFTMAX_HARDWARE, HardwareSoftmax
from repro.quant.calibration import Calibrator
from repro.quant.qmodel import QuantMHAResBlock
from repro.transformer.incremental import IncrementalDecoder
from repro.transformer.masks import causal_mask


@pytest.fixture
def quant_block(small_transformer, rng):
    """A calibrated integer MHA ResBlock with the hardware softmax."""
    block = small_transformer.decoder.layers[0].self_attn
    cal = Calibrator(bits=8)
    qb = QuantMHAResBlock(
        block, cal, "dec0.self", softmax_mode=SOFTMAX_HARDWARE
    )
    t = 12
    x = rng.normal(size=(1, t, small_transformer.config.d_model))
    qb.forward_calibrate(x, x, causal_mask(t)[None])
    cal.freeze()
    return qb, x, t


class TestDecodeStepGolden:
    def test_last_row_bit_identical_to_full_sequence(self, quant_block):
        # A decode step is the last query row against the full K/V
        # context.  Through the whole INT8 datapath — quantized GEMMs,
        # the Fig. 6 hardware softmax, requantization, LayerNorm — the
        # step must equal the full-sequence run's last row EXACTLY:
        # same codes, not merely close.
        qb, x, t = quant_block
        mask = causal_mask(t)[None]
        full = qb.forward_int8(x, x, mask)
        step = qb.forward_int8(x[:, -1:, :], x, mask[:, -1:, :])
        assert np.array_equal(full[:, -1, :], step[:, 0, :])

    def test_every_prefix_row_matches(self, quant_block):
        # The same identity at every context length 1..t (each decode
        # step of an autoregressive generation).
        qb, x, t = quant_block
        mask = causal_mask(t)[None]
        full = qb.forward_int8(x, x, mask)
        for ctx in range(1, t + 1):
            prefix = x[:, :ctx, :]
            step = qb.forward_int8(
                prefix[:, -1:, :], prefix, causal_mask(ctx)[None][:, -1:, :]
            )
            assert np.array_equal(full[:, ctx - 1, :], step[:, 0, :]), (
                f"decode step at context {ctx} diverged from the "
                f"full-sequence row"
            )


class TestStreamingSoftmaxGolden:
    def test_chunked_stream_equals_batch_softmax(self, rng):
        # The fused schedule feeds the softmax unit 64-column chunks of
        # Q K^T as they drain from the SA; the streamed result must be
        # bit-identical to the one-shot hardware softmax on the full
        # score matrix.
        s = 200
        acc = AcceleratorConfig()
        logits = rng.normal(scale=4.0, size=(64, s))
        mask = causal_mask(s)[:64, :]
        unit = StreamingSoftmax(acc, scale_divisor=8.0)
        for j in range(s):
            unit.push_column(logits[:, j], mask[:, j])
        streamed, events = unit.finalize()
        batch = HardwareSoftmax(scale_divisor=8.0)(logits, mask)
        assert np.array_equal(streamed, batch)
        assert len(events) == s

    def test_running_max_is_the_online_softmax_state(self, rng):
        # After any prefix of columns the unit's running max equals the
        # row max over exactly those columns — the m_i register the
        # fused.softmax.running_max StageBounds certify.
        s = 130
        logits = rng.normal(scale=4.0, size=(16, s))
        unit = StreamingSoftmax(AcceleratorConfig(), scale_divisor=8.0)
        for chunk_end in (64, 128, s):
            chunk_start = unit.columns_received
            for j in range(chunk_start, chunk_end):
                unit.push_column(logits[:, j])
            expect = (logits[:, :chunk_end] / 8.0).max(axis=1)
            assert np.array_equal(unit.running_max, expect)


class TestKVFootprintGolden:
    def test_incremental_cache_matches_kv_accounting(
        self, small_transformer, small_model_config, rng
    ):
        # The functional KV cache in transformer.incremental and the
        # cycle-model accounting in repro.decode must agree on bytes:
        # self-attention K/V grows by kv_bytes_per_token per step per
        # layer (cross-attention K/V is fixed at the source length).
        acc = AcceleratorConfig(act_bits=8)
        dec = IncrementalDecoder(small_transformer)
        src_len = 10
        dec.start(rng.integers(1, 30, size=src_len))
        per_token = kv_bytes_per_token(small_model_config, acc)
        layers = small_model_config.num_decoder_layers
        cross_bytes = layers * src_len * per_token
        assert dec.cache_bytes(dtype_bytes=1) == cross_bytes
        for steps in range(1, 5):
            dec.step(int(rng.integers(1, 30)))
            assert dec.cache_bytes(dtype_bytes=1) == \
                cross_bytes + layers * steps * per_token
