"""KV-cache residency model: capacity edges and conservation laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AcceleratorConfig, MemoryConfig, ModelConfig
from repro.decode import (
    KVCacheModel,
    default_kv_cache_bytes,
    kv_bytes_per_token,
)
from repro.errors import MemoryModelError


def base_model() -> ModelConfig:
    return ModelConfig(
        "base", d_model=512, d_ff=2048, num_heads=8,
        num_encoder_layers=6, num_decoder_layers=6, max_seq_len=64,
    )


def make_cache(capacity_bytes=None, mem=None, page_tokens=64):
    return KVCacheModel(
        base_model(), AcceleratorConfig(), capacity_bytes=capacity_bytes,
        mem=mem, page_tokens=page_tokens,
    )


class TestCapacityEdges:
    def test_capacity_of_exactly_one_layer_set(self):
        # The sharpest capacity edge: room for exactly one layer's K/V.
        # One stream looping over two layers then always evicts the
        # other layer's pages — every lookup after the first pass of a
        # layer misses in full.
        cache = make_cache()
        cap = cache.layer_set_bytes(256)
        cache = make_cache(capacity_bytes=cap)
        first = cache.lookup(stream=0, layer=0, context_len=256)
        assert first.misses == first.pages == 4
        # Same layer again: everything resident.
        again = cache.lookup(stream=0, layer=0, context_len=256)
        assert again.hits == again.pages
        # The second layer displaces the first entirely...
        other = cache.lookup(stream=0, layer=1, context_len=256)
        assert other.misses == other.pages
        # ...so revisiting layer 0 misses in full again.
        back = cache.lookup(stream=0, layer=0, context_len=256)
        assert back.misses == back.pages
        assert cache.evictions > 0

    def test_zero_capacity_is_always_refetch(self):
        mem = MemoryConfig(bandwidth_gbps=10.0)
        cache = make_cache(capacity_bytes=0, mem=mem)
        for _ in range(3):
            look = cache.lookup(stream=0, layer=0, context_len=128)
            assert look.hits == 0
            assert look.misses == look.pages
            assert look.refetch_cycles > 0
        assert cache.hit_rate == 0.0
        assert cache.used_bytes == 0
        # populate() is a no-op without capacity.
        cache.populate(stream=0, layer=0, context_len=128)
        assert cache.lookup(0, 0, 128).hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(MemoryModelError):
            make_cache(capacity_bytes=-1)

    def test_default_capacity_holds_a_working_set(self):
        cache = make_cache()  # Table II BRAM budget (~2 MiB at base)
        assert cache.capacity_bytes == default_kv_cache_bytes(
            base_model(), AcceleratorConfig()
        )
        cache.populate(stream=0, layer=0, context_len=256)
        look = cache.lookup(stream=0, layer=0, context_len=256)
        assert look.hits == look.pages


class TestConservation:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(
            st.integers(0, 3),      # stream
            st.integers(0, 5),      # layer
            st.integers(1, 512),    # context_len
        ),
        min_size=1, max_size=40,
    ), st.sampled_from([0, 64 * 1024, None]))
    def test_hits_plus_misses_equals_lookups(self, steps, capacity):
        cache = make_cache(capacity_bytes=capacity)
        total_pages = 0
        for stream, layer, context in steps:
            look = cache.lookup(stream, layer, context)
            assert look.hits + look.misses == look.pages
            assert look.missed_bytes == look.misses * cache.page_bytes
            total_pages += look.pages
        assert cache.hits + cache.misses == cache.lookups == total_pages

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 512), st.integers(1, 128))
    def test_layer_set_bytes_matches_page_math(self, context, page_tokens):
        cache = make_cache(page_tokens=page_tokens)
        pages = -(-context // page_tokens)
        assert cache.layer_set_bytes(context) == pages * page_tokens * \
            kv_bytes_per_token(base_model(), AcceleratorConfig())


class TestStreamLifecycle:
    def test_populate_seeds_residency_without_stats(self):
        cache = make_cache()
        cache.populate(stream=0, layer=0, context_len=128)
        assert cache.lookups == cache.hits == cache.misses == 0
        look = cache.lookup(stream=0, layer=0, context_len=128)
        assert look.hits == look.pages

    def test_evict_stream_frees_only_that_stream(self):
        cache = make_cache()
        cache.populate(stream=0, layer=0, context_len=128)
        cache.populate(stream=1, layer=0, context_len=128)
        used = cache.used_bytes
        cache.evict_stream(0)
        assert cache.used_bytes == used // 2
        assert cache.lookup(1, 0, 128).hits == 2   # stream 1 intact
        assert cache.lookup(0, 0, 128).misses == 2  # stream 0 gone

    def test_refetch_free_without_memory_system(self):
        cache = make_cache(capacity_bytes=0, mem=None)
        look = cache.lookup(0, 0, 256)
        assert look.misses == look.pages
        assert look.refetch_cycles == 0
