"""Fused-attention schedule vs closed-form model: exact agreement.

The fused online-softmax prefill schedule tiles ``s >> 64`` rows
through the SA without materializing the score matrix; its closed-form
twin must reproduce the event timeline's totals *exactly* (the SCH004
conservation discipline), for every sequence length, accelerator knob
and memory system — not just the verified grid.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AcceleratorConfig, MemoryConfig, ModelConfig
from repro.core import schedule_mha
from repro.decode import (
    fused_mha_breakdown,
    fused_mha_macs,
    schedule_fused_mha,
)
from repro.statcheck import lint_schedule

model_configs = st.builds(
    lambda h, ff_mult: ModelConfig(
        "fuzz", d_model=64 * h, d_ff=64 * h * ff_mult, num_heads=h,
        num_encoder_layers=1, num_decoder_layers=1, max_seq_len=64,
    ),
    h=st.integers(1, 8),
    ff_mult=st.integers(1, 4),
)

acc_configs = st.builds(
    AcceleratorConfig,
    seq_len=st.sampled_from([16, 32, 64, 128]),
    sa_cols=st.just(64),
    clock_mhz=st.just(200.0),
    sa_drain_cycles=st.integers(0, 32),
    weight_load_cycles=st.sampled_from([0, 8, 64]),
    pass_issue_cycles=st.integers(0, 8),
    softmax_pipeline_depth=st.integers(0, 64),
    layernorm_pipeline_depth=st.integers(0, 64),
    pass_overlap=st.booleans(),
    single_ported_buffers=st.booleans(),
    abft_protected=st.booleans(),
    abft_check_cycles=st.integers(0, 32),
)

memories = st.sampled_from([
    None,
    MemoryConfig(bandwidth_gbps=2.0),
    MemoryConfig(bandwidth_gbps=10.0),
    MemoryConfig(bandwidth_gbps=30.0, double_buffered_prefetch=False),
])


class TestFusedAgreement:
    @settings(max_examples=80, deadline=None)
    @given(model=model_configs, acc=acc_configs, mem=memories,
           s=st.integers(65, 512))
    def test_timeline_matches_closed_form_exactly(
        self, model, acc, mem, s
    ):
        result = schedule_fused_mha(model, acc, s, mem)
        breakdown = fused_mha_breakdown(model, acc, s, mem)
        assert result.total_cycles == breakdown.total_cycles
        assert result.memsys_stall_cycles == breakdown.memsys_stall_cycles
        assert result.ideal_sa_cycles == breakdown.ideal_cycles

    @settings(max_examples=25, deadline=None)
    @given(model=model_configs, acc=acc_configs, s=st.integers(65, 300))
    def test_timeline_is_lint_clean(self, model, acc, s):
        result = schedule_fused_mha(model, acc, s)
        assert lint_schedule(result, fused_mha_breakdown(model, acc, s)) \
            == []

    def test_degenerates_to_base_mha_at_one_tile(self):
        # s == seq_len means one row tile: the fused schedule IS the
        # Algorithm 1 MHA schedule, event for event.
        model = ModelConfig(
            "base", d_model=512, d_ff=2048, num_heads=8,
            num_encoder_layers=6, num_decoder_layers=6, max_seq_len=64,
        )
        acc = AcceleratorConfig()
        fused = schedule_fused_mha(model, acc, acc.seq_len)
        base = schedule_mha(model, acc)
        assert fused.total_cycles == base.total_cycles == 21_578
        assert fused.ideal_sa_cycles == base.ideal_sa_cycles

    def test_pinned_prefill_total(self):
        # The SCH005-pinned fused point (also in benchmarks/baseline).
        model = ModelConfig(
            "base", d_model=512, d_ff=2048, num_heads=8,
            num_encoder_layers=6, num_decoder_layers=6, max_seq_len=64,
        )
        result = schedule_fused_mha(model, AcceleratorConfig(), 512)
        assert result.total_cycles == 312_538

    def test_tiling_adds_no_arithmetic(self):
        model = ModelConfig(
            "base", d_model=512, d_ff=2048, num_heads=8,
            num_encoder_layers=6, num_decoder_layers=6, max_seq_len=64,
        )
        assert fused_mha_macs(model, 512) == model.mha_macs(512)
