"""Per-token decode-step schedule: agreement, pinned totals, padding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AcceleratorConfig, MemoryConfig, ModelConfig
from repro.core import schedule_mha
from repro.decode import (
    decode_step_breakdown,
    decode_step_macs,
    schedule_decode_step,
)
from repro.statcheck import lint_schedule


def base_model() -> ModelConfig:
    return ModelConfig(
        "base", d_model=512, d_ff=2048, num_heads=8,
        num_encoder_layers=6, num_decoder_layers=6, max_seq_len=64,
    )


model_configs = st.builds(
    lambda h, ff_mult: ModelConfig(
        "fuzz", d_model=64 * h, d_ff=64 * h * ff_mult, num_heads=h,
        num_encoder_layers=1, num_decoder_layers=1, max_seq_len=64,
    ),
    h=st.integers(1, 8),
    ff_mult=st.integers(1, 4),
)

acc_configs = st.builds(
    AcceleratorConfig,
    seq_len=st.sampled_from([16, 32, 64, 128]),
    sa_cols=st.just(64),
    sa_drain_cycles=st.integers(0, 32),
    weight_load_cycles=st.sampled_from([0, 8, 64]),
    pass_issue_cycles=st.integers(0, 8),
    softmax_pipeline_depth=st.integers(0, 64),
    layernorm_pipeline_depth=st.integers(0, 64),
    pass_overlap=st.booleans(),
    single_ported_buffers=st.booleans(),
    abft_protected=st.booleans(),
    abft_check_cycles=st.integers(0, 32),
)

memories = st.sampled_from([
    None,
    MemoryConfig(bandwidth_gbps=2.0),
    MemoryConfig(bandwidth_gbps=30.0, double_buffered_prefetch=False),
])


class TestDecodeStepAgreement:
    @settings(max_examples=80, deadline=None)
    @given(model=model_configs, acc=acc_configs, mem=memories,
           t=st.integers(1, 2048), new_kv=st.booleans())
    def test_timeline_matches_closed_form_exactly(
        self, model, acc, mem, t, new_kv
    ):
        result = schedule_decode_step(model, acc, t, mem, new_kv=new_kv)
        breakdown = decode_step_breakdown(
            model, acc, t, mem, new_kv=new_kv
        )
        assert result.total_cycles == breakdown.total_cycles
        assert result.memsys_stall_cycles == breakdown.memsys_stall_cycles
        assert result.ideal_sa_cycles == breakdown.ideal_cycles

    @settings(max_examples=25, deadline=None)
    @given(model=model_configs, acc=acc_configs,
           t=st.integers(1, 300), new_kv=st.booleans())
    def test_timeline_is_lint_clean(self, model, acc, t, new_kv):
        result = schedule_decode_step(model, acc, t, new_kv=new_kv)
        breakdown = decode_step_breakdown(model, acc, t, new_kv=new_kv)
        assert lint_schedule(result, breakdown) == []


class TestDecodeStepStructure:
    def test_pinned_step_total_matches_base_mha(self):
        # At context 64 with fresh K/V the step runs the same pass
        # sequence as the full-tile MHA schedule (one row of useful
        # work, 63 of padding — the latency is identical).
        result = schedule_decode_step(base_model(), AcceleratorConfig(), 64)
        assert result.total_cycles == \
            schedule_mha(base_model(), AcceleratorConfig()).total_cycles \
            == 21_578

    def test_cached_kv_skips_projections(self):
        acc = AcceleratorConfig()
        fresh = schedule_decode_step(base_model(), acc, 64, new_kv=True)
        cached = schedule_decode_step(base_model(), acc, 64, new_kv=False)
        assert cached.total_cycles < fresh.total_cycles
        assert decode_step_macs(base_model(), 64, new_kv=False) < \
            decode_step_macs(base_model(), 64, new_kv=True)

    def test_cost_grows_with_context(self):
        acc = AcceleratorConfig()
        totals = [
            decode_step_breakdown(base_model(), acc, t).total_cycles
            for t in (32, 64, 256, 1024)
        ]
        assert totals == sorted(totals)
        assert totals[0] < totals[-1]

    def test_padding_waste_split(self):
        # One useful query row against 64 streamed rows: the effective
        # utilization collapses while the streamed number stays near
        # the full-tile schedule's — the gap IS the padding waste.
        result = schedule_decode_step(base_model(), AcceleratorConfig(), 64)
        full = schedule_mha(base_model(), AcceleratorConfig())
        assert result.padded_sa_utilization == full.padded_sa_utilization
        assert result.sa_utilization < full.sa_utilization / 16
        assert 0.0 < result.sa_utilization < result.padded_sa_utilization

    def test_full_tile_has_no_padding_gap(self):
        full = schedule_mha(base_model(), AcceleratorConfig())
        # Full 64-row tiles: every streamed cycle feeds useful MACs on
        # the projection passes; effective tracks streamed closely.
        assert full.sa_utilization > 0.5 * full.padded_sa_utilization
