"""Mixed prefill/decode serving simulator: determinism, policies, spans."""

import dataclasses
import json
from fnmatch import fnmatch

from repro.config import AcceleratorConfig, DecodeConfig, MemoryConfig, ModelConfig
from repro.core.trace import KNOWN_TRACK_PATTERNS
from repro.decode import simulate_decode
from repro.statcheck import lint_spans
from repro.telemetry import MetricsRegistry, to_json


def base_model() -> ModelConfig:
    return ModelConfig(
        "base", d_model=512, d_ff=2048, num_heads=8,
        num_encoder_layers=6, num_decoder_layers=6, max_seq_len=64,
    )


def loaded_config(**overrides) -> DecodeConfig:
    base = dict(
        arrival_rate_rps=400.0,
        num_streams=10,
        prefill_len_min=96,
        prefill_len_max=256,
        decode_tokens_min=8,
        decode_tokens_max=24,
        kv_capacity_bytes=256 * 1024,
        memory=MemoryConfig(bandwidth_gbps=10.0),
        seed=0,
    )
    base.update(overrides)
    return DecodeConfig(**base)


class TestDeterminism:
    def test_identical_runs_identical_metrics(self):
        acc = AcceleratorConfig()
        a = simulate_decode(base_model(), acc, loaded_config())
        b = simulate_decode(base_model(), acc, loaded_config())
        assert a.metrics == b.metrics
        assert [dataclasses.astuple(s) for s in a.spans] == \
            [dataclasses.astuple(s) for s in b.spans]

    def test_seed_changes_the_run(self):
        acc = AcceleratorConfig()
        a = simulate_decode(base_model(), acc, loaded_config(seed=0))
        b = simulate_decode(base_model(), acc, loaded_config(seed=7))
        assert a.metrics != b.metrics


class TestPolicies:
    def test_prefill_chunking_protects_ttft(self):
        acc = AcceleratorConfig()
        prio = simulate_decode(
            base_model(), acc, loaded_config(policy="decode_priority")
        ).metrics
        chunk = simulate_decode(
            base_model(), acc, loaded_config(policy="prefill_chunk")
        ).metrics
        # Chunked prefills interleave with decode, so queued prompts
        # start (and finish) dramatically earlier under load.
        assert chunk.prefill_p99_us < prio.prefill_p99_us
        assert chunk.prefill_chunks > prio.prefill_chunks
        # Both complete every stream and emit every token.
        assert prio.completed == chunk.completed == 10
        assert prio.decoded_tokens == chunk.decoded_tokens

    def test_queue_pressure_rejects_streams(self):
        cfg = loaded_config(
            num_streams=16, queue_capacity=1, arrival_rate_rps=100000.0
        )
        result = simulate_decode(base_model(), AcceleratorConfig(), cfg)
        assert result.metrics.rejected > 0
        assert result.metrics.offered == 16
        assert result.metrics.completed + result.metrics.rejected == 16
        rejected = [r for r in result.records if r.status == "rejected"]
        assert len(rejected) == result.metrics.rejected


class TestSpansAndTelemetry:
    def test_all_tracks_are_registered_patterns(self):
        result = simulate_decode(
            base_model(), AcceleratorConfig(), loaded_config()
        )
        tracks = {span.track for span in result.spans}
        assert tracks   # prefill + decode + device rows at minimum
        for track in tracks:
            assert any(
                fnmatch(track, pattern)
                for pattern in KNOWN_TRACK_PATTERNS
            ), f"track {track!r} not in KNOWN_TRACK_PATTERNS"

    def test_device_tracks_lint_clean(self):
        result = simulate_decode(
            base_model(), AcceleratorConfig(),
            loaded_config(num_devices=2),
        )
        assert lint_spans(result.spans) == []

    def test_registry_exports_decode_schema(self):
        registry = MetricsRegistry()
        result = simulate_decode(
            base_model(), AcceleratorConfig(), loaded_config(),
            registry=registry,
        )
        names = {m["name"] for m in to_json(registry)["metrics"]}
        assert {
            "repro_decode_streams_total",
            "repro_decode_steps_total",
            "repro_decode_tokens_total",
            "repro_decode_kv_lookups_total",
            "repro_decode_tokens_per_s",
            "repro_decode_kv_hit_rate",
            "repro_decode_prefill_latency_us",
            "repro_decode_token_latency_us",
        } <= names
        assert result.metrics.decoded_tokens > 0

    def test_trace_round_trips_as_chrome_json(self, tmp_path):
        result = simulate_decode(
            base_model(), AcceleratorConfig(), loaded_config()
        )
        path = tmp_path / "decode_trace.json"
        count = result.write_trace(str(path))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert "X" in phases and "C" in phases  # spans + KV counter
        assert payload["otherData"]["policy"] == "decode_priority"
