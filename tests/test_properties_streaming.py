"""Property tests: streaming units == batch modules past the 64-row tile.

The Q-partitioning path (``s > 64``) splits the score matrix into
64-column chunks streamed through :class:`StreamingSoftmax`, and the
post-GEMM LayerNorm consumes ``(s, 64)`` groups through
:class:`StreamingLayerNorm`.  These properties pin that the streaming
implementations are bit-identical (softmax) / numerically identical
(LayerNorm) to the batch reference modules for every seed, row count
and mask — especially beyond the single-tile ``s = 64`` geometry.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AcceleratorConfig
from repro.core import LayerNormModule, StreamingLayerNorm, StreamingSoftmax
from repro.quant import HardwareSoftmax

SEQ_LENS = st.sampled_from([8, 64, 96, 128, 192])


class TestStreamingSoftmaxProperty:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), s=SEQ_LENS,
           masked=st.booleans())
    def test_matches_batch_softmax(self, seed, s, masked):
        rng = np.random.default_rng(seed)
        config = AcceleratorConfig(seq_len=s)
        d = rng.normal(0, 8, size=(s, s))
        mask = (
            np.triu(np.ones((s, s), dtype=bool), k=1) if masked else None
        )
        unit = StreamingSoftmax(config)
        for j in range(s):
            unit.push_column(
                d[:, j], None if mask is None else mask[:, j], cycle=j
            )
        y, events = unit.finalize()
        expected = HardwareSoftmax()(d) if mask is None else (
            HardwareSoftmax()(d, mask)
        )
        assert np.array_equal(y, expected)
        assert len(events) == s

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_column_order_of_q_chunks_is_irrelevant(self, seed):
        # s = 128: the two 64-wide Q chunks arrive sequentially; the
        # streamed result must not depend on the chunk boundary.
        rng = np.random.default_rng(seed)
        s = 128
        config = AcceleratorConfig(seq_len=s)
        d = rng.normal(0, 8, size=(s, s))
        unit = StreamingSoftmax(config)
        cycle = 0
        for chunk in range(2):
            for j in range(chunk * 64, chunk * 64 + 64):
                unit.push_column(d[:, j], cycle=cycle)
                cycle += 1
        y, _ = unit.finalize()
        assert np.array_equal(y, HardwareSoftmax()(d))


class TestStreamingLayerNormProperty:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), s=SEQ_LENS,
           groups=st.integers(1, 8))
    def test_matches_batch_layernorm(self, seed, s, groups):
        rng = np.random.default_rng(seed)
        config = AcceleratorConfig(seq_len=s)
        d_model = groups * 64
        g = rng.normal(1, 2, size=(s, d_model))
        unit = StreamingLayerNorm(config, d_model)
        for i in range(groups):
            unit.push_group(g[:, i * 64:(i + 1) * 64], cycle=i)
        gamma = rng.normal(size=d_model)
        beta = rng.normal(size=d_model)
        out, events = unit.finalize(gamma, beta)
        module = LayerNormModule(config, d_model, approximate=True)
        assert np.allclose(out, module(g, gamma, beta), atol=1e-12)
        assert len(events) == d_model
