"""Hypothesis fuzzing of the memory-system cycle accounting.

Two contracts: (1) with a memory system configured, the closed-form
cycle model must equal the event-timeline scheduler — totals *and*
stall counters — for every configuration; (2) an unlimited
:class:`~repro.config.MemoryConfig` must reproduce the legacy
``mem=None`` schedules bit-for-bit, so the paper's pinned totals
survive the subsystem unchanged.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    AcceleratorConfig,
    MemoryConfig,
    ModelConfig,
    paper_accelerator,
    transformer_base,
)
from repro.core import (
    ffn_cycle_breakdown,
    mha_cycle_breakdown,
    schedule_ffn,
    schedule_mha,
)

model_configs = st.builds(
    lambda h, ff_mult: ModelConfig(
        "fuzz", d_model=64 * h, d_ff=64 * h * ff_mult, num_heads=h,
        num_encoder_layers=1, num_decoder_layers=0, max_seq_len=64,
    ),
    h=st.integers(1, 16),
    ff_mult=st.integers(1, 8),
)

acc_configs = st.builds(
    AcceleratorConfig,
    seq_len=st.sampled_from([8, 16, 32, 64, 128]),
    sa_cols=st.just(64),
    clock_mhz=st.sampled_from([100.0, 200.0, 300.0]),
    sa_drain_cycles=st.integers(0, 32),
    weight_load_cycles=st.integers(0, 64),
    pass_issue_cycles=st.integers(0, 8),
    softmax_pipeline_depth=st.integers(0, 64),
    layernorm_pipeline_depth=st.integers(0, 64),
    pass_overlap=st.booleans(),
    single_ported_buffers=st.booleans(),
    abft_protected=st.booleans(),
    abft_check_cycles=st.integers(0, 32),
)

mem_configs = st.builds(
    MemoryConfig,
    bandwidth_gbps=st.sampled_from(
        [0.5, 2.0, 8.5, 19.2, 100.0, float("inf")]
    ),
    burst_efficiency=st.sampled_from([0.5, 0.8, 1.0]),
    transfer_latency_cycles=st.integers(0, 64),
    double_buffered_prefetch=st.booleans(),
)


class TestSchedulerAnalyticAgreementWithMemsys:
    @settings(max_examples=80, deadline=None)
    @given(model=model_configs, acc=acc_configs, mem=mem_configs)
    def test_mha_always_matches(self, model, acc, mem):
        sched = schedule_mha(model, acc, mem=mem)
        breakdown = mha_cycle_breakdown(model, acc, mem)
        assert sched.total_cycles == breakdown.total_cycles
        assert sched.memsys_stall_cycles == breakdown.memsys_stall_cycles

    @settings(max_examples=80, deadline=None)
    @given(model=model_configs, acc=acc_configs, mem=mem_configs)
    def test_ffn_always_matches(self, model, acc, mem):
        sched = schedule_ffn(model, acc, mem=mem)
        breakdown = ffn_cycle_breakdown(model, acc, mem)
        assert sched.total_cycles == breakdown.total_cycles
        assert sched.memsys_stall_cycles == breakdown.memsys_stall_cycles

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, acc=acc_configs, mem=mem_configs)
    def test_stalls_only_lengthen_the_schedule(self, model, acc, mem):
        for schedule in (schedule_mha, schedule_ffn):
            with_mem = schedule(model, acc, mem=mem)
            without = schedule(model, acc)
            assert with_mem.memsys_stall_cycles >= 0
            assert (with_mem.total_cycles
                    >= without.total_cycles)

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, acc=acc_configs, mem=mem_configs)
    def test_double_buffering_never_loses(self, model, acc, mem):
        db = mem.with_updates(double_buffered_prefetch=True)
        serial = mem.with_updates(double_buffered_prefetch=False)
        for schedule in (schedule_mha, schedule_ffn):
            assert (schedule(model, acc, mem=db).total_cycles
                    <= schedule(model, acc, mem=serial).total_cycles)


class TestUnlimitedLinkEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, acc=acc_configs)
    def test_unlimited_mem_is_bitwise_identical(self, model, acc):
        free = MemoryConfig()
        for schedule in (schedule_mha, schedule_ffn):
            legacy = schedule(model, acc)
            with_mem = schedule(model, acc, mem=free)
            assert with_mem.total_cycles == legacy.total_cycles
            assert with_mem.memsys_stall_cycles == 0
            assert with_mem.events == legacy.events

    def test_paper_point_totals_survive(self):
        """The pinned seed totals with an explicit unlimited link."""
        model, acc = transformer_base(), paper_accelerator()
        free = MemoryConfig()
        assert schedule_mha(model, acc, mem=free).total_cycles == 21578
        assert schedule_ffn(model, acc, mem=free).total_cycles == 39052
        wl8 = acc.with_updates(weight_load_cycles=8)
        assert schedule_mha(model, wl8, mem=free).total_cycles == 21834
        assert schedule_ffn(model, wl8, mem=free).total_cycles == 39372
        wl64 = acc.with_updates(weight_load_cycles=64)
        assert schedule_mha(model, wl64, mem=free).total_cycles == 23626
        assert schedule_ffn(model, wl64, mem=free).total_cycles == 41612
