"""CompressionSpec validation, pricing helpers and degeneracy flags."""

import pytest

from repro.config import (
    CompressionSpec,
    PoolConfig,
    ServingConfig,
    circulant_spec,
    nm_sparse_spec,
)
from repro.errors import ConfigError


class TestValidation:
    def test_dense_default(self):
        spec = CompressionSpec()
        assert spec.is_dense
        assert spec.label == "dense"
        assert spec.compression_ratio == 1.0

    @pytest.mark.parametrize("b", [1, 2, 4, 8, 16, 32, 64])
    def test_valid_circulant_blocks(self, b):
        assert circulant_spec(b).block_size == b

    @pytest.mark.parametrize("b", [0, -4, 3, 5, 48, 128])
    def test_invalid_circulant_blocks(self, b):
        with pytest.raises(ConfigError):
            circulant_spec(b)

    @pytest.mark.parametrize("n,m", [(2, 4), (1, 4), (4, 4), (3, 8),
                                     (1, 64)])
    def test_valid_nm_shapes(self, n, m):
        spec = nm_sparse_spec(n, m)
        assert (spec.n, spec.m) == (n, m)

    @pytest.mark.parametrize("n,m", [(0, 4), (5, 4), (1, 3), (2, 0),
                                     (1, 128)])
    def test_invalid_nm_shapes(self, n, m):
        with pytest.raises(ConfigError):
            nm_sparse_spec(n, m)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            CompressionSpec(scheme="pruned")

    def test_depth_must_divide(self):
        with pytest.raises(ConfigError):
            circulant_spec(16).effective_depth(24)
        with pytest.raises(ConfigError):
            nm_sparse_spec(2, 8).pass_overhead_cycles(12)


class TestDegeneracy:
    def test_circulant_block_one_is_dense(self):
        spec = circulant_spec(1)
        assert spec.is_dense
        assert spec.compression_ratio == 1.0
        assert spec.pass_overhead_cycles(512) == 0
        assert spec.weight_tile_bytes(512, 64, 8) == 512 * 64

    def test_nm_full_is_dense(self):
        spec = nm_sparse_spec(4, 4)
        assert spec.is_dense
        assert spec.effective_depth(512) == 512
        assert spec.pass_overhead_cycles(512) == 0
        assert spec.weight_tile_bytes(512, 64, 8) == 512 * 64


class TestPricing:
    def test_circulant_effective_depth_unchanged(self):
        # The rotation unit regenerates rows: full MAC depth, fewer
        # stored bytes.
        spec = circulant_spec(8)
        assert spec.effective_depth(512) == 512
        assert spec.weight_tile_bytes(512, 64, 8) == 512 * 64 // 8
        assert spec.pass_overhead_cycles(512) == 64
        assert spec.compression_ratio == 8.0

    def test_nm_effective_depth_pruned(self):
        spec = nm_sparse_spec(2, 4)
        assert spec.effective_depth(512) == 256
        assert spec.pass_overhead_cycles(512) == 128
        assert spec.compression_ratio == 2.0

    def test_nm_tile_bytes_include_index_metadata(self):
        spec = nm_sparse_spec(2, 4)
        # 256 kept rows x 64 cols x 1 byte, plus 2 bits/kept-row x 2
        # rows over 128 groups -> 4 index bits per group.
        kept_bytes = 256 * 64
        index_bits = (512 // 4) * spec.index_bits_per_group()
        expected = kept_bytes + -(-index_bits // 8)
        assert spec.weight_tile_bytes(512, 64, 8) == expected
        assert spec.weight_bytes_ratio(512, 64, 8) > 0.5

    def test_index_bits_per_group(self):
        assert nm_sparse_spec(2, 4).index_bits_per_group() == 4
        assert nm_sparse_spec(1, 2).index_bits_per_group() == 1
        assert nm_sparse_spec(3, 8).index_bits_per_group() == 9


class TestConfigIntegration:
    def test_serving_config_carries_spec(self):
        sv = ServingConfig(compression=circulant_spec(8))
        assert sv.compression.label == "circ8"
        with pytest.raises(ConfigError):
            ServingConfig(compression="circ8")

    def test_pool_config_carries_spec(self):
        pool = PoolConfig(name="edge", kind="fpga",
                          compression=nm_sparse_spec(2, 4))
        assert pool.compression.label == "2:4"

    def test_gpu_pool_rejects_compression(self):
        with pytest.raises(ConfigError):
            PoolConfig(name="gpu", kind="gpu",
                       compression=circulant_spec(8))
