"""Compression through the serving and cluster cost models."""

import pytest

from repro.compress import schedule_compressed_ffn, schedule_compressed_mha
from repro.config import (
    AcceleratorConfig,
    CompressionSpec,
    PoolConfig,
    ServingConfig,
    circulant_spec,
    nm_sparse_spec,
    transformer_base,
)
from repro.serving import simulate_serving
from repro.serving.batching import BatchCostModel


@pytest.fixture
def paper():
    return transformer_base(), AcceleratorConfig()


class TestBatchCostModel:
    def test_compressed_cycles_match_schedules(self, paper):
        model, acc = paper
        spec = nm_sparse_spec(2, 4)
        cost = BatchCostModel(model, acc, compression=spec)
        assert cost.mha_cycles == schedule_compressed_mha(
            model, acc, spec).total_cycles
        assert cost.ffn_cycles == schedule_compressed_ffn(
            model, acc, spec).total_cycles

    def test_dense_spec_equals_no_spec(self, paper):
        model, acc = paper
        plain = BatchCostModel(model, acc)
        dense = BatchCostModel(model, acc,
                               compression=CompressionSpec())
        assert dense.mha_cycles == plain.mha_cycles
        assert dense.ffn_cycles == plain.ffn_cycles
        assert dense.run_cycles == plain.run_cycles

    def test_compressed_weight_bytes_shrink(self, paper):
        model, acc = paper
        dense_units = BatchCostModel(model, acc).block_units
        circ_units = BatchCostModel(
            model, acc, compression=circulant_spec(8)).block_units
        assert len(dense_units) == len(circ_units)
        for (_, _, dense_bytes), (_, _, circ_bytes) in zip(
                dense_units, circ_units):
            assert circ_bytes == dense_bytes // 8


class TestServingSimulation:
    def test_sparsity_raises_throughput(self, paper):
        model, acc = paper
        dense = simulate_serving(model, acc, ServingConfig())
        sparse = simulate_serving(
            model, acc, ServingConfig(compression=nm_sparse_spec(1, 4))
        )
        assert (sparse.metrics.throughput_rps
                > dense.metrics.throughput_rps)

    def test_dense_compression_spec_is_bit_identical(self, paper):
        model, acc = paper
        plain = simulate_serving(model, acc, ServingConfig())
        dense = simulate_serving(
            model, acc, ServingConfig(compression=CompressionSpec())
        )
        assert (dense.metrics.throughput_rps
                == plain.metrics.throughput_rps)
        assert (dense.metrics.latency_p99_us
                == plain.metrics.latency_p99_us)


class TestClusterIntegration:
    def test_fpga_pool_cost_model_uses_compression(self, paper):
        from repro.cluster.pools import build_cost_model

        model, acc = paper
        spec = nm_sparse_spec(2, 4)
        pool = PoolConfig(name="edge", kind="fpga", compression=spec)
        cost = build_cost_model(pool, model, acc.seq_len)
        compressed_acc = AcceleratorConfig(
            seq_len=acc.seq_len, clock_mhz=pool.clock_mhz,
            abft_protected=pool.abft_protected,
        )
        assert cost.mha_cycles == schedule_compressed_mha(
            model, compressed_acc, spec).total_cycles
