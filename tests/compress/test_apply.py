"""Projecting trained models onto compressed families (apply + quant)."""

import numpy as np
import pytest

from repro.compress import (
    RESBLOCK_WEIGHT_LEAVES,
    compress_dense,
    compress_model,
    resblock_weight_keys,
    restore_weights,
    snapshot_weights,
)
from repro.config import CompressionSpec, circulant_spec, nm_sparse_spec
from repro.errors import ConfigError


class TestResblockGrouping:
    def test_groups_cover_all_attention_and_ffn_weights(
            self, small_transformer):
        groups = resblock_weight_keys(small_transformer)
        labels = set(groups)
        assert "encoder.layer0.self_attn" in labels
        assert "encoder.layer0.ffn" in labels
        assert "decoder.layer0.cross_attn" in labels
        for block, keys in groups.items():
            assert keys, block
            for key in keys:
                assert key.rsplit(".", 2)[-2] + "." + key.rsplit(
                    ".", 1)[-1] in RESBLOCK_WEIGHT_LEAVES

    def test_embeddings_and_norms_excluded(self, small_transformer):
        groups = resblock_weight_keys(small_transformer)
        all_keys = [k for keys in groups.values() for k in keys]
        assert not any("embed" in k or "norm" in k or "bias" in k
                       for k in all_keys)


class TestCompressModel:
    def test_snapshot_restore_roundtrip(self, small_transformer):
        snapshot = snapshot_weights(small_transformer)
        before = {k: v.data.copy()
                  for k, v in small_transformer.named_parameters()}
        compress_model(small_transformer, nm_sparse_spec(1, 4))
        changed = any(
            not np.array_equal(before[k], v.data)
            for k, v in small_transformer.named_parameters()
        )
        assert changed
        restore_weights(small_transformer, snapshot)
        for k, v in small_transformer.named_parameters():
            np.testing.assert_array_equal(before[k], v.data)

    def test_projected_weights_live_in_the_family(self, small_transformer):
        spec = nm_sparse_spec(2, 4)
        groups = resblock_weight_keys(small_transformer)
        compress_model(small_transformer, spec)
        params = dict(small_transformer.named_parameters())
        for keys in groups.values():
            for key in keys:
                w = params[key].data
                # Re-projecting a projected weight is a no-op.
                np.testing.assert_allclose(
                    w, compress_dense(w, spec), rtol=1e-10, atol=1e-12
                )

    def test_block_subset_only_touches_named_blocks(self, small_transformer):
        groups = resblock_weight_keys(small_transformer)
        target = "encoder.layer0.ffn"
        before = {k: v.data.copy()
                  for k, v in small_transformer.named_parameters()}
        counts = compress_model(
            small_transformer, nm_sparse_spec(1, 4), blocks=[target]
        )
        assert set(counts) == {target}
        for block, keys in groups.items():
            for key in keys:
                same = np.array_equal(
                    before[key],
                    dict(small_transformer.named_parameters())[key].data,
                )
                assert same == (block != target)

    def test_unknown_block_raises(self, small_transformer):
        with pytest.raises(ConfigError):
            compress_model(small_transformer, circulant_spec(8),
                           blocks=["encoder.layer9.ffn"])

    def test_dense_spec_is_identity(self, small_transformer):
        before = {k: v.data.copy()
                  for k, v in small_transformer.named_parameters()}
        compress_model(small_transformer, CompressionSpec())
        for k, v in small_transformer.named_parameters():
            np.testing.assert_array_equal(before[k], v.data)


class TestCompressionTolerance:
    def test_ranks_blocks_and_restores_weights(self, small_transformer,
                                               rng):
        from repro.quant import (
            compression_tolerance,
            rank_by_sensitivity,
            surviving_blocks,
        )

        src = rng.integers(1, 30, size=(2, 12))
        tgt = rng.integers(1, 30, size=(2, 12))
        lengths = np.array([12, 9])
        before = {k: v.data.copy()
                  for k, v in small_transformer.named_parameters()}
        results = compression_tolerance(
            small_transformer, nm_sparse_spec(2, 4), src, tgt, lengths
        )
        # One result per ResBlock, model left untouched.
        assert len(results) == len(resblock_weight_keys(small_transformer))
        for k, v in small_transformer.named_parameters():
            np.testing.assert_array_equal(before[k], v.data)
        ranked = rank_by_sensitivity(results)
        assert ranked[0][1] >= ranked[-1][1]
        survivors = surviving_blocks(results, max_relative_rms=float("inf"))
        assert set(survivors) == {r.tap_group for r in results}
        assert surviving_blocks(results, max_relative_rms=-1.0) == []

    def test_dense_spec_causes_zero_perturbation(self, small_transformer,
                                                 rng):
        from repro.quant import compression_tolerance

        src = rng.integers(1, 30, size=(2, 12))
        tgt = rng.integers(1, 30, size=(2, 12))
        results = compression_tolerance(
            small_transformer, CompressionSpec(), src, tgt,
            np.array([12, 9]),
        )
        assert all(r.rms_error == 0.0 for r in results)
