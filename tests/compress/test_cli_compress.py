"""CLI tests for ``repro compress`` and ``repro profile --compression``."""

import json

from repro.cli import main


class TestCompressCommand:
    def test_default_sweep_pins_paper_totals(self, capsys):
        assert main(["compress"]) == 0
        out = capsys.readouterr().out
        assert "compression sweep" in out
        for label in ("dense", "circ8", "2:4", "1:4"):
            assert label in out
        assert "21,578" in out   # dense MHA reference
        assert "17,482" in out   # 2:4 MHA pinned total
        assert "30,860" in out   # 2:4 FFN pinned total

    def test_spec_selection_and_bandwidth(self, capsys):
        assert main(["compress", "--specs", "dense", "circ8",
                     "--bandwidth-gbps", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "circ8" in out
        assert "circ4" not in out
        assert "2 GB/s" in out

    def test_json_and_trace_artifacts(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        trace_path = tmp_path / "trace.json"
        assert main(["compress", "--specs", "dense", "2:4",
                     "--json", str(json_path),
                     "--trace-out", str(trace_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["model"] == "Transformer-base"
        labels = [p["spec"] for p in payload["points"]]
        assert labels == ["dense", "2:4"]
        assert payload["points"][1]["mha_cycles"] == 17_482
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "compress.index_overhead_cycles" in names

    def test_bad_spec_is_clean_error(self, capsys):
        assert main(["compress", "--specs", "turbo"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_memory_preset(self, capsys):
        assert main(["compress", "--specs", "dense", "circ16",
                     "--memory-preset", "lpddr4-2133"]) == 0
        assert "circ16" in capsys.readouterr().out


class TestProfileCompression:
    def test_sparse_split_and_exact_match(self, capsys):
        assert main(["profile", "--compression", "2:4"]) == 0
        out = capsys.readouterr().out
        assert "compression 2:4" in out
        assert "exact match" in out
        assert "MISMATCH" not in out
        assert "compressed split (2:4)" in out
        assert "skipped" in out

    def test_circulant_split_with_memory(self, capsys):
        assert main(["profile", "--compression", "circ8",
                     "--bandwidth-gbps", "19.2", "--block", "ffn"]) == 0
        out = capsys.readouterr().out
        assert "compressed split (circ8)" in out
        assert "exact match" in out

    def test_uncompressed_profile_has_no_split(self, capsys):
        assert main(["profile", "--block", "mha"]) == 0
        assert "compressed split" not in capsys.readouterr().out
