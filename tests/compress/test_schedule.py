"""Compressed schedule / closed-form pinned points and structure."""

import pytest

from repro.compress import (
    compressed_ffn_breakdown,
    compressed_mha_breakdown,
    schedule_compressed_ffn,
    schedule_compressed_mha,
)
from repro.config import (
    AcceleratorConfig,
    CompressionSpec,
    MemoryConfig,
    circulant_spec,
    nm_sparse_spec,
    transformer_base,
)
from repro.core import schedule_ffn, schedule_mha

#: (spec, pinned MHA total, pinned FFN total) at the paper point —
#: the same totals the SCH005 gate pins in repro.statcheck.
PAPER_POINT_TOTALS = [
    (CompressionSpec(), 21_578, 39_052),
    (circulant_spec(4), 25_674, 47_244),
    (circulant_spec(8), 23_626, 43_148),
    (nm_sparse_spec(2, 4), 17_482, 30_860),
    (nm_sparse_spec(1, 4), 13_386, 22_668),
]


@pytest.fixture
def paper():
    return transformer_base(), AcceleratorConfig()


class TestPinnedTotals:
    @pytest.mark.parametrize("spec,mha_total,ffn_total",
                             PAPER_POINT_TOTALS,
                             ids=[s.label for s, _, _ in
                                  PAPER_POINT_TOTALS])
    def test_paper_point(self, paper, spec, mha_total, ffn_total):
        model, acc = paper
        assert schedule_compressed_mha(
            model, acc, spec).total_cycles == mha_total
        assert schedule_compressed_ffn(
            model, acc, spec).total_cycles == ffn_total
        assert compressed_mha_breakdown(
            model, acc, spec).total_cycles == mha_total
        assert compressed_ffn_breakdown(
            model, acc, spec).total_cycles == ffn_total

    def test_sparsity_beats_dense_circulant_pays_setup(self, paper):
        model, acc = paper
        dense_mha = schedule_mha(model, acc).total_cycles
        assert (schedule_compressed_mha(
            model, acc, nm_sparse_spec(2, 4)).total_cycles < dense_mha)
        # With free weights circulant only adds row-generator setup;
        # its win is bytes (see footprint/memsys tests).
        assert (schedule_compressed_mha(
            model, acc, circulant_spec(8)).total_cycles > dense_mha)


class TestDenseDegeneracy:
    @pytest.mark.parametrize("spec", [
        CompressionSpec(), circulant_spec(1), nm_sparse_spec(4, 4),
    ], ids=["dense", "circ1", "4:4"])
    def test_events_bit_identical(self, paper, spec):
        model, acc = paper
        assert (schedule_compressed_mha(model, acc, spec).events
                == schedule_mha(model, acc).events)
        assert (schedule_compressed_ffn(model, acc, spec).events
                == schedule_ffn(model, acc).events)


class TestMemsysInteraction:
    def test_circulant_relieves_bandwidth_starvation(self, paper):
        # At 2 GB/s the dense schedule is weight-fetch bound; the 8x
        # smaller circulant tiles must cut the stall share enough to
        # beat dense end to end, flipping the free-weights ordering.
        model, acc = paper
        mem = MemoryConfig(bandwidth_gbps=2.0, transfer_latency_cycles=100)
        dense = schedule_ffn(model, acc, mem)
        circ = schedule_compressed_ffn(model, acc, circulant_spec(8), mem)
        assert dense.memsys_stall_cycles > 0
        assert circ.memsys_stall_cycles < dense.memsys_stall_cycles
        assert circ.total_cycles < dense.total_cycles

    def test_closed_form_matches_with_memory(self, paper):
        model, acc = paper
        for mem in (MemoryConfig(bandwidth_gbps=19.2),
                    MemoryConfig(bandwidth_gbps=2.0,
                                 transfer_latency_cycles=100),
                    MemoryConfig(bandwidth_gbps=19.2,
                                 double_buffered_prefetch=False)):
            for spec, _, _ in PAPER_POINT_TOTALS:
                sched = schedule_compressed_mha(model, acc, spec, mem)
                bd = compressed_mha_breakdown(model, acc, spec, mem)
                assert sched.total_cycles == bd.total_cycles
                assert sched.memsys_stall_cycles == bd.memsys_stall_cycles


class TestOverheadBookkeeping:
    def test_overhead_lands_in_issue_cycles(self, paper):
        # The closed form folds the per-pass compress overhead into
        # issue_cycles (no new CycleBreakdown field), keeping the
        # scheduler-event <-> breakdown-field parity REP002 checks.
        model, acc = paper
        spec = nm_sparse_spec(2, 4)
        dense_bd = compressed_mha_breakdown(model, acc, CompressionSpec())
        bd = compressed_mha_breakdown(model, acc, spec)
        sched = schedule_compressed_mha(model, acc, spec)
        assert (bd.issue_cycles - dense_bd.issue_cycles
                == sched.compress_overhead_cycles)

    def test_ideal_cycles_stay_dense(self, paper):
        # ideal_cycles is the dense MAC roofline — the denominator of
        # the speedup story stays comparable across specs.
        model, acc = paper
        dense = compressed_ffn_breakdown(model, acc, CompressionSpec())
        sparse = compressed_ffn_breakdown(model, acc, nm_sparse_spec(1, 4))
        assert sparse.ideal_cycles == dense.ideal_cycles

    def test_registry_records_compressed_schedule(self, paper):
        from repro.telemetry import MetricsRegistry

        model, acc = paper
        registry = MetricsRegistry()
        schedule_compressed_mha(model, acc, circulant_spec(8),
                                registry=registry)
        assert registry.counter(
            "repro_schedule_cycles_total").value(block="mha") > 0
