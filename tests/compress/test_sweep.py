"""Sweep measurements, telemetry recording and the trace view."""

import pytest

from repro.compress import (
    CompressPoint,
    compress_trace_spans,
    compression_sweep,
    default_sweep_specs,
    sweep_point,
)
from repro.config import (
    AcceleratorConfig,
    MemoryConfig,
    circulant_spec,
    nm_sparse_spec,
    transformer_base,
)
from repro.telemetry import MetricsRegistry


@pytest.fixture
def paper():
    return transformer_base(), AcceleratorConfig()


class TestSweepPoint:
    def test_dense_point_is_the_reference(self, paper):
        model, acc = paper
        point = sweep_point(model, acc, default_sweep_specs()[0])
        assert point.label == "dense"
        assert point.cycle_savings_frac == 0.0
        assert point.index_overhead_cycles == 0
        assert point.skipped_cycles == 0
        assert point.weight_bytes_ratio == 1.0

    def test_sparse_point_story(self, paper):
        model, acc = paper
        point = sweep_point(model, acc, nm_sparse_spec(1, 4))
        assert point.cycle_savings_frac > 0.4
        assert point.skipped_cycles > 0
        assert point.index_overhead_cycles > 0
        assert point.mha_cycles < point.dense_mha_cycles

    def test_circulant_skips_nothing(self, paper):
        model, acc = paper
        point = sweep_point(model, acc, circulant_spec(8))
        assert point.skipped_cycles == 0
        assert point.cycle_savings_frac < 0  # setup tax, free weights
        assert point.weight_bytes_ratio == pytest.approx(0.125)

    def test_as_dict_is_flat_json(self, paper):
        model, acc = paper
        d = sweep_point(model, acc, nm_sparse_spec(2, 4)).as_dict()
        assert d["spec"] == "2:4"
        assert d["scheme"] == "nm_sparse"
        assert isinstance(d["layers_resident"], int)
        assert d["bleu"] is None

    def test_stall_share_under_finite_memory(self, paper):
        model, acc = paper
        mem = MemoryConfig(bandwidth_gbps=2.0,
                           transfer_latency_cycles=100)
        dense = sweep_point(model, acc, default_sweep_specs()[0], mem)
        circ = sweep_point(model, acc, circulant_spec(8), mem)
        assert dense.stall_share > circ.stall_share
        # Bandwidth-starved, the byte win flips circulant positive.
        assert circ.cycle_savings_frac > 0


class TestCompressionSweep:
    def test_default_specs_cover_both_schemes(self):
        labels = [s.label for s in default_sweep_specs()]
        assert labels == ["dense", "circ4", "circ8", "circ16",
                          "2:4", "1:4"]

    def test_sweep_records_metrics(self, paper):
        model, acc = paper
        registry = MetricsRegistry()
        points = compression_sweep(
            model, acc,
            specs=[default_sweep_specs()[0], nm_sparse_spec(2, 4)],
            registry=registry,
        )
        assert len(points) == 2
        assert registry.counter(
            "repro_compress_points_total").value(scheme="dense") == 1
        assert registry.counter(
            "repro_compress_points_total").value(scheme="nm_sparse") == 1
        nm = points[1]
        assert registry.counter(
            "repro_compress_layer_cycles_total").value(spec="2:4") == (
                nm.mha_cycles + nm.ffn_cycles)
        assert registry.counter(
            "repro_compress_index_overhead_cycles_total"
        ).value(spec="2:4") == nm.index_overhead_cycles
        assert registry.gauge(
            "repro_compress_cycle_savings_frac").value(spec="2:4") == (
                pytest.approx(nm.cycle_savings_frac))
        assert registry.gauge(
            "repro_compress_weight_bytes_ratio").value(spec="2:4") == (
                pytest.approx(nm.weight_bytes_ratio))

    def test_compress_metric_names_match_known_patterns(self, paper):
        # Satellite contract: every repro_compress_* family the sweep
        # emits is covered by the trace-track registry, so registry
        # timeseries exported as counter tracks lint clean (REP003).
        from fnmatch import fnmatch

        from repro.core.trace import KNOWN_TRACK_PATTERNS

        model, acc = paper
        registry = MetricsRegistry()
        compression_sweep(model, acc,
                          specs=[nm_sparse_spec(2, 4)],
                          registry=registry)
        for inst in registry.instruments():
            assert any(
                fnmatch(inst.name, p) for p in KNOWN_TRACK_PATTERNS
            ), inst.name


class TestTraceView:
    def test_spans_and_counters(self, paper):
        model, acc = paper
        points = compression_sweep(
            model, acc, specs=default_sweep_specs()[:3]
        )
        spans, counters = compress_trace_spans(points, acc.clock_mhz)
        # Two spans (mha + ffn) per spec, on per-spec tracks.
        assert len(spans) == 2 * len(points)
        tracks = {s.track for s in spans}
        assert tracks == {f"compress.{p.label}" for p in points}
        # Spec rows tile the time axis without overlap.
        ordered = sorted(spans, key=lambda s: s.start_us)
        for prev, cur in zip(ordered, ordered[1:]):
            assert cur.start_us >= prev.end_us - 1e-9
        counter_names = {e["name"] for e in counters}
        assert counter_names == {
            "compress.index_overhead_cycles",
            "compress.skipped_cycles",
            "compress.weight_bytes_ratio",
        }

    def test_spans_pass_the_runtime_track_lint(self, paper):
        from repro.statcheck import lint_spans

        model, acc = paper
        points = compression_sweep(model, acc,
                                   specs=default_sweep_specs()[:2])
        spans, _ = compress_trace_spans(points, acc.clock_mhz)
        assert lint_spans(spans) == []

    def test_empty_sweep_raises(self):
        from repro.errors import ScheduleError

        with pytest.raises(ScheduleError):
            compress_trace_spans([])

    def test_point_label_property(self, paper):
        model, acc = paper
        point = sweep_point(model, acc, circulant_spec(16))
        assert isinstance(point, CompressPoint)
        assert point.label == "circ16"
