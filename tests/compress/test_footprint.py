"""Footprint accounting: bytes identities, residency, crossover."""

import pytest

from repro.compress import (
    ffn_weight_bytes,
    footprint_report,
    layer_weight_bytes,
    mha_weight_bytes,
)
from repro.config import (
    AcceleratorConfig,
    CompressionSpec,
    circulant_spec,
    nm_sparse_spec,
    transformer_base,
)


@pytest.fixture
def paper():
    return transformer_base(), AcceleratorConfig()


class TestByteIdentities:
    def test_dense_matches_model_arithmetic(self, paper):
        model, acc = paper
        dense = CompressionSpec()
        d, ff, wb = model.d_model, model.d_ff, acc.weight_bits
        assert mha_weight_bytes(model, acc, dense) == 4 * d * d * wb // 8
        assert ffn_weight_bytes(model, acc, dense) == 2 * d * ff * wb // 8
        assert layer_weight_bytes(model, acc, dense) == (
            mha_weight_bytes(model, acc, dense)
            + ffn_weight_bytes(model, acc, dense)
        )

    def test_circulant_divides_values_exactly(self, paper):
        model, acc = paper
        dense = CompressionSpec()
        for b in (2, 4, 8, 16):
            spec = circulant_spec(b)
            assert (mha_weight_bytes(model, acc, spec)
                    == mha_weight_bytes(model, acc, dense) // b)
            assert (ffn_weight_bytes(model, acc, spec)
                    == ffn_weight_bytes(model, acc, dense) // b)

    def test_nm_bytes_exceed_value_fraction(self, paper):
        # Index metadata makes 2:4 strictly more than half of dense.
        model, acc = paper
        spec = nm_sparse_spec(2, 4)
        dense_bytes = layer_weight_bytes(model, acc, CompressionSpec())
        nm_bytes = layer_weight_bytes(model, acc, spec)
        assert dense_bytes // 2 < nm_bytes < dense_bytes


class TestReport:
    def test_residency_grows_with_compression(self, paper):
        model, acc = paper
        reports = [
            footprint_report(model, acc, spec)
            for spec in (CompressionSpec(), nm_sparse_spec(2, 4),
                         circulant_spec(8), circulant_spec(16))
        ]
        residencies = [r.layers_resident for r in reports]
        assert residencies == sorted(residencies)
        # Dense Transformer-base does not fit the Table II budget at
        # all; circ16 fits many layers.
        assert reports[0].layers_resident == 0
        assert reports[-1].layers_resident >= 10

    def test_dense_reference_consistency(self, paper):
        model, acc = paper
        report = footprint_report(model, acc, circulant_spec(8))
        assert report.dense_mha_bytes == mha_weight_bytes(
            model, acc, CompressionSpec())
        assert report.weight_bytes_ratio == pytest.approx(0.125)
        assert report.spec_label == "circ8"

    def test_crossover_drops_with_compression(self, paper):
        # Smaller tiles over the same hiding window -> the compressed
        # block stays compute bound on a weaker link.
        model, acc = paper
        dense = footprint_report(model, acc, CompressionSpec())
        circ = footprint_report(model, acc, circulant_spec(8))
        assert circ.mha_crossover_gbps < dense.mha_crossover_gbps
        assert circ.ffn_crossover_gbps < dense.ffn_crossover_gbps

    def test_explicit_capacity_override(self, paper):
        model, acc = paper
        layer = layer_weight_bytes(model, acc, CompressionSpec())
        report = footprint_report(
            model, acc, CompressionSpec(), cache_capacity_bytes=3 * layer
        )
        assert report.layers_resident == 3
        assert report.cache_capacity_bytes == 3 * layer
