"""Unit tests for the PRC pricing/telemetry-coverage engine."""

from pathlib import Path

from repro.statcheck import check_pricing, scan_pricing
from repro.statcheck.ast_lints import UNIT_PRICING
from repro.telemetry.instrument import CYCLE_FIELD_FAMILIES, METRIC_FAMILIES

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


class TestScanner:
    def test_real_tree_inventory(self):
        inv = scan_pricing(SRC_ROOT)
        assert inv.files_scanned > 50
        units = {b.unit for b in inv.bookings if b.unit}
        assert units <= set(UNIT_PRICING)
        assert {"softmax", "layernorm"} <= units
        assert len(inv.emitted_families()) == len(METRIC_FAMILIES)

    def test_forwarding_wrapper_not_a_booking_site(self):
        # Timeline.module_event forwards its own `unit` parameter into
        # TimelineEvent; only its callers are booking sites.
        inv = scan_pricing(SRC_ROOT)
        wrappers = [b for b in inv.bookings
                    if b.file.endswith("core/scheduler.py")
                    and b.unit is None]
        assert wrappers == []

    def test_gauge_table_idiom_recovered(self):
        src = (
            "def record(registry):\n"
            "    gauges = (('repro_serving_makespan_us', 'h', 1.0),)\n"
            "    for name, help_text, value in gauges:\n"
            "        registry.gauge(name, help_text).set(value)\n"
        )
        inv = scan_pricing(SRC_ROOT / "empty-none",
                           extra_sources={"repro/x.py": src})
        (site,) = inv.emissions
        assert site.metric is None
        assert site.recovered == ("repro_serving_makespan_us",)


class TestChecks:
    def test_real_tree_clean(self):
        checks, findings = check_pricing(SRC_ROOT)
        assert checks > 100
        assert findings == []

    def test_unpriced_unit_flagged(self):
        src = ("def schedule(timeline):\n"
               "    timeline.module_event('rowgen', 'dma2', 0, 64)\n")
        _, findings = check_pricing(
            SRC_ROOT, extra_sources={"repro/core/_x.py": src}
        )
        assert any(f.code == "PRC001" for f in findings)

    def test_unregistered_metric_flagged(self):
        src = ("def record(registry):\n"
               "    registry.counter('repro_phantom_total', 'x').inc(1)\n")
        _, findings = check_pricing(
            SRC_ROOT, extra_sources={"repro/telemetry/_x.py": src}
        )
        hits = [f for f in findings if f.code == "PRC002"]
        assert hits and hits[0].details["metric"] == "repro_phantom_total"

    def test_dynamic_name_without_literals_warns(self):
        src = ("def record(registry, name):\n"
               "    registry.counter(name, 'x').inc(1)\n")
        _, findings = check_pricing(
            SRC_ROOT, extra_sources={"repro/telemetry/_x.py": src}
        )
        assert any(f.code == "PRC004" and f.severity == "warning"
                   for f in findings)


class TestRegistryParity:
    def test_every_cycle_field_maps_to_registered_family(self):
        for field_name, family in CYCLE_FIELD_FAMILIES.items():
            assert family in METRIC_FAMILIES, field_name

    def test_unit_pricing_fields_all_mapped(self):
        for unit, fields in UNIT_PRICING.items():
            for field_name in fields:
                assert field_name in CYCLE_FIELD_FAMILIES, (unit, field_name)

    def test_families_sorted_and_unique(self):
        assert list(METRIC_FAMILIES) == sorted(set(METRIC_FAMILIES))


class TestObsCoverage:
    """PR 10: the observability families are wired into the PRC graph."""

    OBS_FAMILIES = (
        "repro_obs_alert_active",
        "repro_obs_alerts_total",
        "repro_obs_burn_rate",
        "repro_obs_slo_bad_total",
        "repro_obs_slo_good_total",
        "repro_obs_traces_retained_total",
        "repro_obs_traces_total",
    )

    def test_all_obs_families_registered(self):
        for family in self.OBS_FAMILIES:
            assert family in METRIC_FAMILIES, family

    def test_every_obs_family_has_a_literal_emission_site(self):
        # PRC002 matches literal family names at call sites; each obs
        # family must therefore appear in the scanned inventory (no
        # f-string names that the lint cannot resolve).
        inv = scan_pricing(SRC_ROOT)
        emitted = inv.emitted_families()
        for family in self.OBS_FAMILIES:
            assert family in emitted, family

    def test_obs_emission_sites_live_in_the_obs_package(self):
        inv = scan_pricing(SRC_ROOT)
        files = {
            site.file
            for site in inv.emissions
            if (site.metric or "").startswith("repro_obs_")
        }
        assert files
        assert all(f.endswith(("obs/spans.py", "obs/slo.py"))
                   for f in sorted(files)), sorted(files)
