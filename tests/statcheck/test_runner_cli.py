"""End-to-end tests: run_check, the CLI gate, and the JSON artifact."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.statcheck import (
    CheckCache,
    OverflowPoint,
    PASSES,
    SEED_BUG_PASS,
    SEED_BUGS,
    run_check,
    selftest_check,
)


class TestRunCheck:
    def test_paper_point_passes(self):
        report = run_check()
        assert report.passed
        assert report.errors == []
        assert set(report.checks_run) == set(PASSES)
        assert report.checks_run["overflow"] == len(report.certified) == 25

    def test_seeded_acc_width_fails(self):
        report = run_check(seed_bug="sa-acc-width", skip=("schedule", "ast"))
        assert not report.passed
        assert report.point["sa_acc_bits"] == 26
        assert report.point["seed_bug"] == "sa-acc-width"
        assert any(f.code == "OVF001" for f in report.errors)

    def test_seeded_double_book_fails(self):
        report = run_check(seed_bug="double-book", skip=("overflow", "ast"))
        assert not report.passed
        assert any(f.code == "SCH001" for f in report.errors)

    def test_skip_drops_pass(self):
        report = run_check(skip=("ast",))
        assert "ast" not in report.checks_run
        assert {"overflow", "schedule"} <= set(report.checks_run)

    def test_unknown_skip_rejected(self):
        with pytest.raises(ConfigError):
            run_check(skip=("fuzz",))

    def test_unknown_seed_bug_rejected(self):
        with pytest.raises(ConfigError):
            run_check(seed_bug="rowhammer")

    def test_sa_acc_bits_override(self):
        report = run_check(sa_acc_bits=20, skip=("schedule", "ast"))
        assert not report.passed

    def test_custom_point(self):
        report = run_check(
            point=OverflowPoint(name="big", h=16, d_model=1024, d_ff=4096),
            skip=("schedule", "ast"),
        )
        assert report.passed
        assert report.point["name"] == "big"

    def test_json_artifact(self, tmp_path):
        out = tmp_path / "findings.json"
        report = run_check(
            seed_bug="sa-acc-width", skip=("schedule", "ast"),
            json_path=str(out),
        )
        payload = json.loads(out.read_text())
        assert {"point", "summary", "checks_run", "findings",
                "certified"} <= set(payload)
        assert payload["point"]["seed_bug"] == "sa-acc-width"
        assert len(payload["findings"]) == len(report.findings) >= 1
        assert payload["findings"][0]["code"] == "OVF001"

    def test_seed_bugs_registry(self):
        assert SEED_BUGS == (
            "sa-acc-width",
            "double-book",
            "unseeded-rng",
            "set-order",
            "orphan-bound",
            "port-width",
            "unpriced-cycle",
            "unregistered-metric",
        )

    @pytest.mark.parametrize("bug,code", [
        ("unseeded-rng", "DET001"),
        ("set-order", "DET002"),
        ("orphan-bound", "QFMT002"),
        ("port-width", "QFMT001"),
        ("unpriced-cycle", "PRC001"),
        ("unregistered-metric", "PRC002"),
    ])
    def test_each_seeded_bug_fails_with_its_code(self, bug, code):
        target = SEED_BUG_PASS[bug]
        skip = tuple(p for p in PASSES if p not in (target, "overflow"))
        report = run_check(seed_bug=bug, skip=skip)
        assert not report.passed
        assert any(f.code == code for f in report.errors)

    def test_seeded_run_ignores_cache(self, tmp_path):
        cache = CheckCache(path=tmp_path / "cache.json")
        report = run_check(seed_bug="unseeded-rng",
                           skip=("schedule", "ast", "pricing"),
                           cache=cache)
        assert not report.passed
        assert cache.entries == {}
        assert report.cache_stats == {}


class TestSelftestHook:
    def test_selftest_check_passes(self):
        assert selftest_check() == []

    def test_selftest_appears_in_full_selftest(self):
        from repro.core.verification import run_selftest

        results = run_selftest()
        by_name = {r.name: r for r in results}
        assert "statcheck" in by_name
        assert by_name["statcheck"].passed


class TestCli:
    def test_check_exits_zero_on_paper_point(self, capsys):
        assert main(["check", "--point", "paper"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "0 error(s)" in out

    def test_check_exits_nonzero_on_seeded_overflow(self, capsys):
        rc = main(["check", "--seed-bug", "sa-acc-width",
                   "--skip", "schedule", "--skip", "ast"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "OVF001" in out

    def test_check_exits_nonzero_on_seeded_double_book(self, capsys):
        rc = main(["check", "--seed-bug", "double-book",
                   "--skip", "overflow", "--skip", "ast"])
        assert rc == 1
        assert "SCH001" in capsys.readouterr().out

    def test_check_json_artifact(self, tmp_path, capsys):
        out = tmp_path / "statcheck.json"
        assert main(["check", "--json", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["summary"]["error"] == 0

    def test_check_table1_preset(self, capsys):
        assert main(["check", "--point", "transformer-big",
                     "--skip", "schedule", "--skip", "ast"]) == 0
        capsys.readouterr()

    def test_check_acc_bits_override(self, capsys):
        rc = main(["check", "--sa-acc-bits", "20",
                   "--skip", "schedule", "--skip", "ast"])
        assert rc == 1
        capsys.readouterr()

    def test_check_sarif_artifact(self, tmp_path, capsys):
        out = tmp_path / "check.sarif"
        assert main(["check", "--sarif", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["tool"]["driver"]["name"] == (
            "repro-statcheck"
        )

    def test_check_baseline_suppresses_and_warns_stale(
            self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "suppressions": [
                {"code": "OVF001", "reason": "reviewed: seeded run"},
                {"code": "SCH999", "reason": "stale on purpose"},
            ],
        }))
        rc = main(["check", "--seed-bug", "sa-acc-width",
                   "--skip", "schedule", "--skip", "ast",
                   "--skip", "det", "--skip", "qformat",
                   "--skip", "pricing",
                   "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0          # the only error is suppressed
        assert "suppressed by baseline" in out
        assert "BAS001" in out  # the SCH999 entry is stale

    def test_check_malformed_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 99}')
        rc = main(["check", "--baseline", str(baseline),
                   "--skip", "schedule", "--skip", "ast",
                   "--skip", "det", "--skip", "pricing"])
        assert rc == 2
        capsys.readouterr()

    def test_check_changed_warm_run_hits_cache(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["check", "--changed",
                     "--cache-file", str(tmp_path / "c.json")]) == 0
        first = capsys.readouterr().out
        assert "miss" in first
        assert main(["check", "--changed",
                     "--cache-file", str(tmp_path / "c.json")]) == 0
        second = capsys.readouterr().out
        assert "0 miss(es)" in second

    def test_check_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--help"])
        out = capsys.readouterr().out
        assert "Exit codes" in out
        assert "2 = usage" in out
