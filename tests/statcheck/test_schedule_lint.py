"""Tests for the schedule/trace invariant linter."""

import copy
import dataclasses

from repro.config import paper_accelerator, transformer_base
from repro.core.scheduler import ScheduleResult, TimelineEvent, schedule_mha
from repro.core.trace import TraceSpan
from repro.statcheck import (
    PINNED_PAPER_POINTS,
    lint_paper_points,
    lint_schedule,
    lint_spans,
)


def mutate_double_booking(result):
    """Shift the second SA event back so it overlaps the first."""
    mutated = copy.deepcopy(result)
    sa = [i for i, e in enumerate(mutated.events) if e.unit == "sa"]
    first, second = sa[0], sa[1]
    shift = min(50, mutated.events[second].start)
    mutated.events[second] = dataclasses.replace(
        mutated.events[second],
        start=mutated.events[second].start - shift,
        end=mutated.events[second].end - shift,
    )
    return mutated, mutated.events[first], mutated.events[second]


class TestPinnedPoints:
    def test_all_pinned_points_clean(self):
        checked, findings = lint_paper_points()
        assert checked == len(PINNED_PAPER_POINTS) == 12
        assert findings == []

    def test_pinned_totals_cover_paper_and_sweep(self):
        totals = {(label, block): total
                  for label, _, block, total in PINNED_PAPER_POINTS}
        assert totals[("paper", "mha")] == 21_578
        assert totals[("paper", "ffn")] == 39_052
        assert totals[("wl8", "mha")] == 21_834
        # Decode-subsystem points (fused prefill + one decode step).
        assert totals[("paper", "fused512")] == 312_538
        assert totals[("paper", "decode64")] == totals[("paper", "mha")]
        # Compress-subsystem points (circulant + N:M sparse layers).
        assert totals[("paper", "circ8_mha")] == 23_626
        assert totals[("paper", "circ8_ffn")] == 43_148
        assert totals[("paper", "nm24_mha")] == 17_482
        assert totals[("paper", "nm24_ffn")] == 30_860

    def test_drifted_accelerator_fires_sch005(self):
        slow = paper_accelerator().with_updates(sa_drain_cycles=17)
        _, findings = lint_paper_points(acc=slow)
        assert any(f.code == "SCH005" for f in findings)


class TestScheduleLint:
    def test_real_schedule_is_clean(self):
        result = schedule_mha(transformer_base(), paper_accelerator())
        assert lint_schedule(result) == []

    def test_double_booked_sa_fires_sch001(self):
        result = schedule_mha(transformer_base(), paper_accelerator())
        mutated, first, second = mutate_double_booking(result)
        findings = lint_schedule(mutated)
        sch001 = [f for f in findings if f.code == "SCH001"]
        assert sch001
        assert sch001[0].details["resource"] == "sa"
        assert sch001[0].details["overlap"] > 0

    def test_empty_interval_fires_sch002(self):
        result = ScheduleResult(block="mha", events=[
            TimelineEvent("bad", "sa", start=10, end=10, active_cycles=0),
        ], total_cycles=10)
        findings = lint_schedule(result)
        assert [f.code for f in findings] == ["SCH002"]
        assert "empty/negative interval" in findings[0].message

    def test_overactive_event_fires_sch002(self):
        result = ScheduleResult(block="mha", events=[
            TimelineEvent("busy", "sa", start=0, end=4, active_cycles=9),
        ], total_cycles=4)
        assert any(
            "exceed duration" in f.message for f in lint_schedule(result)
        )

    def test_unknown_unit_fires_sch002(self):
        result = ScheduleResult(block="mha", events=[
            TimelineEvent("odd", "gpu", start=0, end=4, active_cycles=4),
        ], total_cycles=4)
        findings = lint_schedule(result)
        assert any(
            f.code == "SCH002" and "'gpu'" in f.message for f in findings
        )

    def test_wrong_total_fires_sch003(self):
        result = schedule_mha(transformer_base(), paper_accelerator())
        mutated = copy.deepcopy(result)
        mutated.total_cycles += 1
        assert any(f.code == "SCH003" for f in lint_schedule(mutated))

    def test_conservation_vs_breakdown_fires_sch004(self):
        from repro.core.cycle_model import mha_cycle_breakdown

        model, acc = transformer_base(), paper_accelerator()
        result = schedule_mha(model, acc)
        breakdown = mha_cycle_breakdown(
            model, acc.with_updates(weight_load_cycles=8)
        )
        findings = lint_schedule(result, breakdown)
        assert any(f.code == "SCH004" for f in findings)

    def test_conservation_holds_on_matching_breakdown(self):
        from repro.core.cycle_model import mha_cycle_breakdown

        model, acc = transformer_base(), paper_accelerator()
        result = schedule_mha(model, acc)
        assert lint_schedule(result, mha_cycle_breakdown(model, acc)) == []


class TestSpanLint:
    def test_device_overlap_fires_spn001(self):
        spans = [
            TraceSpan("batch0", "device0", start_us=0.0, duration_us=10.0),
            TraceSpan("batch1", "device0", start_us=5.0, duration_us=10.0),
        ]
        findings = lint_spans(spans)
        assert [f.code for f in findings] == ["SPN001"]
        assert findings[0].details["resource"] == "device0"

    def test_queue_track_is_not_exclusive(self):
        spans = [
            TraceSpan("req0.wait", "queue", start_us=0.0, duration_us=10.0),
            TraceSpan("req1.wait", "queue", start_us=2.0, duration_us=10.0),
        ]
        assert lint_spans(spans) == []

    def test_negative_duration_fires_spn002(self):
        spans = [
            TraceSpan("broken", "device3", start_us=4.0, duration_us=-1.0),
        ]
        assert [f.code for f in lint_spans(spans)] == ["SPN002"]

    def test_back_to_back_spans_allowed(self):
        spans = [
            TraceSpan("batch0", "device0", start_us=0.0, duration_us=5.0),
            TraceSpan("batch1", "device0", start_us=5.0, duration_us=5.0),
        ]
        assert lint_spans(spans) == []

    def test_custom_exclusive_patterns(self):
        spans = [
            TraceSpan("a", "queue", start_us=0.0, duration_us=4.0),
            TraceSpan("b", "queue", start_us=1.0, duration_us=4.0),
        ]
        assert lint_spans(spans, exclusive_tracks=("queue",))
