"""Property tests: the certifier's static bounds are conservative.

Two layers of soundness:

* interval arithmetic — for any points inside the operand intervals,
  the concrete result lies inside the result interval;
* datapath bounds — running the *real* fixed-point units on random
  inputs never escapes the certified stage intervals.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import FixedPointLayerNorm
from repro.fixedpoint.exp_unit import ExpUnit
from repro.fixedpoint.ops import LOG2E_TERMS, shift_add_multiply
from repro.statcheck import (
    Interval,
    OverflowPoint,
    certify_layernorm,
    certify_sa_accumulators,
    certify_softmax,
)

BOUND = 1 << 40


@st.composite
def interval_and_point(draw):
    lo = draw(st.integers(-BOUND, BOUND))
    hi = draw(st.integers(lo, BOUND))
    x = draw(st.integers(lo, hi))
    return Interval(lo, hi), x


def stage_map(stages):
    return {s.name: s for s in stages}


class TestIntervalSoundness:
    @given(interval_and_point(), interval_and_point())
    def test_add_sub_mul(self, ax, bx):
        a, x = ax
        b, y = bx
        assert (a + b).contains(x + y)
        assert (a - b).contains(x - y)
        assert (a * b).contains(x * y)

    @given(interval_and_point(), st.integers(0, 48))
    def test_shifts(self, ax, bits):
        a, x = ax
        assert a.shr(bits).contains(x >> bits)
        assert a.shl(bits).contains(x << bits)
        rounded = (x + (1 << bits >> 1)) >> bits if bits else x
        assert a.rounding_shr(bits).contains(rounded)

    @given(interval_and_point(), st.integers(0, 64))
    def test_accumulate(self, ax, depth):
        a, x = ax
        # Any mix of `depth` in-interval terms sums inside the bound;
        # the all-equal chain is the draw here, extremes are the hull.
        acc = a.accumulate(depth)
        assert acc.contains(x * depth)
        assert acc.contains(a.lo * depth)
        assert acc.contains(a.hi * depth)

    @given(st.integers(-(1 << 20), 1 << 20))
    def test_shift_add_matches_hardware(self, x):
        u = Interval.point(x).shift_add(LOG2E_TERMS)
        concrete = int(shift_add_multiply(np.array([x]), LOG2E_TERMS)[0])
        assert u.contains(concrete)

    @given(interval_and_point())
    def test_shift_add_over_interval(self, ax):
        a, x = ax
        u = a.shift_add(LOG2E_TERMS)
        concrete = int(shift_add_multiply(np.array([x]), LOG2E_TERMS)[0])
        assert u.contains(concrete)


class TestSaBoundsConservative:
    @given(st.data())
    @settings(max_examples=50)
    def test_random_dot_products_inside_certified_interval(self, data):
        point = OverflowPoint(s=8, h=2, d_model=16, d_ff=32)
        stages = stage_map(certify_sa_accumulators(point)[0])
        depths = {"proj": 16, "qkt": 8, "pv": 8, "ffn_w1": 16, "ffn_w2": 32}
        for kind, depth in depths.items():
            acts = data.draw(st.lists(
                st.integers(-128, 127), min_size=depth, max_size=depth,
            ))
            wgts = data.draw(st.lists(
                st.integers(-128, 127), min_size=depth, max_size=depth,
            ))
            acc = int(np.dot(np.array(acts, dtype=np.int64),
                             np.array(wgts, dtype=np.int64)))
            assert stages[f"sa.acc.{kind}"].interval.contains(acc)


class TestSoftmaxBoundsConservative:
    @given(st.lists(
        st.integers(-(1 << 15), 0), min_size=1, max_size=63,
    ))
    @settings(max_examples=100)
    def test_exp_outputs_and_row_sum_inside_certified_intervals(self, rest):
        point = OverflowPoint()
        stages = stage_map(certify_softmax(point)[0])
        exp = ExpUnit()
        # The running-max subtraction guarantees one exact zero per row.
        row = np.array([0] + rest, dtype=np.int64)
        out = exp(row)
        exp_bound = stages["softmax.exp.out"].interval
        assert int(out.min()) >= exp_bound.lo
        assert int(out.max()) <= exp_bound.hi
        assert stages["softmax.row_sum"].interval.contains(int(out.sum()))


class TestLayerNormBoundsConservative:
    @given(st.data())
    @settings(max_examples=50)
    def test_statistics_inside_certified_intervals(self, data):
        point = OverflowPoint(s=8, h=2, d_model=16, d_ff=32)
        stages = stage_map(certify_layernorm(point)[0])
        unit = FixedPointLayerNorm(d_model=16)
        fmt = unit.in_fmt
        codes = np.array(data.draw(st.lists(
            st.integers(fmt.min_code, fmt.max_code),
            min_size=16, max_size=16,
        )), dtype=np.int64)[None, :]
        mean, var = unit.statistics(codes)
        assert stages["layernorm.mean"].interval.contains(int(mean[0]))
        isqrt_bound = stages["layernorm.isqrt_in"].interval
        eps_codes = max(1, round(unit.eps_value / fmt.scale))
        assert isqrt_bound.contains(int(var[0]) + eps_codes)

    def test_adversarial_extremes_stay_inside(self):
        point = OverflowPoint()
        stages = stage_map(certify_layernorm(point)[0])
        unit = FixedPointLayerNorm(d_model=512)
        fmt = unit.in_fmt
        half = np.full((1, 512), fmt.min_code, dtype=np.int64)
        half[:, ::2] = fmt.max_code
        for codes in (
            np.full((1, 512), fmt.min_code, dtype=np.int64),
            np.full((1, 512), fmt.max_code, dtype=np.int64),
            half,
        ):
            mean, var = unit.statistics(codes)
            assert stages["layernorm.mean"].interval.contains(int(mean[0]))
            eps_codes = max(1, round(unit.eps_value / fmt.scale))
            assert stages["layernorm.isqrt_in"].interval.contains(
                int(var[0]) + eps_codes
            )
