"""Unit tests for the QFMT dataflow type checker."""

import pytest

from repro.errors import ConfigError
from repro.statcheck import (
    DatapathGraph,
    OverflowPoint,
    Port,
    build_datapath_graph,
    certify_overflow,
    check_graph,
    check_qformat,
)
from repro.fixedpoint.types import QFormat


def small_graph():
    g = DatapathGraph()
    g.add(Port("in", 8, kind="input"))
    g.add(Port("wide", 16))
    g.add(Port("narrow", 8))
    g.connect("in", "wide")
    return g


class TestGraphModel:
    def test_duplicate_port_rejected(self):
        g = small_graph()
        with pytest.raises(ConfigError):
            g.add(Port("wide", 16))

    def test_unknown_port_in_connection_rejected(self):
        g = small_graph()
        with pytest.raises(ConfigError):
            g.connect("wide", "ghost")

    def test_reachability(self):
        g = small_graph()
        assert g.reachable() == {"in", "wide"}
        g.connect("wide", "narrow", requantizes=True)
        assert g.reachable() == {"in", "wide", "narrow"}


class TestChecks:
    def test_truncating_edge_flagged(self):
        g = small_graph()
        g.connect("wide", "narrow")   # 16b -> 8b, unmarked
        _, findings = check_graph(g)
        assert [f.code for f in findings if f.severity == "error"] == [
            "QFMT001"
        ]

    def test_marked_requantize_clean(self):
        g = small_graph()
        g.connect("wide", "narrow", requantizes=True)
        _, findings = check_graph(g)
        assert [f for f in findings if f.code == "QFMT001"] == []

    def test_orphan_certification_flagged(self):
        g = small_graph()
        g.connect("wide", "narrow", requantizes=True)
        _, findings = check_graph(g, certified_names=["ghost.reg"])
        assert any(f.code == "QFMT002" for f in findings)

    def test_unreachable_certified_node_flagged(self):
        g = small_graph()
        # "narrow" exists but nothing feeds it.
        _, findings = check_graph(g, certified_names=["narrow"])
        assert any(f.code == "QFMT002" for f in findings)

    def test_format_mismatch_warns(self):
        g = DatapathGraph()
        g.add(Port("a", 16, fmt=QFormat(int_bits=6, frac_bits=10),
                   kind="input"))
        g.add(Port("b", 17, fmt=QFormat(int_bits=2, frac_bits=15)))
        g.connect("a", "b")
        _, findings = check_graph(g)
        assert [f.code for f in findings] == ["QFMT003"]
        assert findings[0].severity == "warning"

    def test_dangling_node_warns(self):
        g = small_graph()
        _, findings = check_graph(g)
        dangling = [f for f in findings if f.code == "QFMT004"]
        assert len(dangling) == 1
        assert dangling[0].details["port"] == "narrow"


class TestPaperGraph:
    def test_all_certified_stages_are_reachable_nodes(self):
        point = OverflowPoint()
        graph = build_datapath_graph(point)
        stages, _ = certify_overflow(point)
        reachable = graph.reachable()
        for stage in stages:
            assert stage.name in graph.ports, stage.name
            assert stage.name in reachable, stage.name

    def test_paper_point_clean(self):
        checks, findings = check_qformat()
        assert checks > 25
        assert findings == []

    def test_widths_mirror_certifier(self):
        point = OverflowPoint()
        graph = build_datapath_graph(point)
        stages, _ = certify_overflow(point)
        for stage in stages:
            assert graph.ports[stage.name].bits == stage.declared_bits, (
                stage.name
            )

    def test_width_override_seeds_qfmt001(self):
        graph = build_datapath_graph(OverflowPoint())
        graph.override_width("softmax.row_sum", 8)
        _, findings = check_graph(graph)
        assert any(f.code == "QFMT001" for f in findings)

    def test_nonpaper_points_clean(self):
        for point in (
            OverflowPoint(name="big", h=16, d_model=1024, d_ff=4096),
            OverflowPoint(name="bert", d_model=768, d_ff=3072, s=128),
        ):
            _, findings = check_qformat(point=point)
            assert findings == [], point.name
