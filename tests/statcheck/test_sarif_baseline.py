"""Unit tests for SARIF export and baseline suppressions."""

import json

import pytest

from repro.errors import ConfigError
from repro.statcheck import (
    Baseline,
    CheckReport,
    Finding,
    RULE_DOCS,
    Suppression,
    load_baseline,
    run_check,
    to_sarif,
    write_baseline,
    write_sarif,
)


def sample_report():
    return CheckReport(findings=[
        Finding(code="DET001", message="unseeded rng", check="det",
                file="repro/serving/simulator.py", line=42),
        Finding(code="QFMT003", message="format mismatch",
                severity="warning", check="qformat"),
    ])


class TestSarif:
    def test_shape_and_levels(self):
        log = to_sarif(sample_report())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-statcheck"
        results = run["results"]
        assert [r["level"] for r in results] == ["error", "warning"]

    def test_location_uri_is_repo_relative(self):
        log = to_sarif(sample_report())
        loc = log["runs"][0]["results"][0]["locations"][0]
        phys = loc["physicalLocation"]
        assert phys["artifactLocation"]["uri"] == (
            "src/repro/serving/simulator.py"
        )
        assert phys["region"]["startLine"] == 42

    def test_config_finding_has_no_location(self):
        log = to_sarif(sample_report())
        warning = log["runs"][0]["results"][1]
        assert "locations" not in warning

    def test_rules_cover_used_codes_only(self):
        log = to_sarif(sample_report())
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["DET001", "QFMT003"]

    def test_rule_docs_cover_every_engine_code(self):
        for prefix in ("OVF", "SCH", "REP", "DET", "QFMT", "PRC", "BAS"):
            assert any(code.startswith(prefix) for code in RULE_DOCS)

    def test_write_sarif_round_trips(self, tmp_path):
        path = tmp_path / "out.sarif"
        write_sarif(sample_report(), str(path))
        assert json.loads(path.read_text())["version"] == "2.1.0"

    def test_full_run_emits_valid_sarif(self, tmp_path):
        path = tmp_path / "check.sarif"
        run_check(skip=("ast", "det", "pricing"), sarif_path=str(path))
        payload = json.loads(path.read_text())
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        assert isinstance(payload["runs"][0]["results"], list)


class TestBaseline:
    def test_match_by_code_and_file(self):
        entry = Suppression(code="DET001", reason="reviewed",
                            file="repro/serving/simulator.py")
        report = sample_report()
        kept, suppressed, stale = Baseline([entry]).apply(report.findings)
        assert [f.code for f in suppressed] == ["DET001"]
        assert [f.code for f in kept] == ["QFMT003"]
        assert stale == []

    def test_message_prefix_match(self):
        entry = Suppression(code="QFMT003", reason="reviewed",
                            message_prefix="format")
        _, suppressed, stale = Baseline([entry]).apply(
            sample_report().findings
        )
        assert len(suppressed) == 1 and stale == []

    def test_stale_entry_becomes_bas001_warning(self):
        baseline = Baseline(
            [Suppression(code="OVF001", reason="reviewed")],
            path="b.json",
        )
        kept, suppressed, stale = baseline.apply(sample_report().findings)
        warnings = baseline.stale_findings(stale)
        assert len(warnings) == 1
        assert warnings[0].code == "BAS001"
        assert warnings[0].severity == "warning"

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(
            [Suppression(code="DET001", reason="why", line=3)], path
        )
        loaded = load_baseline(path)
        assert loaded.suppressions == [
            Suppression(code="DET001", reason="why", line=3)
        ]

    @pytest.mark.parametrize("payload", [
        "[]",
        '{"version": 2, "suppressions": []}',
        '{"version": 1, "suppressions": [{"code": "X"}]}',
        '{"version": 1, "suppressions": [{"code": "X", "reason": " "}]}',
        '{"version": 1, "suppressions": [{"code": "X", "reason": "r", '
        '"typo": 1}]}',
        "not json",
    ])
    def test_malformed_baseline_rejected(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        path.write_text(payload)
        with pytest.raises(ConfigError):
            load_baseline(path)

    def test_repo_baseline_is_valid_and_not_stale(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        baseline = load_baseline(repo / "statcheck-baseline.json")
        # Every entry shipped in the repo must still suppress something;
        # an empty suppression list is the steady state.
        report = run_check(baseline_path=str(repo / "statcheck-baseline.json"))
        assert report.passed
        assert not any(f.code == "BAS001" for f in report.findings)
        assert isinstance(baseline.suppressions, list)
