"""Tests for the REPxxx AST lints (real repo clean, seeded bugs fire)."""

import ast
import textwrap

from repro.core.trace import KNOWN_TRACK_PATTERNS
from repro.statcheck import ALL_CODES, lint_source, run_ast_lints
from repro.statcheck.ast_lints import INTEGER_ONLY_MODULES, lint_pricing_parity


def codes(findings):
    return [f.code for f in findings]


class TestRepoIsClean:
    def test_no_findings_on_real_package(self):
        counts, findings = run_ast_lints()
        assert findings == []
        # Every rule actually ran over files.
        assert counts["REP001"] == len(INTEGER_ONLY_MODULES)
        assert counts["REP002"] == 2
        assert counts["REP003"] > 50
        assert counts["REP004"] > 50

    def test_code_subset_selection(self):
        counts, _ = run_ast_lints(codes=("REP001",))
        assert set(counts) == {"REP001"}


class TestFloatPurity:
    def test_float_literal_fires(self):
        src = "def scale(x):\n    return x * 0.5\n"
        findings = lint_source(src, "repro/fixedpoint/ops.py")
        assert codes(findings) == ["REP001"]
        assert "0.5" in findings[0].message

    def test_true_division_fires(self):
        src = "def mean(total, n):\n    return total / n\n"
        findings = lint_source(src, "repro/fixedpoint/ops.py")
        assert codes(findings) == ["REP001"]
        assert "true division" in findings[0].message

    def test_prefix_leading_one_bug_is_caught(self):
        # The exact float round-trip that made leading_one_position
        # wrong for codes >= 2**53 in the seed.
        src = textwrap.dedent("""\
            import numpy as np

            def leading_one_position(values):
                arr = np.asarray(values)
                return np.floor(
                    np.log2(arr.astype(np.float64))
                ).astype(np.int64)
        """)
        findings = lint_source(src, "repro/fixedpoint/ops.py")
        assert codes(findings) == ["REP001"]
        assert "float64" in findings[0].message
        assert "2**53" in findings[0].message

    def test_float_call_fires(self):
        src = "def f(x):\n    return float(x)\n"
        assert codes(lint_source(src, "repro/core/pe.py")) == ["REP001"]

    def test_allowlisted_helper_is_exempt(self):
        src = textwrap.dedent("""\
            def evaluate(codes, scale):
                return codes * scale * 1.0

            def max_relative_error(a, b):
                return abs(a - b) / abs(b)
        """)
        assert lint_source(src, "repro/fixedpoint/exp_unit.py") == []

    def test_docstrings_are_exempt(self):
        src = 'def f(x):\n    """Halve (conceptually 0.5 * x)."""\n    return x >> 1\n'
        assert lint_source(src, "repro/fixedpoint/ops.py") == []

    def test_non_datapath_module_is_exempt(self):
        src = "RATIO = 0.5\n"
        assert lint_source(src, "repro/core/cycle_model.py") == []


class TestPricingParity:
    SCHEDULER = textwrap.dedent("""\
        def build(t):
            t.module_event("softmax", "softmax", 0, 4)
            t.add(unit="sa")
    """)
    CYCLE_MODEL = textwrap.dedent("""\
        class CycleBreakdown:
            total_cycles: int
            active_cycles: int
            issue_cycles: int
            skew_cycles: int
            abft_cycles: int
            softmax_stall_cycles: int
            layernorm_cycles: int
            memsys_stall_cycles: int
            ideal_cycles: int
    """)

    def run(self, scheduler_src, cycle_src):
        return lint_pricing_parity(
            ast.parse(scheduler_src), ast.parse(cycle_src),
            "core/scheduler.py", "core/cycle_model.py",
        )

    def test_matching_trees_are_clean(self):
        assert self.run(self.SCHEDULER, self.CYCLE_MODEL) == []

    def test_unknown_unit_fires(self):
        src = self.SCHEDULER + '\ndef extra(t):\n    t.add(unit="npu")\n'
        findings = self.run(src, self.CYCLE_MODEL)
        assert codes(findings) == ["REP002"]
        assert findings[0].details["unit"] == "npu"
        assert findings[0].file == "core/scheduler.py"

    def test_missing_breakdown_field_fires(self):
        chopped = self.CYCLE_MODEL.replace(
            "    softmax_stall_cycles: int\n", ""
        )
        findings = self.run(self.SCHEDULER, chopped)
        assert codes(findings) == ["REP002"]
        assert findings[0].details["missing_fields"] == [
            "softmax_stall_cycles"
        ]

    def test_unclaimed_cycles_field_fires(self):
        padded = self.CYCLE_MODEL + "    mystery_cycles: int\n"
        findings = self.run(self.SCHEDULER, padded)
        assert codes(findings) == ["REP002"]
        assert findings[0].details["field"] == "mystery_cycles"


class TestTraceTracks:
    def test_rogue_track_fires(self):
        src = 'spans.append(TraceSpan("x", "gpu7", 0.0, 1.0))\n'
        findings = lint_source(src, "repro/serving/sim.py")
        assert codes(findings) == ["REP003"]
        assert findings[0].details["track"] == "gpu7"

    def test_registered_literal_passes(self):
        src = 'TraceSpan("x", "queue", 0.0, 1.0)\n'
        assert lint_source(src, "repro/serving/sim.py") == []

    def test_fstring_device_track_passes(self):
        src = 'TraceSpan("x", f"device{i}", 0.0, 1.0)\n'
        assert lint_source(src, "repro/serving/sim.py") == []

    def test_fstring_rogue_track_fires(self):
        src = 'TraceSpan("x", f"node{i}", 0.0, 1.0)\n'
        assert codes(lint_source(src, "repro/serving/sim.py")) == ["REP003"]

    def test_dynamic_track_is_skipped(self):
        src = 'TraceSpan("x", track_name, 0.0, 1.0)\n'
        assert lint_source(src, "repro/serving/sim.py") == []

    def test_track_keyword_form(self):
        src = 'TraceSpan(name="x", track="rogue", start_us=0.0, duration_us=1.0)\n'
        assert codes(lint_source(src, "repro/serving/sim.py")) == ["REP003"]

    def test_custom_registry(self):
        src = 'TraceSpan("x", "lane3", 0.0, 1.0)\n'
        assert lint_source(
            src, "x.py", known_patterns=("lane*",)
        ) == []
        assert KNOWN_TRACK_PATTERNS  # the real registry is non-empty


class TestConfigDocstrings:
    def test_undocumented_field_fires(self):
        src = textwrap.dedent('''\
            from dataclasses import dataclass

            @dataclass
            class TinyConfig:
                """A config.

                Attributes:
                    rows: Row count.
                """

                rows: int
                cols: int
        ''')
        findings = lint_source(src, "repro/config.py")
        assert codes(findings) == ["REP004"]
        assert findings[0].details["field"] == "cols"

    def test_documented_fields_pass(self):
        src = textwrap.dedent('''\
            from dataclasses import dataclass

            @dataclass
            class TinyConfig:
                """A config.

                Attributes:
                    rows: Row count.
                    cols: Column count.
                """

                rows: int
                cols: int
        ''')
        assert lint_source(src, "repro/config.py") == []

    def test_shared_line_documents_both_fields(self):
        src = textwrap.dedent('''\
            from dataclasses import dataclass

            @dataclass
            class PairConfig:
                """A config.

                Attributes:
                    lo / hi: Interval endpoints.
                """

                lo: int
                hi: int
        ''')
        assert lint_source(src, "repro/config.py") == []

    def test_private_and_constant_fields_exempt(self):
        src = textwrap.dedent('''\
            from dataclasses import dataclass

            @dataclass
            class CacheConfig:
                """A config."""

                _scratch: int = 0
                LIMIT: int = 8
        ''')
        assert lint_source(src, "repro/config.py") == []

    def test_non_dataclass_ignored(self):
        src = textwrap.dedent('''\
            class LooseConfig:
                """Not a dataclass."""

                rows: int
        ''')
        assert lint_source(src, "repro/config.py") == []

    def test_non_config_dataclass_ignored(self):
        src = textwrap.dedent('''\
            from dataclasses import dataclass

            @dataclass
            class Sample:
                """Not a config."""

                rows: int
        ''')
        assert lint_source(src, "repro/config.py") == []


class TestCodeRegistry:
    def test_all_codes_listed(self):
        assert ALL_CODES == ("REP001", "REP002", "REP003", "REP004")
