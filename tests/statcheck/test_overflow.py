"""Tests for the static overflow certifier."""

import pytest

from repro.config import paper_accelerator, transformer_base
from repro.errors import ConfigError
from repro.fixedpoint import FixedPointLayerNorm
from repro.statcheck import (
    OverflowPoint,
    certify_fused_softmax,
    certify_layernorm,
    certify_overflow,
    certify_sa_accumulators,
    certify_softmax,
    min_sa_acc_bits,
    paper_point,
)


def stage_map(stages):
    return {s.name: s for s in stages}


class TestPaperPoint:
    def test_paper_point_is_clean(self):
        stages, findings = certify_overflow(paper_point())
        assert findings == []
        assert all(s.ok for s in stages)

    def test_every_declared_register_is_covered(self):
        names = {s.name for s in certify_overflow(paper_point())[0]}
        assert {
            "sa.mac.product", "sa.acc.proj", "sa.acc.qkt", "sa.acc.pv",
            "sa.acc.ffn_w1", "sa.acc.ffn_w2",
            "softmax.exp.out", "softmax.row_sum", "softmax.ln.out",
            "layernorm.sum", "layernorm.sumsq", "layernorm.isqrt_in",
        } <= names

    def test_from_configs_matches_default(self):
        point = OverflowPoint.from_configs(
            transformer_base(), paper_accelerator(), name="paper"
        )
        assert point == paper_point()

    def test_invalid_point_rejected(self):
        with pytest.raises(ConfigError):
            OverflowPoint(s=0)
        with pytest.raises(ConfigError):
            OverflowPoint(d_model=500, h=8)


class TestSaAccumulators:
    def test_int8_product_bound_is_exact(self):
        stages = stage_map(certify_sa_accumulators(paper_point())[0])
        prod = stages["sa.mac.product"].interval
        assert (prod.lo, prod.hi) == (-128 * 127, 128 * 128)

    def test_deepest_chain_is_ffn_w2(self):
        stages = stage_map(certify_sa_accumulators(paper_point())[0])
        assert (stages["sa.acc.ffn_w2"].required_bits
                == max(s.required_bits for s in stages.values()))

    def test_min_acc_bits_at_paper_point(self):
        # d_ff = 2048-deep chain of [-16256, 16384] products -> 27 bits.
        assert min_sa_acc_bits(paper_point()) == 27

    def test_acc32_has_headroom(self):
        stages = stage_map(certify_sa_accumulators(paper_point())[0])
        assert stages["sa.acc.ffn_w2"].headroom_bits == 32 - 27

    def test_one_bit_below_minimum_fires(self):
        point = OverflowPoint(sa_acc_bits=26)
        stages, findings = certify_sa_accumulators(point)
        assert findings
        f = findings[0]
        assert f.code == "OVF001"
        assert f.severity == "error"
        assert f.details["required_bits"] == 27
        assert f.details["breaking_config"]["max_fitting_depth"] < 2048

    def test_minimum_width_certifies(self):
        point = OverflowPoint(sa_acc_bits=27)
        _, findings = certify_sa_accumulators(point)
        assert findings == []

    def test_breaking_depth_is_tight(self):
        point = OverflowPoint(sa_acc_bits=26)
        _, findings = certify_sa_accumulators(point)
        max_depth = findings[0].details["breaking_config"][
            "max_fitting_depth"]
        prod_hi = 128 * 128
        assert max_depth * prod_hi <= (1 << 25) - 1
        assert (max_depth + 1) * prod_hi > (1 << 25) - 1


class TestSoftmax:
    def test_row_sum_certifies_to_512(self):
        _, findings = certify_softmax(OverflowPoint(s=512))
        assert findings == []

    def test_row_sum_breaks_at_1024(self):
        _, findings = certify_softmax(OverflowPoint(s=1024))
        assert len(findings) == 1
        f = findings[0]
        assert f.details["stage"] == "softmax.row_sum"
        assert f.details["breaking_config"]["max_fitting_s"] == 512

    def test_exp_out_fits_q2_15(self):
        stages = stage_map(certify_softmax(paper_point())[0])
        out = stages["softmax.exp.out"]
        assert out.ok
        # Worst case: mantissa 1 + F at F just below 1, shift 0.
        assert out.interval.hi == (1 << 15) + ((1 << 10) - 1) * (1 << 5)

    def test_ln_out_fits_q6_10(self):
        stages = stage_map(certify_softmax(paper_point())[0])
        assert stages["softmax.ln.out"].ok


class TestLayerNorm:
    def test_all_stages_certify_at_paper_point(self):
        stages, findings = certify_layernorm(paper_point())
        assert findings == []
        assert all(s.ok for s in stages)

    def test_isqrt_in_fmt_regression(self):
        # The seed's FixedPointLayerNorm declared a 24-bit isqrt input
        # bus; worst-case variance codes reach ~2**34, which the
        # certifier flags.  The widened Q24.12 bus must cover the
        # certified interval (the fix this pass originally forced).
        stages = stage_map(certify_layernorm(paper_point())[0])
        stage = stages["layernorm.isqrt_in"]
        assert stage.ok
        unit = FixedPointLayerNorm(d_model=512)
        assert unit.isqrt_unit.in_fmt.int_bits == 2 * unit.in_fmt.int_bits
        assert stage.interval.hi <= unit.isqrt_unit.in_fmt.max_code
        # And the old 24-bit declaration would indeed have overflowed.
        assert stage.interval.hi > (1 << 23) - 1

    def test_undersized_sum_register_fires(self):
        point = OverflowPoint(layernorm_sum_bits=30)
        _, findings = certify_layernorm(point)
        assert any(
            f.details.get("stage") == "layernorm.sum" for f in findings
        )

    def test_breaking_d_model_reported(self):
        point = OverflowPoint(layernorm_sumsq_bits=40)
        _, findings = certify_layernorm(point)
        f = [x for x in findings
             if x.details.get("stage") == "layernorm.sumsq"][0]
        assert f.details["breaking_config"]["max_fitting_d_model"] < 512


class TestScaling:
    @pytest.mark.parametrize("preset_kwargs", [
        dict(),                                       # Transformer-base
        dict(h=16, d_model=1024, d_ff=4096),          # Transformer-big
        dict(h=12, d_model=768, d_ff=3072),           # BERT-base
    ])
    def test_table1_presets_certify(self, preset_kwargs):
        _, findings = certify_overflow(OverflowPoint(**preset_kwargs))
        assert findings == []

    def test_narrow_accumulator_reports_every_overflowing_chain(self):
        _, findings = certify_sa_accumulators(OverflowPoint(sa_acc_bits=20))
        overflowing = {f.details["stage"] for f in findings}
        assert "sa.acc.ffn_w2" in overflowing
        assert "sa.acc.proj" in overflowing


class TestFusedSoftmax:
    def test_paper_point_certifies_to_4096(self):
        stages, findings = certify_fused_softmax(paper_point())
        assert findings == []
        names = {s.name for s in stages}
        assert names == {
            "fused.softmax.running_max",
            "fused.softmax.rescale",
            "fused.softmax.running_sum",
        }
        assert all(s.ok for s in stages)

    def test_running_sum_bound_is_exact(self):
        # hi = 4096 * (2**16 - 2**(15 - f)) for the Q1.15 EXP output fed
        # by SOFTMAX_Q's f fractional bits -- one LSB under the Q14.15
        # register's 2**28 - 1 ceiling.
        stages = stage_map(certify_fused_softmax(paper_point())[0])
        running_sum = stages["fused.softmax.running_sum"]
        frac = paper_point().softmax_fmt.frac_bits
        assert running_sum.interval.hi == 4096 * (2**16 - 2**(15 - frac))
        assert running_sum.declared_bits == 29
        assert running_sum.headroom_bits == 0

    def test_rescale_factor_never_exceeds_one_plus_lsb_tail(self):
        stages = stage_map(certify_fused_softmax(paper_point())[0])
        rescale = stages["fused.softmax.rescale"].interval
        assert rescale.lo == 0
        assert rescale.hi < 2 * (1 << 15)  # strictly below 2.0 in Q1.15

    def test_undersized_sum_register_reports_breaking_s(self):
        point = paper_point(fused_sum_int_bits=5)
        stages, findings = certify_fused_softmax(point)
        assert len(findings) == 1
        breaking = findings[0].details["breaking_config"]
        assert breaking["s"] == 4096
        max_s = breaking["max_fitting_s"]
        assert 0 < max_s < 4096
        # The reported bound is tight: max_s fits, max_s + 1 does not.
        ok_point = paper_point(
            fused_sum_int_bits=5, fused_max_seq=max_s
        )
        assert certify_fused_softmax(ok_point)[1] == []
        over_point = paper_point(
            fused_sum_int_bits=5, fused_max_seq=max_s + 1
        )
        assert certify_fused_softmax(over_point)[1] != []

    def test_invalid_fused_fields_rejected(self):
        with pytest.raises(ConfigError):
            OverflowPoint(fused_max_seq=0)
        with pytest.raises(ConfigError):
            OverflowPoint(fused_sum_int_bits=0)
