"""Unit and property tests for the incremental check cache."""

import json
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.statcheck import (
    AnalysisUnit,
    CheckCache,
    Finding,
    UnitResult,
    build_units,
    run_check,
)
from repro.statcheck.cache import (
    CACHE_FORMAT_VERSION,
    ENGINE_VERSION,
    file_sha,
    run_units_uncached,
)

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def counting_unit(name, deps, calls, checks=1, findings=()):
    def run():
        calls.append(name)
        return checks, list(findings)

    return AnalysisUnit(name=name, deps=deps, run=run)


class TestUnitResult:
    def test_round_trip_preserves_findings(self):
        result = UnitResult(checks=3, findings=(
            Finding(code="DET001", message="m", file="repro/x.py", line=7,
                    check="det", details={"name": "rng"}),
        ))
        assert UnitResult.from_dict(result.as_dict()) == result


class TestCheckCache:
    def test_miss_then_hit(self, tmp_path):
        dep = tmp_path / "a.py"
        dep.write_text("x = 1\n")
        calls = []
        units = [counting_unit("u", (dep,), calls)]
        cache = CheckCache(path=tmp_path / "c.json")
        first = cache.run_units(units)
        second = cache.run_units(units)
        assert calls == ["u"]
        assert (cache.hits, cache.misses) == (1, 1)
        assert first == second

    def test_content_change_invalidates(self, tmp_path):
        dep = tmp_path / "a.py"
        dep.write_text("x = 1\n")
        calls = []
        units = [counting_unit("u", (dep,), calls)]
        cache = CheckCache()
        cache.run_units(units)
        dep.write_text("x = 2\n")
        cache.run_units(units)
        assert calls == ["u", "u"]

    def test_touch_without_content_change_still_hits(self, tmp_path):
        # Keyed on content hashes, not mtimes.
        dep = tmp_path / "a.py"
        dep.write_text("x = 1\n")
        calls = []
        cache = CheckCache()
        cache.run_units([counting_unit("u", (dep,), calls)])
        dep.write_text("x = 1\n")
        cache.run_units([counting_unit("u", (dep,), calls)])
        assert calls == ["u"]

    def test_params_partition_the_key(self, tmp_path):
        dep = tmp_path / "a.py"
        dep.write_text("x = 1\n")
        calls = []

        def unit(params):
            def run():
                calls.append(params)
                return 1, []

            return AnalysisUnit(name="u", deps=(dep,), run=run,
                                params=params)

        cache = CheckCache()
        cache.run_units([unit("paper")])
        cache.run_units([unit("big")])
        cache.run_units([unit("paper")])
        assert calls == ["paper", "big"]

    def test_save_load_round_trip(self, tmp_path):
        dep = tmp_path / "a.py"
        dep.write_text("x = 1\n")
        path = tmp_path / "c.json"
        calls = []
        cache = CheckCache(path=path)
        cache.run_units([counting_unit(
            "u", (dep,), calls,
            findings=[Finding(code="DET001", message="m", check="det")],
        )])
        cache.save()
        reloaded = CheckCache.load(path)
        results = reloaded.run_units([counting_unit("u", (dep,), calls)])
        assert calls == ["u"]
        assert reloaded.hits == 1
        assert results["u"].findings[0].code == "DET001"

    def test_corrupt_cache_starts_empty(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{not json")
        assert CheckCache.load(path).entries == {}

    def test_engine_version_mismatch_starts_empty(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({
            "format": CACHE_FORMAT_VERSION,
            "engine": "statcheck-v0.0",
            "entries": {"k": {"checks": 1, "findings": []}},
        }))
        assert CheckCache.load(path).entries == {}
        assert ENGINE_VERSION != "statcheck-v0.0"


class TestBuildUnits:
    def test_unit_inventory(self):
        units = build_units(ast_root=SRC_ROOT)
        names = [u.name for u in units]
        assert "ast" in names
        assert "pricing" in names
        det = [n for n in names if n.startswith("det:")]
        assert len(det) >= 20
        assert len(names) == len(set(names))

    def test_touching_one_sim_file_invalidates_only_dependents(
            self, tmp_path):
        units = build_units(ast_root=SRC_ROOT)
        hashes = {
            dep: file_sha(dep) for u in units for dep in u.deps
        }
        before = {u.name: u.key(hashes) for u in units}

        target = next(
            dep for u in units if u.name.startswith("det:repro/serving/")
            for dep in u.deps if "serving" in dep.as_posix()
        )
        hashes[target] = "0" * 64  # simulate an edit to one serving file
        after = {u.name: u.key(hashes) for u in units}

        changed = {name for name in before if before[name] != after[name]}
        # The edited file's own DET unit plus the whole-program scans.
        per_file = {n for n in changed if n.startswith("det:")}
        assert len(per_file) == 1
        assert "ast" in changed and "pricing" in changed
        untouched_det = {
            n for n in before if n.startswith("det:")
        } - per_file
        assert untouched_det and untouched_det.isdisjoint(changed)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_cold_and_warm_runs_agree(self, salt):
        # Property: replaying from cache is indistinguishable from
        # running the unit, for any unit contents.
        finding = Finding(
            code="DET001", message=f"salted {salt}", check="det",
            file="repro/x.py", line=salt % 997 + 1,
        )

        def make_unit():
            return AnalysisUnit(
                name=f"u{salt}",
                deps=(),
                run=lambda: (salt % 7 + 1, [finding]),
                params=str(salt),
            )

        cold = run_units_uncached([make_unit()])
        cache = CheckCache()
        cache.run_units([make_unit()])          # populate
        warm = cache.run_units([make_unit()])   # replay
        assert warm == cold
        assert cache.hits == 1


class TestRunCheckIntegration:
    def test_cached_run_matches_uncached(self, tmp_path):
        cold = run_check(skip=("ast",))
        cache = CheckCache(path=tmp_path / "c.json")
        run_check(skip=("ast",), cache=cache)
        warm = run_check(
            skip=("ast",), cache=CheckCache.load(tmp_path / "c.json")
        )
        assert warm.passed == cold.passed
        assert warm.findings == cold.findings
        assert warm.checks_run == cold.checks_run
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["hits"] > 0
