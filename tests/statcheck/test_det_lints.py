"""Unit tests for the DET determinism lints."""

from pathlib import Path

from repro.statcheck import (
    DET_CODES,
    lint_determinism_source,
    run_det_lints,
    sim_module_files,
)
from repro.statcheck.det_lints import is_simulation_module

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def codes_of(source, **kwargs):
    return sorted({
        f.code for f in lint_determinism_source(source, "repro/serving/x.py",
                                                **kwargs)
    })


class TestDet001UnseededRng:
    def test_default_rng_without_seed_flagged(self):
        src = ("import numpy as np\n"
               "def f():\n"
               "    rng = np.random.default_rng()\n"
               "    return rng.random()\n")
        assert "DET001" in codes_of(src)

    def test_global_numpy_draw_flagged(self):
        src = ("import numpy as np\n"
               "def f():\n"
               "    return np.random.random()\n")
        assert "DET001" in codes_of(src)

    def test_stdlib_random_flagged(self):
        src = ("import random\n"
               "def f():\n"
               "    return random.choice([1, 2])\n")
        assert "DET001" in codes_of(src)

    def test_seeded_rng_clean(self):
        src = ("import numpy as np\n"
               "def f(seed):\n"
               "    rng = np.random.default_rng(seed)\n"
               "    return rng.random()\n")
        assert codes_of(src) == []

    def test_generator_annotated_param_clean(self):
        src = ("import numpy as np\n"
               "def f(rng: np.random.Generator):\n"
               "    return rng.integers(0, 4)\n")
        assert codes_of(src) == []

    def test_generator_annotated_assign_clean(self):
        src = ("import numpy as np\n"
               "def f(injector):\n"
               "    rng: np.random.Generator = injector.rng\n"
               "    return rng.integers(0, 4)\n")
        assert codes_of(src) == []

    def test_closure_inherits_seeded_name(self):
        src = ("import numpy as np\n"
               "def sim(seed):\n"
               "    rng = np.random.default_rng(seed)\n"
               "    def draw():\n"
               "        return rng.random()\n"
               "    return draw\n")
        assert codes_of(src) == []

    def test_spawn_chain_clean(self):
        src = ("import numpy as np\n"
               "def f(seed):\n"
               "    rng = np.random.default_rng(seed)\n"
               "    child = rng.spawn(1)[0]\n"
               "    return child.random()\n")
        assert codes_of(src) == []


class TestDet002SetIteration:
    def test_for_over_set_literal_flagged(self):
        src = ("def dispatch(emit):\n"
               "    for device in {1, 2, 3}:\n"
               "        emit(device)\n")
        assert "DET002" in codes_of(src)

    def test_list_of_set_flagged(self):
        src = ("def f(pending):\n"
               "    ready = set(pending)\n"
               "    return list(ready)\n")
        assert "DET002" in codes_of(src)

    def test_sorted_set_clean(self):
        src = ("def f(pending):\n"
               "    for device in sorted(set(pending)):\n"
               "        yield device\n")
        assert codes_of(src) == []


class TestDet003WallClock:
    def test_time_time_flagged(self):
        src = ("import time\n"
               "def now_us():\n"
               "    return time.time() * 1e6\n")
        assert "DET003" in codes_of(src)

    def test_datetime_now_flagged(self):
        src = ("import datetime\n"
               "def stamp():\n"
               "    return datetime.datetime.now()\n")
        assert "DET003" in codes_of(src)


class TestDet004FloatTiebreak:
    def test_float_eq_in_lt_flagged(self):
        src = ("class Ev:\n"
               "    def __lt__(self, other):\n"
               "        if self.deadline_us == other.deadline_us:\n"
               "            return self.name < other.name\n"
               "        return self.deadline_us < other.deadline_us\n")
        assert "DET004" in codes_of(src)


class TestScope:
    def test_non_sim_module_not_linted(self):
        src = ("import numpy as np\n"
               "def f():\n"
               "    return np.random.random()\n")
        assert not is_simulation_module("repro/analysis/plots.py", src)

    def test_marker_opts_in(self):
        src = "__simulation__ = True\n"
        assert is_simulation_module("repro/analysis/plots.py", src)

    def test_sim_packages_opted_in_by_path(self):
        assert is_simulation_module("repro/serving/simulator.py", "")
        assert is_simulation_module("repro/cluster/router.py", "")
        assert is_simulation_module("repro/decode/serving.py", "")

    def test_real_tree_is_clean(self):
        modules, findings = run_det_lints(SRC_ROOT)
        assert modules >= 20
        assert findings == []

    def test_reliability_modules_included_via_marker(self):
        files = {p.as_posix() for p in sim_module_files(SRC_ROOT)}
        assert any(f.endswith("repro/reliability/campaign.py")
                   for f in files)
        assert any(f.endswith("repro/reliability/faults.py")
                   for f in files)

    def test_codes_registry(self):
        assert DET_CODES == ("DET001", "DET002", "DET003", "DET004")
