"""Unit tests for the certifier's interval arithmetic."""

import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import QFormat
from repro.statcheck import Interval, envelope


class TestConstructors:
    def test_point(self):
        assert Interval.point(5) == Interval(5, 5)

    def test_from_qformat(self):
        i = Interval.from_qformat(QFormat(8, 0))
        assert (i.lo, i.hi) == (-128, 127)

    def test_signed_width(self):
        i = Interval.signed_width(8)
        assert (i.lo, i.hi) == (-128, 127)

    def test_empty_interval_rejected(self):
        with pytest.raises(FixedPointError):
            Interval(2, 1)

    def test_zero_width_rejected(self):
        with pytest.raises(FixedPointError):
            Interval.signed_width(0)


class TestArithmetic:
    def test_add(self):
        assert Interval(-1, 2) + Interval(-3, 4) == Interval(-4, 6)

    def test_sub(self):
        assert Interval(-1, 2) - Interval(-3, 4) == Interval(-5, 5)

    def test_neg(self):
        assert -Interval(-1, 2) == Interval(-2, 1)

    def test_mul_int8_product(self):
        i8 = Interval.signed_width(8)
        prod = i8 * i8
        assert prod == Interval(-128 * 127, 128 * 128)

    def test_accumulate(self):
        prod = Interval.signed_width(8) * Interval.signed_width(8)
        acc = prod.accumulate(64)
        assert acc == Interval(prod.lo * 64, prod.hi * 64)

    def test_accumulate_zero(self):
        assert Interval(-5, 5).accumulate(0) == Interval(0, 0)

    def test_shr_floor_on_negatives(self):
        assert Interval(-5, 5).shr(1) == Interval(-3, 2)

    def test_rounding_shr(self):
        assert Interval(-5, 5).rounding_shr(1) == Interval(-2, 3)

    def test_shl(self):
        assert Interval(-1, 3).shl(4) == Interval(-16, 48)

    def test_shift_add_log2e(self):
        # x * ~1.4375 for non-positive x: [-32768, 0] scaled.
        x = Interval(-32768, 0)
        u = x.shift_add(((1, 0), (1, 1), (-1, 4)))
        assert u.lo == -32768 - 16384
        assert u.hi == 2048

    def test_nonneg(self):
        assert Interval(-5, 3).nonneg() == Interval(0, 3)
        assert Interval(-5, -2).nonneg() == Interval(0, 0)

    def test_union(self):
        assert Interval(-1, 2).union(Interval(0, 5)) == Interval(-1, 5)

    def test_negative_shift_rejected(self):
        with pytest.raises(FixedPointError):
            Interval(0, 1).shr(-1)


class TestQueries:
    def test_fits_signed(self):
        assert Interval(-128, 127).fits_signed(8)
        assert not Interval(-129, 127).fits_signed(8)
        assert not Interval(-128, 128).fits_signed(8)

    def test_required_signed_bits(self):
        assert Interval(0, 0).required_signed_bits == 1
        assert Interval(-128, 127).required_signed_bits == 8
        assert Interval(-128, 128).required_signed_bits == 9

    def test_fits_qformat(self):
        assert Interval(-32768, 32767).fits_qformat(QFormat(6, 10))
        assert not Interval(-32768, 32768).fits_qformat(QFormat(6, 10))

    def test_contains(self):
        assert Interval(-3, 3).contains(0)
        assert not Interval(-3, 3).contains(4)

    def test_contains_interval(self):
        assert Interval(-3, 3).contains_interval(Interval(-1, 2))
        assert not Interval(-3, 3).contains_interval(Interval(-4, 2))

    def test_max_abs(self):
        assert Interval(-5, 3).max_abs == 5


class TestEnvelope:
    def test_envelope(self):
        assert envelope(
            [Interval(0, 1), Interval(-2, 0), Interval(1, 3)]
        ) == Interval(-2, 3)

    def test_empty_envelope_rejected(self):
        with pytest.raises(FixedPointError):
            envelope([])
