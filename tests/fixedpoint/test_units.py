"""Unit tests for the hardware EXP, LN and inverse-sqrt units."""

import numpy as np
import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import ExpUnit, InverseSqrtLUT, LnUnit, QFormat


class TestExpUnit:
    def setup_method(self):
        self.unit = ExpUnit()

    def test_exp_of_zero_is_one(self):
        assert self.unit.evaluate(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_exact_at_negative_powers_of_two_exponent(self):
        # x such that x*log2(e) is integral: the PWL mantissa error is zero
        # there (2**F with F=0), only the constant error remains.
        out = self.unit.evaluate(np.array([-np.log(2.0)]))
        assert out[0] == pytest.approx(0.5, rel=0.03)

    def test_relative_error_bound(self):
        # PWL 2**F ~= 1+F worst error ~6.1%; constant error adds ~2%.
        assert self.unit.max_relative_error() < 0.09

    def test_monotone_nonincreasing_as_x_decreases(self):
        xs = np.linspace(-6, 0, 200)
        ys = self.unit.evaluate(xs)
        assert np.all(np.diff(ys) >= 0)

    def test_flush_to_zero_for_very_negative(self):
        assert self.unit.evaluate(np.array([-30.0]))[0] == 0.0

    def test_rejects_positive_codes(self):
        with pytest.raises(FixedPointError):
            self.unit(np.array([1]))

    def test_output_in_unit_interval(self):
        xs = np.linspace(-16, 0, 500)
        ys = self.unit.evaluate(xs)
        assert np.all(ys >= 0) and np.all(ys <= 1.0)

    def test_log2e_shiftadd_constant(self):
        assert self.unit.log2e_constant == pytest.approx(1.4375)

    def test_custom_format(self):
        unit = ExpUnit(in_fmt=QFormat(5, 8), out_frac_bits=12)
        assert unit.out_fmt.frac_bits == 12
        assert unit.evaluate(np.array([0.0]))[0] == pytest.approx(1.0)


class TestLnUnit:
    def setup_method(self):
        self.unit = LnUnit()

    def test_ln_of_one_is_zero(self):
        assert self.unit.evaluate(np.array([1.0]))[0] == pytest.approx(0.0)

    def test_ln_powers_of_two(self):
        # At powers of two the mantissa term is exactly zero; only the
        # 0.6875-vs-ln2 constant error remains (~0.8%).
        out = self.unit.evaluate(np.array([2.0, 4.0, 32.0]))
        expected = np.array([1, 2, 5]) * 0.6875
        assert np.allclose(out, expected, atol=1e-3)

    def test_absolute_error_bound(self):
        assert self.unit.max_absolute_error() < 0.15

    def test_monotone(self):
        xs = np.linspace(0.5, 500, 400)
        ys = self.unit.evaluate(xs)
        assert np.all(np.diff(ys) >= -1e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(FixedPointError):
            self.unit.evaluate(np.array([0.0]))
        with pytest.raises(FixedPointError):
            self.unit(np.array([0]))

    def test_ln2_shiftadd_constant(self):
        assert self.unit.ln2_constant == pytest.approx(0.6875)

    def test_fractional_inputs(self):
        out = self.unit.evaluate(np.array([0.5]))
        assert out[0] == pytest.approx(-0.6875, abs=0.01)


class TestInverseSqrtLUT:
    def setup_method(self):
        self.unit = InverseSqrtLUT()

    def test_exact_at_powers_of_four(self):
        out = self.unit.evaluate(np.array([1.0, 4.0, 16.0, 64.0]))
        assert np.allclose(out, [1.0, 0.5, 0.25, 0.125], rtol=1e-3)

    def test_odd_exponent_bank(self):
        out = self.unit.evaluate(np.array([2.0, 8.0]))
        assert np.allclose(out, [2 ** -0.5, 8 ** -0.5], rtol=2e-3)

    def test_relative_error_small(self):
        assert self.unit.max_relative_error() < 0.005

    def test_monotone_decreasing(self):
        xs = np.linspace(0.1, 100, 500)
        ys = self.unit.evaluate(xs)
        assert np.all(np.diff(ys) <= 1e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(FixedPointError):
            self.unit.evaluate(np.array([0.0]))

    def test_lut_storage_reported(self):
        assert self.unit.bram_bits == 2 * 256 * self.unit.out_fmt.total_bits

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(FixedPointError):
            InverseSqrtLUT(entries=300)

    def test_larger_table_is_more_accurate(self):
        small = InverseSqrtLUT(entries=32).max_relative_error()
        large = InverseSqrtLUT(entries=1024).max_relative_error()
        assert large < small
