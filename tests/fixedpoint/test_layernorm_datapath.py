"""Fixed-point LayerNorm datapath tests."""

import numpy as np
import pytest

from repro.errors import FixedPointError, ShapeError
from repro.fixedpoint import FixedPointLayerNorm
from repro.transformer.functional import layer_norm

RNG = np.random.default_rng(73)


class TestAccuracy:
    @pytest.mark.parametrize("d_model", [64, 512])
    def test_close_to_float_power_of_two(self, d_model):
        unit = FixedPointLayerNorm(d_model=d_model)
        assert unit.max_error_vs_float() < 0.02

    def test_close_to_float_non_power_of_two(self):
        # BERT-base's d_model = 768 exercises the constant-divide path.
        unit = FixedPointLayerNorm(d_model=768)
        assert unit.max_error_vs_float() < 0.02

    def test_rows_approximately_normalized(self):
        unit = FixedPointLayerNorm(d_model=128)
        g = RNG.normal(1.0, 3.0, size=(16, 128))
        out = unit(g, np.ones(128), np.zeros(128))
        assert np.abs(out.mean(-1)).max() < 0.02
        assert np.abs(out.std(-1) - 1.0).max() < 0.05

    def test_affine_applied(self):
        unit = FixedPointLayerNorm(d_model=64)
        g = RNG.normal(size=(4, 64))
        gamma = np.full(64, 2.0)
        beta = np.full(64, 0.5)
        base = unit(g, np.ones(64), np.zeros(64))
        scaled = unit(g, gamma, beta)
        assert np.allclose(scaled, base * 2.0 + 0.5, atol=0.05)

    def test_matches_float_reference_distribution(self):
        unit = FixedPointLayerNorm(d_model=256)
        g = RNG.normal(0, 2, size=(8, 256))
        gamma = RNG.uniform(0.5, 1.5, size=256)
        beta = RNG.uniform(-0.5, 0.5, size=256)
        exact = layer_norm(g, gamma, beta)
        approx = unit(g, gamma, beta)
        assert np.abs(exact - approx).max() < 0.02


class TestIntegerStatistics:
    def test_statistics_on_constant_rows(self):
        unit = FixedPointLayerNorm(d_model=64)
        codes = unit.in_fmt.quantize(np.full((2, 64), 1.5))
        mean, var = unit.statistics(codes)
        assert np.allclose(unit.in_fmt.dequantize(mean), 1.5)
        assert np.all(var <= 1)   # at most rounding residue

    def test_variance_never_negative(self):
        unit = FixedPointLayerNorm(d_model=64)
        for seed in range(5):
            g = np.random.default_rng(seed).normal(size=(4, 64)) * 3
            _, var = unit.statistics(unit.in_fmt.quantize(g))
            assert np.all(var >= 0)

    def test_mean_shift_matches_division(self):
        unit = FixedPointLayerNorm(d_model=512)
        sums = np.array([512_000, -511_999, 7])
        assert np.allclose(
            unit._mean_codes(sums), np.round(sums / 512), atol=1
        )


class TestValidation:
    def test_width_mismatch(self):
        unit = FixedPointLayerNorm(d_model=64)
        with pytest.raises(ShapeError):
            unit(np.zeros((2, 32)), np.ones(64), np.zeros(64))

    def test_bad_affine_shape(self):
        unit = FixedPointLayerNorm(d_model=64)
        with pytest.raises(ShapeError):
            unit(np.zeros((2, 64)), np.ones(32), np.zeros(64))

    def test_invalid_d_model(self):
        with pytest.raises(FixedPointError):
            FixedPointLayerNorm(d_model=0)


class TestIsqrtInputWidth:
    def test_isqrt_bus_covers_worst_case_variance(self):
        # Regression: the isqrt LUT input was declared 24 bits wide, but
        # worst-case E[G^2] codes reach ~2**34 for Q12.12 inputs.  The
        # bus is now 2*int_bits wide and the statcheck certifier pins it.
        unit = FixedPointLayerNorm(d_model=512)
        assert unit.isqrt_unit.in_fmt.int_bits == 2 * unit.in_fmt.int_bits
        worst = np.full((1, 512), unit.in_fmt.min_code, dtype=np.int64)
        half = worst.copy()
        half[:, ::2] = unit.in_fmt.max_code
        for codes in (worst, half):
            _, var = unit.statistics(codes)
            assert np.all(var <= unit.isqrt_unit.in_fmt.max_code)

    def test_extreme_codes_normalize_without_saturation_artifacts(self):
        unit = FixedPointLayerNorm(d_model=64)
        g = np.empty((1, 64))
        g[:, ::2] = unit.in_fmt.dequantize(unit.in_fmt.max_code)
        g[:, 1::2] = unit.in_fmt.dequantize(unit.in_fmt.min_code)
        out = unit(g, np.ones(64), np.zeros(64))
        assert np.isfinite(out).all()
        assert np.abs(out.mean(-1)).max() < 0.05
