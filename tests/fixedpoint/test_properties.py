"""Property-based tests (hypothesis) for the fixed-point substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import (
    ExpUnit,
    InverseSqrtLUT,
    LnUnit,
    QFormat,
    rounding_shift_right,
    sat_add,
)

formats = st.builds(
    QFormat,
    int_bits=st.integers(min_value=2, max_value=16),
    frac_bits=st.integers(min_value=0, max_value=16),
)


class TestQFormatProperties:
    @given(fmt=formats, value=st.floats(-1000, 1000))
    def test_quantize_always_in_range(self, fmt, value):
        code = fmt.quantize(value)
        assert fmt.min_code <= code <= fmt.max_code

    @given(fmt=formats, value=st.floats(-1000, 1000))
    def test_roundtrip_error_bounded(self, fmt, value):
        clipped = min(max(value, fmt.min_value), fmt.max_value)
        back = fmt.dequantize(fmt.quantize(clipped))
        assert abs(back - clipped) <= fmt.scale / 2 + 1e-9

    @given(fmt=formats, codes=st.lists(
        st.integers(-10**6, 10**6), min_size=1, max_size=20))
    def test_saturate_idempotent(self, fmt, codes):
        once = fmt.saturate(np.array(codes))
        twice = fmt.saturate(once)
        assert np.array_equal(once, twice)

    @given(fmt=formats, codes=st.lists(
        st.integers(-10**6, 10**6), min_size=1, max_size=20))
    def test_wrap_stays_in_range(self, fmt, codes):
        wrapped = fmt.wraps(np.array(codes))
        assert wrapped.min() >= fmt.min_code
        assert wrapped.max() <= fmt.max_code


class TestOpsProperties:
    @given(a=st.integers(-127, 127), b=st.integers(-127, 127))
    def test_sat_add_commutative(self, a, b):
        fmt = QFormat(8, 0)
        x = sat_add(np.array([a]), np.array([b]), fmt)
        y = sat_add(np.array([b]), np.array([a]), fmt)
        assert x[0] == y[0]

    @given(value=st.integers(-2**40, 2**40),
           bits=st.integers(0, 20))
    def test_rounding_shift_close_to_division(self, value, bits):
        out = rounding_shift_right(np.array([value]), bits)[0]
        assert abs(out - value / 2 ** bits) <= 0.5 + 1e-9


class TestUnitProperties:
    @settings(max_examples=50)
    @given(x=st.floats(-6.0, 0.0))
    def test_exp_unit_bounded_error(self, x):
        unit = ExpUnit()
        approx = unit.evaluate(np.array([x]))[0]
        exact = np.exp(x)
        assert abs(approx - exact) <= 0.09 * exact + unit.out_fmt.scale

    @settings(max_examples=50)
    @given(x=st.floats(0.25, 400.0))
    def test_ln_unit_bounded_error(self, x):
        unit = LnUnit()
        approx = unit.evaluate(np.array([x]))[0]
        assert abs(approx - np.log(x)) <= 0.16

    @settings(max_examples=50)
    @given(x=st.floats(0.05, 1000.0))
    def test_isqrt_bounded_error(self, x):
        unit = InverseSqrtLUT()
        approx = unit.evaluate(np.array([x]))[0]
        exact = x ** -0.5
        assert abs(approx - exact) <= 0.01 * exact + unit.out_fmt.scale
