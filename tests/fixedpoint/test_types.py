"""Unit tests for fixed-point formats."""

import numpy as np
import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import ACC32, INT8, QFormat


class TestQFormatConstruction:
    def test_total_bits(self):
        assert QFormat(6, 10).total_bits == 16

    def test_scale(self):
        assert QFormat(2, 4).scale == 1.0 / 16

    def test_code_range(self):
        fmt = QFormat(8, 0)
        assert fmt.max_code == 127
        assert fmt.min_code == -128

    def test_value_range(self):
        fmt = QFormat(2, 6)
        assert fmt.max_value == pytest.approx(127 / 64)
        assert fmt.min_value == pytest.approx(-2.0)

    def test_int8_alias(self):
        assert INT8.max_code == 127
        assert INT8.scale == 1.0

    def test_acc32_width(self):
        assert ACC32.total_bits == 32

    def test_rejects_zero_int_bits(self):
        with pytest.raises(FixedPointError):
            QFormat(0, 4)

    def test_rejects_negative_frac_bits(self):
        with pytest.raises(FixedPointError):
            QFormat(4, -1)

    def test_rejects_too_wide(self):
        with pytest.raises(FixedPointError):
            QFormat(40, 30)

    def test_str(self):
        assert str(QFormat(6, 10)) == "Q6.10"


class TestQuantizeDequantize:
    def test_roundtrip_exact_grid(self):
        fmt = QFormat(4, 4)
        values = np.array([0.0, 0.5, -1.25, 3.0])
        assert np.allclose(fmt.dequantize(fmt.quantize(values)), values)

    def test_rounding_half_away_from_zero(self):
        fmt = QFormat(8, 0)
        assert fmt.quantize(0.5) == 1
        assert fmt.quantize(-0.5) == -1
        assert fmt.quantize(1.4) == 1

    def test_saturation_positive(self):
        fmt = QFormat(4, 0)
        assert fmt.quantize(100.0) == 7

    def test_saturation_negative(self):
        fmt = QFormat(4, 0)
        assert fmt.quantize(-100.0) == -8

    def test_quantization_error_bounded_by_half_lsb(self):
        fmt = QFormat(4, 8)
        values = np.linspace(-7.9, 7.9, 1001)
        err = np.abs(fmt.dequantize(fmt.quantize(values)) - values)
        assert err.max() <= fmt.scale / 2 + 1e-12

    def test_saturate_codes(self):
        fmt = QFormat(4, 0)
        assert fmt.saturate(np.array([100, -100, 3])).tolist() == [7, -8, 3]

    def test_wraps_two_complement(self):
        fmt = QFormat(4, 0)
        # 8 wraps to -8 in 4-bit two's complement.
        assert fmt.wraps(np.array([8])).tolist() == [-8]
        assert fmt.wraps(np.array([-9])).tolist() == [7]
        assert fmt.wraps(np.array([5])).tolist() == [5]

    def test_representable_mask(self):
        fmt = QFormat(4, 0)
        mask = fmt.representable(np.array([7.0, 8.0, -8.0, -9.0]))
        assert mask.tolist() == [True, False, True, False]

    def test_quantize_preserves_shape(self):
        fmt = QFormat(8, 8)
        arr = np.zeros((3, 4, 5))
        assert fmt.quantize(arr).shape == (3, 4, 5)

    def test_dequantize_dtype(self):
        fmt = QFormat(8, 2)
        out = fmt.dequantize(np.array([4], dtype=np.int64))
        assert out.dtype == np.float64
        assert out[0] == 1.0
