"""Unit tests for bit-level integer operations."""

import numpy as np
import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import (
    LN2_TERMS,
    LOG2E_TERMS,
    QFormat,
    arith_shift_right,
    clz_width,
    leading_one_position,
    rounding_shift_right,
    sat_add,
    sat_mul,
    sat_sub,
    shift_add_constant,
    shift_add_multiply,
    shift_left,
)

FMT8 = QFormat(8, 0)


class TestSaturatingOps:
    def test_sat_add_normal(self):
        assert sat_add(np.array([3]), np.array([4]), FMT8)[0] == 7

    def test_sat_add_saturates_high(self):
        assert sat_add(np.array([100]), np.array([100]), FMT8)[0] == 127

    def test_sat_add_saturates_low(self):
        assert sat_add(np.array([-100]), np.array([-100]), FMT8)[0] == -128

    def test_sat_sub(self):
        assert sat_sub(np.array([-100]), np.array([100]), FMT8)[0] == -128

    def test_sat_mul(self):
        assert sat_mul(np.array([12]), np.array([12]), FMT8)[0] == 127

    def test_rejects_float_input(self):
        with pytest.raises(FixedPointError):
            sat_add(np.array([1.5]), np.array([2]), FMT8)


class TestShifts:
    def test_arith_shift_floor_on_negative(self):
        # The paper's >>3 scaling: -1 >> 3 floors to -1, not 0.
        assert arith_shift_right(np.array([-1]), 3)[0] == -1
        assert arith_shift_right(np.array([-8]), 3)[0] == -1
        assert arith_shift_right(np.array([8]), 3)[0] == 1

    def test_shift_by_zero_identity(self):
        assert arith_shift_right(np.array([42]), 0)[0] == 42

    def test_rounding_shift_right(self):
        assert rounding_shift_right(np.array([5]), 1)[0] == 3   # 2.5 -> 3
        assert rounding_shift_right(np.array([4]), 1)[0] == 2

    def test_rounding_shift_no_bias(self):
        values = np.arange(-64, 65)
        out = rounding_shift_right(values, 3)
        # Mean error should be near zero (unbiased), unlike floor shift.
        err = out - values / 8.0
        assert abs(err.mean()) < 0.1

    def test_shift_left(self):
        assert shift_left(np.array([3]), 4)[0] == 48

    def test_negative_shift_rejected(self):
        with pytest.raises(FixedPointError):
            arith_shift_right(np.array([1]), -1)


class TestShiftAddMultiply:
    def test_log2e_constant_value(self):
        assert shift_add_constant(LOG2E_TERMS) == pytest.approx(1.4375)
        assert abs(shift_add_constant(LOG2E_TERMS) - np.log2(np.e)) < 0.006

    def test_ln2_constant_value(self):
        assert shift_add_constant(LN2_TERMS) == pytest.approx(0.6875)
        assert abs(shift_add_constant(LN2_TERMS) - np.log(2)) < 0.006

    def test_multiply_matches_constant_for_large_values(self):
        values = np.array([1 << 20, -(1 << 20)])
        out = shift_add_multiply(values, LOG2E_TERMS)
        expected = values * shift_add_constant(LOG2E_TERMS)
        assert np.abs(out - expected).max() <= len(LOG2E_TERMS)

    def test_identity_term(self):
        values = np.array([17, -9])
        assert shift_add_multiply(values, [(1, 0)]).tolist() == [17, -9]

    def test_empty_terms_rejected(self):
        with pytest.raises(FixedPointError):
            shift_add_multiply(np.array([1]), [])

    def test_bad_sign_rejected(self):
        with pytest.raises(FixedPointError):
            shift_add_multiply(np.array([1]), [(2, 0)])


class TestLeadingOne:
    def test_powers_of_two(self):
        values = np.array([1, 2, 4, 1024])
        assert leading_one_position(values).tolist() == [0, 1, 2, 10]

    def test_non_powers(self):
        assert leading_one_position(np.array([3]))[0] == 1
        assert leading_one_position(np.array([1023]))[0] == 9

    def test_matches_floor_log2(self):
        values = np.arange(1, 5000)
        assert np.array_equal(
            leading_one_position(values),
            np.floor(np.log2(values)).astype(np.int64),
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(FixedPointError):
            leading_one_position(np.array([0]))

    def test_exact_beyond_float53(self):
        # Regression: the float-log2 implementation returned the wrong
        # MSB for codes >= 2**53 (all-ones values round up to the next
        # power of two in float64).  The priority encoder must be exact
        # over the full int64 positive range.
        values = np.array([
            (1 << 53) - 1, 1 << 53, (1 << 54) - 1, (1 << 61) - 1, 1 << 62,
        ])
        assert leading_one_position(values).tolist() == [52, 53, 53, 60, 62]

    def test_clz(self):
        assert clz_width(np.array([1]), 8)[0] == 7
        assert clz_width(np.array([128]), 8)[0] == 0

    def test_clz_rejects_overwide(self):
        with pytest.raises(FixedPointError):
            clz_width(np.array([256]), 8)
