"""Hypothesis fuzzing of the scheduler/analytic-model agreement.

The closed-form cycle model must equal the event-timeline scheduler for
*every* configuration, not just the paper's point — this suite drives the
equivalence across randomized models and accelerator knobs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AcceleratorConfig, ModelConfig
from repro.core import (
    ffn_cycle_breakdown,
    mha_cycle_breakdown,
    schedule_ffn,
    schedule_mha,
)

model_configs = st.builds(
    lambda h, enc, dec, ff_mult: ModelConfig(
        "fuzz", d_model=64 * h, d_ff=64 * h * ff_mult, num_heads=h,
        num_encoder_layers=enc, num_decoder_layers=dec, max_seq_len=64,
    ),
    h=st.integers(1, 16),
    enc=st.integers(1, 6),
    dec=st.integers(0, 6),
    ff_mult=st.integers(1, 8),
)

acc_configs = st.builds(
    AcceleratorConfig,
    seq_len=st.sampled_from([8, 16, 32, 64, 128]),
    sa_cols=st.just(64),
    clock_mhz=st.sampled_from([100.0, 200.0, 300.0]),
    sa_drain_cycles=st.integers(0, 32),
    weight_load_cycles=st.integers(0, 64),
    pass_issue_cycles=st.integers(0, 8),
    softmax_pipeline_depth=st.integers(0, 64),
    layernorm_pipeline_depth=st.integers(0, 64),
    layernorm_mode=st.sampled_from(
        ["straightforward", "step_one", "step_two"]
    ),
    pass_overlap=st.booleans(),
    single_ported_buffers=st.booleans(),
    abft_protected=st.booleans(),
    abft_check_cycles=st.integers(0, 32),
)


class TestSchedulerAnalyticAgreement:
    @settings(max_examples=60, deadline=None)
    @given(model=model_configs, acc=acc_configs)
    def test_mha_always_matches(self, model, acc):
        assert (schedule_mha(model, acc).total_cycles
                == mha_cycle_breakdown(model, acc).total_cycles)

    def test_mha_matches_on_q_partitioned_softmax_stall(self):
        # Regression: at seq_len > sa_cols the softmax tail (s + depth)
        # outlasts the VWv pass for small d_model and the PV pass stalls;
        # the analytic model used to omit that term entirely.
        model = ModelConfig(
            "fuzz", d_model=64, d_ff=64, num_heads=1,
            num_encoder_layers=1, num_decoder_layers=0, max_seq_len=64,
        )
        acc = AcceleratorConfig(
            seq_len=128, sa_cols=64, sa_drain_cycles=0,
            weight_load_cycles=0, pass_issue_cycles=0,
            softmax_pipeline_depth=0, layernorm_pipeline_depth=0,
        )
        sched = schedule_mha(model, acc)
        breakdown = mha_cycle_breakdown(model, acc)
        assert breakdown.softmax_stall_cycles == 64
        assert sched.total_cycles == breakdown.total_cycles

    @settings(max_examples=60, deadline=None)
    @given(model=model_configs, acc=acc_configs)
    def test_ffn_always_matches(self, model, acc):
        assert (schedule_ffn(model, acc).total_cycles
                == ffn_cycle_breakdown(model, acc).total_cycles)

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, acc=acc_configs)
    def test_sa_events_never_overlap(self, model, acc):
        result = schedule_mha(model, acc)
        events = sorted(result.sa_events, key=lambda e: e.start)
        for prev, cur in zip(events, events[1:]):
            assert cur.start >= prev.end

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, acc=acc_configs)
    def test_utilization_bounded(self, model, acc):
        for result in (schedule_mha(model, acc), schedule_ffn(model, acc)):
            assert 0.0 < result.sa_utilization <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, acc=acc_configs)
    def test_overlap_never_slower(self, model, acc):
        import dataclasses

        with_overlap = dataclasses.replace(acc, pass_overlap=True)
        without = dataclasses.replace(acc, pass_overlap=False)
        assert (schedule_mha(model, with_overlap).total_cycles
                <= schedule_mha(model, without).total_cycles)
        assert (schedule_ffn(model, with_overlap).total_cycles
                <= schedule_ffn(model, without).total_cycles)
