"""ABFT checksum-GEMM tests: detect, locate, correct, refuse."""

import numpy as np
import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core.cycle_model import ffn_cycle_breakdown, mha_cycle_breakdown
from repro.errors import ReliabilityError
from repro.reliability import ABFTPassResult, ChecksumGemm, abft_cycle_overhead

RNG = np.random.default_rng(23)


def _operands(rows=8, k=16, n=8, lo=-50, hi=50):
    a = RNG.integers(lo, hi, size=(rows, k))
    b = RNG.integers(lo, hi, size=(k, n))
    return a, b


class TestCleanPass:
    def test_clean_pass_matches_gemm(self):
        a, b = _operands()
        result = ChecksumGemm(8, 8).run(a, b)
        assert isinstance(result, ABFTPassResult)
        assert not result.detected
        assert not result.corrected
        assert result.fault_location is None
        assert np.array_equal(result.product, a @ b)
        assert np.all(result.row_syndromes == 0)
        assert np.all(result.col_syndromes == 0)

    def test_guard_array_is_one_larger(self):
        gemm = ChecksumGemm(8, 8)
        assert gemm.sa.rows == 9
        assert gemm.sa.cols == 9

    def test_augmented_pass_costs_more_cycles(self):
        a, b = _operands()
        plain = ChecksumGemm(8, 8)
        protected_cycles = plain.run(a, b).compute_cycles
        # (s+1) + k + (n+1) - 2 vs s + k + n - 2
        assert protected_cycles == 8 + 1 + 16 + 8 + 1 - 2

    def test_narrow_tile_fits(self):
        a = RNG.integers(-50, 50, size=(8, 16))
        b = RNG.integers(-50, 50, size=(16, 5))
        result = ChecksumGemm(8, 8).run(a, b)
        assert np.array_equal(result.product, a @ b)


class TestSingleFaultCorrection:
    def test_accumulator_bit_flip_located_and_corrected(self):
        a, b = _operands()
        gemm = ChecksumGemm(8, 8)
        gemm.sa.inject_fault(3, 5, "bit_flip", bit=7)
        result = gemm.run(a, b)
        assert result.detected
        assert result.corrected
        assert result.fault_location == (3, 5)
        assert np.array_equal(result.product, a @ b)

    def test_every_body_cell_correctable(self):
        a, b = _operands(rows=4, k=8, n=4)
        for i in range(4):
            for j in range(4):
                gemm = ChecksumGemm(4, 4)
                gemm.sa.inject_fault(i, j, "bit_flip", bit=11)
                result = gemm.run(a, b)
                assert result.corrected, (i, j)
                assert result.fault_location == (i, j)
                assert np.array_equal(result.product, a @ b)

    def test_guard_row_fault_detected_body_clean(self):
        a, b = _operands(rows=4, k=8, n=4)
        gemm = ChecksumGemm(4, 4)
        gemm.sa.inject_fault(4, 2, "bit_flip", bit=3)  # checksum row
        result = gemm.run(a, b)
        assert result.detected
        assert result.corrected          # body needs no repair
        assert result.fault_location is None
        assert np.array_equal(result.product, a @ b)

    def test_guard_col_fault_detected_body_clean(self):
        a, b = _operands(rows=4, k=8, n=4)
        gemm = ChecksumGemm(4, 4)
        gemm.sa.inject_fault(1, 4, "bit_flip", bit=3)  # checksum column
        result = gemm.run(a, b)
        assert result.detected and result.corrected
        assert np.array_equal(result.product, a @ b)


class TestMemoryUpsets:
    def test_post_checksum_weight_upset_detected(self):
        # A corrupted streamed word fans its error down a whole output
        # row/column: multiple syndromes in one family - detected,
        # uncorrectable, never silent.
        a, b = _operands(rows=4, k=8, n=4)
        stream_b = b.copy()
        stream_b[3, 2] ^= 1 << 4
        result = ChecksumGemm(4, 4).run(a, b, stream_b=stream_b)
        assert result.detected
        assert not result.corrected

    def test_post_checksum_activation_upset_detected(self):
        a, b = _operands(rows=4, k=8, n=4)
        stream_a = a.copy()
        stream_a[2, 5] ^= 1 << 3
        result = ChecksumGemm(4, 4).run(a, b, stream_a=stream_a)
        assert result.detected
        assert not result.corrected

    def test_stream_shape_mismatch_rejected(self):
        a, b = _operands(rows=4, k=8, n=4)
        with pytest.raises(ReliabilityError):
            ChecksumGemm(4, 4).run(a, b, stream_a=a[:2])


class TestMultiFault:
    def test_two_body_faults_detected_not_corrected(self):
        a, b = _operands(rows=4, k=8, n=4)
        gemm = ChecksumGemm(4, 4)
        gemm.sa.inject_fault(0, 0, "bit_flip", bit=9)
        gemm.sa.inject_fault(2, 3, "bit_flip", bit=9)
        result = gemm.run(a, b)
        assert result.detected
        assert not result.corrected


class TestRefusals:
    def test_headroom_refusal(self):
        # s=64, k=4096 at full INT8 range: 127*127*4096*65 > 2^31.
        a = np.full((64, 4096), 127)
        b = np.full((4096, 64), 127)
        with pytest.raises(ReliabilityError):
            ChecksumGemm(64, 64).run(a, b)

    def test_shape_refusals(self):
        gemm = ChecksumGemm(4, 4)
        with pytest.raises(ReliabilityError):
            gemm.run(np.zeros((3, 8)), np.zeros((8, 4)))   # wrong rows
        with pytest.raises(ReliabilityError):
            gemm.run(np.zeros((4, 8)), np.zeros((8, 5)))   # too wide
        with pytest.raises(ReliabilityError):
            gemm.run(np.zeros((4, 8)), np.zeros((7, 4)))   # k mismatch
        with pytest.raises(ReliabilityError):
            ChecksumGemm(0, 4)


class TestCycleOverhead:
    def test_overhead_matches_cycle_model(self):
        model = transformer_base()
        acc = paper_accelerator()
        overhead = abft_cycle_overhead(model, acc)
        on = acc.with_updates(abft_protected=True)
        assert overhead.baseline_cycles == (
            mha_cycle_breakdown(model, acc).total_cycles
            + ffn_cycle_breakdown(model, acc).total_cycles
        )
        assert overhead.protected_cycles == (
            mha_cycle_breakdown(model, on).total_cycles
            + ffn_cycle_breakdown(model, on).total_cycles
        )
        assert overhead.overhead_cycles > 0
        assert overhead.overhead_fraction < 0.05

    def test_paper_point_overhead_pinned(self):
        overhead = abft_cycle_overhead(transformer_base(), paper_accelerator())
        assert overhead.baseline_cycles == 21578 + 39052
        assert overhead.protected_cycles == 22330 + 39372
        assert overhead.overhead_cycles == 1072
