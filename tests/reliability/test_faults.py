"""Fault-model tests: bit flips, stuck-at, transient vs persistent."""

import numpy as np
import pytest

from repro.core import (
    MemoryBank,
    ProcessingElement,
    ScalarSystolicArray,
    SystolicArray,
    WeightMemory,
    flip_bit,
)
from repro.core.memory import BiasMemory
from repro.errors import (
    FixedPointError,
    MemoryModelError,
    ReliabilityError,
    ShapeError,
)
from repro.fixedpoint import ExpUnit, InverseSqrtLUT
from repro.reliability import FaultEvent, FaultInjector, FaultSpec

RNG = np.random.default_rng(17)


class TestFlipBit:
    def test_flips_and_restores(self):
        for value in (0, 1, -1, 37, -128, 127, 2**30):
            for bit in (0, 3, 31):
                flipped = flip_bit(value, bit, 32)
                assert flipped != value
                assert flip_bit(flipped, bit, 32) == value

    def test_sign_bit_flip(self):
        assert flip_bit(0, 7, 8) == -128
        assert flip_bit(-128, 7, 8) == 0

    def test_bad_bit_rejected(self):
        with pytest.raises(FixedPointError):
            flip_bit(0, 8, 8)
        with pytest.raises(FixedPointError):
            flip_bit(0, -1, 8)


class TestPEFaults:
    def test_bit_flip_lands_at_drain(self):
        pe = ProcessingElement()
        pe.step(3, 4)
        pe.inject_fault("bit_flip", bit=1)
        assert pe.acc == 12            # register itself intact
        assert pe.drain() == 12 ^ 2    # upset on the read path

    def test_stuck_zero_stops_accumulation(self):
        pe = ProcessingElement()
        pe.inject_fault("stuck_zero")
        pe.step(5, 5)
        assert pe.drain() == 0

    def test_clear_fault(self):
        pe = ProcessingElement()
        pe.inject_fault("stuck_max")
        pe.clear_fault()
        pe.step(2, 3)
        assert pe.drain() == 6

    def test_invalid_fault_rejected(self):
        pe = ProcessingElement()
        with pytest.raises(FixedPointError):
            pe.inject_fault("gamma_ray")
        with pytest.raises(FixedPointError):
            pe.inject_fault("bit_flip", bit=99)


class TestArrayBitFlip:
    def test_single_bit_flip_is_one_lsb_power(self):
        a = RNG.integers(1, 50, size=(6, 10))
        b = RNG.integers(1, 50, size=(10, 6))
        sa = SystolicArray(6, 6)
        sa.inject_fault(2, 4, "bit_flip", bit=5)
        product = sa.run_pass(a, b).product
        diff = product - a @ b
        assert np.count_nonzero(diff) == 1
        assert abs(diff[2, 4]) == 32

    def test_transient_clears_after_one_pass(self):
        a = RNG.integers(1, 50, size=(4, 8))
        b = RNG.integers(1, 50, size=(8, 4))
        sa = SystolicArray(4, 4)
        sa.inject_fault(1, 1, "bit_flip", bit=3, transient=True)
        assert not np.array_equal(sa.run_pass(a, b).product, a @ b)
        assert sa.fault_count == 0
        assert np.array_equal(sa.run_pass(a, b).product, a @ b)

    def test_persistent_fault_survives_passes(self):
        a = RNG.integers(1, 50, size=(4, 8))
        b = RNG.integers(1, 50, size=(8, 4))
        sa = SystolicArray(4, 4)
        sa.inject_fault(0, 0, "bit_flip", bit=2)
        for _ in range(3):
            assert not np.array_equal(sa.run_pass(a, b).product, a @ b)
        assert sa.fault_count == 1

    def test_scalar_array_matches_vectorized(self):
        # The register-level grid and the vectorized model must corrupt
        # identically for every mode.
        a = RNG.integers(1, 20, size=(4, 6))
        b = RNG.integers(1, 20, size=(6, 4))
        for mode, bit in (("stuck_zero", 0), ("stuck_max", 0),
                          ("bit_flip", 9)):
            vec = SystolicArray(4, 4)
            scalar = ScalarSystolicArray(4, 4)
            vec.inject_fault(2, 1, mode, bit=bit)
            scalar.inject_fault(2, 1, mode, bit=bit)
            assert np.array_equal(
                vec.run_pass(a, b).product,
                scalar.run_pass(a, b).product,
            ), mode

    def test_bad_bit_rejected(self):
        with pytest.raises(ShapeError):
            SystolicArray(4, 4).inject_fault(0, 0, "bit_flip", bit=32)


class TestMemoryFaults:
    def test_bank_bit_flip_persists_until_overwrite(self):
        bank = MemoryBank("test", (4, 4), 8, 4)
        bank.write((1, 2), np.array(7))
        bank.flip_stored_bit((1, 2), 3)
        assert bank.read((1, 2)) == 7 ^ 8
        bank.write((1, 2), np.array(7))
        assert bank.read((1, 2)) == 7

    def test_bank_validation(self):
        bank = MemoryBank("test", (4, 4), 8, 4)
        with pytest.raises(MemoryModelError):
            bank.flip_stored_bit((0, 0), 8)
        with pytest.raises(MemoryModelError):
            bank.flip_stored_bit((slice(None), 0), 0)

    def test_weight_tile_bit_flip(self):
        wm = WeightMemory()
        wm.store_tile("w", 0, np.full((4, 4), 5))
        wm.flip_tile_bit("w", 0, 1, 1, 1)
        tile = wm.load_tile("w", 0)
        assert tile[1, 1] == 5 ^ 2
        assert np.count_nonzero(tile != 5) == 1

    def test_weight_tile_validation(self):
        wm = WeightMemory()
        wm.store_tile("w", 0, np.zeros((2, 2)))
        with pytest.raises(MemoryModelError):
            wm.flip_tile_bit("w", 1, 0, 0, 0)
        with pytest.raises(MemoryModelError):
            wm.flip_tile_bit("w", 0, 2, 0, 0)
        with pytest.raises(MemoryModelError):
            wm.flip_tile_bit("w", 0, 0, 0, 8)

    def test_bias_corrupt(self):
        bm = BiasMemory()
        bm.store("b", 0, np.arange(4.0))
        bm.corrupt("b", 0, 2, 99.5)
        assert bm.load("b", 0)[2] == 99.5
        with pytest.raises(MemoryModelError):
            bm.corrupt("b", 0, 4, 0.0)


class TestUnitHooks:
    def test_exp_hook_changes_output(self):
        injector = FaultInjector(3)
        hook, events = injector.unit_hook(
            FaultSpec("exp_unit"), ExpUnit().out_fmt.total_bits
        )
        x = np.linspace(-4.0, 0.0, 32)
        healthy = ExpUnit().evaluate(x)
        faulty = ExpUnit(fault_hook=hook).evaluate(x)
        assert len(events) == 1
        assert not np.array_equal(healthy, faulty)

    def test_isqrt_hook_changes_output(self):
        injector = FaultInjector(3)
        unit = InverseSqrtLUT()
        hook, events = injector.unit_hook(
            FaultSpec("isqrt_lut"), unit.out_fmt.total_bits
        )
        x = np.linspace(0.5, 50.0, 32)
        faulty = InverseSqrtLUT(fault_hook=hook).evaluate(x)
        assert not np.array_equal(unit.evaluate(x), faulty)


class TestInjectorDeterminism:
    def test_same_seed_same_events(self):
        specs = [FaultSpec("sa_accumulator"),
                 FaultSpec("sa_accumulator", mode="multi_bit_flip"),
                 FaultSpec("sa_multiplier", mode="stuck_at")]
        events = []
        for _ in range(2):
            injector = FaultInjector(99)
            batch = []
            for spec in specs:
                sa = SystolicArray(8, 8)
                batch.append(injector.inject_sa(sa, spec))
            events.append(batch)
        assert events[0] == events[1]

    def test_event_is_concrete(self):
        injector = FaultInjector(0)
        sa = SystolicArray(8, 8)
        event = injector.inject_sa(
            sa, FaultSpec("sa_accumulator", mode="multi_bit_flip",
                          num_bits=3)
        )
        assert isinstance(event, FaultEvent)
        assert len(event.coords) == 3
        assert len(set(event.coords)) == 3
        assert sa.fault_count == 3

    def test_spec_validation(self):
        with pytest.raises(ReliabilityError):
            FaultSpec("cosmic_ray")
        with pytest.raises(ReliabilityError):
            FaultSpec("sa_accumulator", mode="meltdown")
        with pytest.raises(ReliabilityError):
            FaultSpec("sa_accumulator", num_bits=0)
        injector = FaultInjector(0)
        with pytest.raises(ReliabilityError):
            injector.inject_sa(SystolicArray(4, 4), FaultSpec("exp_unit"))
        with pytest.raises(ReliabilityError):
            injector.unit_hook(FaultSpec("isqrt_lut", mode="stuck_at"), 8)
