"""Campaign tests: determinism, coverage statistics, end-to-end impact."""

import pytest

from repro.errors import ReliabilityError
from repro.reliability import (
    DEFAULT_SITES,
    SITE_MODES,
    CampaignSpec,
    resblock_fault_impact,
    run_campaign,
)

SA_SPEC = CampaignSpec(
    seq_len=16, depth=16, cols=16, trials=12,
    sites=("sa_accumulator", "sa_multiplier"), seed=7,
)


class TestDeterminism:
    def test_same_seed_replays_identically(self):
        assert run_campaign(SA_SPEC).outcomes == run_campaign(SA_SPEC).outcomes

    def test_different_seed_differs(self):
        other = CampaignSpec(
            seq_len=16, depth=16, cols=16, trials=12,
            sites=("sa_accumulator",), seed=8,
        )
        base = CampaignSpec(
            seq_len=16, depth=16, cols=16, trials=12,
            sites=("sa_accumulator",), seed=7,
        )
        assert run_campaign(base).outcomes != run_campaign(other).outcomes


class TestCoverage:
    def test_abft_covers_sa_datapath(self):
        result = run_campaign(SA_SPEC)
        assert result.detection_rate(site="sa_accumulator") == 1.0
        assert result.detection_rate(site="sa_multiplier") == 1.0
        assert result.silent_rate(site="sa_accumulator") == 0.0

    def test_single_bit_flips_also_corrected(self):
        result = run_campaign(SA_SPEC)
        assert result.correction_rate(
            site="sa_accumulator", mode="bit_flip"
        ) == 1.0

    def test_memory_upsets_detected_never_silent(self):
        spec = CampaignSpec(
            seq_len=16, depth=16, cols=16, trials=12,
            sites=("weight_memory", "data_memory"), seed=7,
        )
        result = run_campaign(spec)
        for site in spec.sites:
            assert result.detection_rate(site=site) == 1.0
            assert result.silent_rate(site=site) == 0.0

    def test_units_outside_abft_scope_are_silent(self):
        spec = CampaignSpec(
            seq_len=16, depth=16, cols=16, trials=8,
            sites=("exp_unit", "isqrt_lut", "bias_memory"), seed=7,
        )
        result = run_campaign(spec)
        for site in spec.sites:
            assert result.detection_rate(site=site) == 0.0

    def test_without_abft_everything_is_silent(self):
        spec = CampaignSpec(
            seq_len=16, depth=16, cols=16, trials=12,
            sites=("sa_accumulator",), abft=False, seed=7,
        )
        result = run_campaign(spec)
        assert result.detection_rate(site="sa_accumulator") == 0.0
        assert result.silent_rate(site="sa_accumulator") > 0.9


class TestSweepShape:
    def test_rate_zero_injects_nothing(self):
        spec = CampaignSpec(
            seq_len=8, depth=8, cols=8, trials=6,
            sites=("sa_accumulator",), rates=(0.0,), seed=0,
        )
        result = run_campaign(spec)
        assert not any(o.injected for o in result.outcomes)
        assert all(o.max_abs_error == 0.0 for o in result.outcomes)

    def test_outcome_count(self):
        spec = CampaignSpec(
            seq_len=8, depth=8, cols=8, trials=5, rates=(0.5, 1.0),
            sites=("sa_accumulator", "exp_unit"), seed=0,
        )
        result = run_campaign(spec)
        expected = sum(
            len(SITE_MODES[s]) * len(spec.rates) * spec.trials
            for s in spec.sites
        )
        assert len(result.outcomes) == expected
        rows = result.summary_rows()
        assert len(rows) == sum(
            len(SITE_MODES[s]) * len(spec.rates) for s in spec.sites
        )

    def test_default_sites_cover_all(self):
        assert set(DEFAULT_SITES) == set(SITE_MODES)

    def test_spec_validation(self):
        with pytest.raises(ReliabilityError):
            CampaignSpec(trials=0)
        with pytest.raises(ReliabilityError):
            CampaignSpec(sites=("warp_core",))
        with pytest.raises(ReliabilityError):
            CampaignSpec(rates=(1.5,))
        with pytest.raises(ReliabilityError):
            CampaignSpec(seq_len=0)


class TestEndToEnd:
    def test_resblock_impact_is_deterministic_and_nonzero(self):
        first = resblock_fault_impact(seed=1, seq_len=8)
        again = resblock_fault_impact(seed=1, seq_len=8)
        assert first == again
        assert first.max_abs_error > 0.0
        assert 0 < first.rows_affected <= 8
