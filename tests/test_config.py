"""Configuration tests: Table I presets and accelerator parameters."""

import pytest

from repro.config import (
    AcceleratorConfig,
    ModelConfig,
    TABLE1_PRESETS,
    bert_base,
    bert_large,
    paper_accelerator,
    preset,
    transformer_base,
    transformer_big,
)
from repro.errors import ConfigError


class TestTable1Presets:
    @pytest.mark.parametrize("config,d_model,d_ff,h", [
        (transformer_base(), 512, 2048, 8),
        (transformer_big(), 1024, 4096, 16),
        (bert_base(), 768, 3072, 12),
        (bert_large(), 1024, 4096, 16),
    ])
    def test_table1_rows(self, config, d_model, d_ff, h):
        assert config.d_model == d_model
        assert config.d_ff == d_ff
        assert config.num_heads == h

    def test_all_presets_follow_64h_pattern(self):
        # Section III's key structural observation.
        for config in TABLE1_PRESETS.values():
            assert config.d_model == 64 * config.num_heads
            assert config.head_dim == 64

    def test_all_presets_follow_dff_pattern(self):
        for config in TABLE1_PRESETS.values():
            assert config.follows_dff_pattern
            assert config.d_ff == 256 * config.num_heads

    def test_block_counts(self):
        base = transformer_base()
        assert base.num_w1_blocks == 4 * base.num_heads
        assert base.num_w2_blocks == base.num_heads

    def test_bert_is_encoder_only(self):
        assert bert_base().num_decoder_layers == 0
        assert bert_base().num_encoder_layers == 12

    def test_preset_lookup(self):
        assert preset("Transformer-Base").d_model == 512
        with pytest.raises(ConfigError):
            preset("gpt-5")


class TestModelConfigValidation:
    def test_rejects_non_64_head_dim(self):
        with pytest.raises(ConfigError):
            ModelConfig("bad", d_model=512, d_ff=2048, num_heads=16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ConfigError):
            ModelConfig("bad", d_model=100, d_ff=400, num_heads=3)

    def test_rejects_indivisible_dff(self):
        with pytest.raises(ConfigError):
            ModelConfig("bad", d_model=64, d_ff=100, num_heads=1)

    def test_rejects_bad_dropout(self):
        with pytest.raises(ConfigError):
            ModelConfig("bad", d_model=64, d_ff=256, num_heads=1,
                        dropout=1.0)

    def test_with_updates(self):
        updated = transformer_base().with_updates(max_seq_len=128)
        assert updated.max_seq_len == 128
        assert updated.d_model == 512

    def test_mac_counts(self):
        base = transformer_base()
        # FFN: 2 GEMMs of s*d_model*d_ff MACs.
        assert base.ffn_macs(64) == 2 * 64 * 512 * 2048
        # MHA: 4 projection groups + 2 attention matmuls.
        expected = (
            3 * 8 * 64 * 512 * 64 + 2 * 8 * 64 * 64 * 64 + 64 * 512 * 512
        )
        assert base.mha_macs(64) == expected


class TestAcceleratorConfig:
    def test_paper_defaults(self):
        acc = paper_accelerator()
        assert acc.seq_len == 64
        assert acc.sa_cols == 64
        assert acc.clock_mhz == 200.0
        assert acc.num_pes == 4096

    def test_cycles_to_us(self):
        acc = paper_accelerator()
        assert acc.cycles_to_us(21_344) == pytest.approx(106.72)

    def test_clock_period(self):
        assert paper_accelerator().clock_period_us == pytest.approx(0.005)

    def test_invalid_layernorm_mode(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(layernorm_mode="magic")

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(sa_fill_cycles=-1)

    def test_accumulator_width_check(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(act_bits=8, weight_bits=8, acc_bits=15)

    def test_invalid_clock(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(clock_mhz=0)

    def test_with_updates_revalidates(self):
        acc = paper_accelerator()
        with pytest.raises(ConfigError):
            acc.with_updates(layernorm_mode="nope")
