"""Hypothesis property tests spanning the core accelerator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SystolicArray,
    expected_pass_cycles,
    partition_columns,
    plan_qkt,
    qkt_multiply_ratio_exact,
    reassemble_columns,
)
from repro.nmt import SyntheticTranslationTask, corpus_bleu
from repro.quant import QuantParams


class TestSystolicArrayProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        s=st.integers(1, 12),
        k=st.integers(1, 24),
        n=st.integers(1, 12),
        seed=st.integers(0, 2**31),
    )
    def test_sa_equals_numpy_for_any_shape(self, s, k, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-128, 128, size=(s, k))
        b = rng.integers(-128, 128, size=(k, n))
        sa = SystolicArray(s, max(n, 1))
        result = sa.run_pass(a, b)
        assert np.array_equal(result.product, a @ b)
        assert result.compute_cycles == expected_pass_cycles(s, k, n)

    @settings(max_examples=30, deadline=None)
    @given(s=st.integers(1, 64), k=st.integers(1, 512), n=st.integers(1, 64))
    def test_utilization_never_exceeds_one(self, s, k, n):
        useful = s * n * k
        cycles = expected_pass_cycles(s, k, n)
        assert useful <= cycles * s * n


class TestPartitionProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.integers(1, 32),
        blocks=st.integers(1, 8),
        block_cols=st.sampled_from([16, 32, 64]),
        seed=st.integers(0, 2**31),
    )
    def test_partition_roundtrip(self, rows, blocks, block_cols, seed):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(rows, blocks * block_cols))
        parts = partition_columns(w, "W", block_cols)
        assert len(parts) == blocks
        assert np.array_equal(reassemble_columns(parts), w)

    @settings(max_examples=50)
    @given(s=st.integers(1, 1024))
    def test_qkt_plan_covers_all_rows(self, s):
        plan = plan_qkt(s)
        assert plan.num_passes * 64 >= min(s, plan.num_passes * 64)
        if s <= 64:
            assert plan.num_passes == 1
        else:
            assert plan.num_passes == -(-s // 64)

    @settings(max_examples=50)
    @given(s=st.integers(1, 256), h=st.sampled_from([8, 12, 16]))
    def test_eq3_ratio_in_unit_interval(self, s, h):
        ratio = qkt_multiply_ratio_exact(s, h)
        assert 0.0 < ratio < 1.0


class TestQuantProperties:
    @settings(max_examples=50)
    @given(
        seed=st.integers(0, 2**31),
        scale_exp=st.floats(-3, 3),
    )
    def test_int_gemm_matches_fake_quant(self, seed, scale_exp):
        from repro.quant import int_gemm

        rng = np.random.default_rng(seed)
        x = rng.normal(size=(3, 4)) * 10 ** scale_exp
        w = rng.normal(size=(4, 2))
        px = QuantParams.from_tensor(x)
        pw = QuantParams.from_tensor(w)
        got = int_gemm(px.quantize(x), pw.quantize(w), px, pw)
        expected = px.fake_quantize(x) @ pw.fake_quantize(w)
        assert np.allclose(got, expected, atol=1e-9)

    @settings(max_examples=50)
    @given(seed=st.integers(0, 2**31))
    def test_quantize_error_bound(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=64) * rng.uniform(0.01, 100)
        params = QuantParams.from_tensor(x)
        err = np.abs(params.fake_quantize(x) - x).max()
        assert err <= params.scale / 2 + 1e-12


class TestTaskProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_translation_is_deterministic_function(self, seed):
        task = SyntheticTranslationTask(num_words=8)
        rng = np.random.default_rng(seed)
        src = task.sample_source(rng)
        assert task.translate(src) == task.translate(src)
        assert len(task.translate(src)) == len(src)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_bleu_bounds_and_identity(self, seed):
        task = SyntheticTranslationTask(num_words=8)
        rng = np.random.default_rng(seed)
        refs = [task.translate(task.sample_source(rng)) for _ in range(4)]
        assert corpus_bleu(refs, refs) == 100.0
        shuffled = [list(reversed(r)) for r in refs]
        score = corpus_bleu(shuffled, refs)
        assert 0.0 <= score < 100.0
