"""Regression lock on the README/EXPERIMENTS headline numbers.

If a model change moves any headline reproduction figure, this file fails
and the documentation must be updated alongside — keeping the published
claims and the code permanently in sync.
"""

import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core import (
    estimate_power,
    estimate_top,
    schedule_ffn,
    schedule_mha,
)
from repro.gpu_model import ffn_latency_us, mha_latency_us, v100_batch1


@pytest.fixture(scope="module")
def model():
    return transformer_base()


@pytest.fixture(scope="module")
def acc():
    return paper_accelerator()


class TestHeadlineCycles:
    def test_mha_cycles_exact(self, model, acc):
        assert schedule_mha(model, acc).total_cycles == 21_578

    def test_ffn_cycles_exact(self, model, acc):
        assert schedule_ffn(model, acc).total_cycles == 39_052

    def test_mha_deviation_from_paper(self, model, acc):
        assert schedule_mha(model, acc).total_cycles / 21_344 == \
            pytest.approx(1.011, abs=0.001)

    def test_ffn_deviation_from_paper(self, model, acc):
        assert schedule_ffn(model, acc).total_cycles / 42_099 == \
            pytest.approx(0.928, abs=0.001)


class TestHeadlineSpeedups:
    def test_table3_speedups(self, model, acc):
        spec = v100_batch1()
        mha_speedup = (mha_latency_us(model, 64, spec)
                       / schedule_mha(model, acc).latency_us(200.0))
        ffn_speedup = (ffn_latency_us(model, 64, spec)
                       / schedule_ffn(model, acc).latency_us(200.0))
        assert mha_speedup == pytest.approx(14.5, abs=0.2)
        assert ffn_speedup == pytest.approx(3.6, abs=0.2)


class TestHeadlineResources:
    def test_top_row(self, model, acc):
        top = estimate_top(model, acc)["top"]
        assert top.lut == 460_776
        assert top.registers == 216_352
        assert top.bram == pytest.approx(527.5)
        assert top.dsp == 129

    def test_sa_row(self, model, acc):
        sa = estimate_top(model, acc)["sa"]
        assert sa.lut == 417_792
        assert sa.registers == 172_032

    def test_weight_memory_456_brams(self, model, acc):
        assert estimate_top(model, acc)["weight_memory"].bram == 456


class TestHeadlinePower:
    def test_total_and_split(self, model, acc):
        power = estimate_power(model, acc)
        assert power.total_w == pytest.approx(16.7, abs=0.3)
        assert power.dynamic_w == pytest.approx(13.3, abs=0.3)
        assert power.static_w == pytest.approx(3.4)
