"""Resource model tests against the paper's Table II shape."""

import pytest

from repro.config import paper_accelerator, transformer_base, transformer_big
from repro.core import (
    PAPER_TABLE2,
    XCVU13P,
    accumulator_bits,
    estimate_layernorm,
    estimate_softmax,
    estimate_systolic_array,
    estimate_top,
    estimate_weight_memory,
    utilization_fractions,
)
from repro.errors import ConfigError


@pytest.fixture
def model():
    return transformer_base()


@pytest.fixture
def acc():
    return paper_accelerator()


@pytest.fixture
def estimates(model, acc):
    return estimate_top(model, acc)


class TestAccumulatorSizing:
    def test_k2048_needs_25_bits(self):
        assert accumulator_bits(2048) == 26

    def test_k512_needs_fewer(self):
        assert accumulator_bits(512) < accumulator_bits(4096)

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            accumulator_bits(0)


class TestMagnitudes:
    """Each module within a loose band of the published figures."""

    @pytest.mark.parametrize("module,resource,tolerance", [
        ("sa", "lut", 0.10), ("sa", "registers", 0.10),
        ("softmax", "lut", 0.15), ("softmax", "registers", 0.15),
        ("layernorm", "lut", 0.15), ("layernorm", "dsp", 0.0),
        ("weight_memory", "bram", 0.0),
        ("top", "lut", 0.10), ("top", "registers", 0.10),
        ("top", "bram", 0.10),
    ])
    def test_within_band(self, estimates, module, resource, tolerance):
        ours = estimates[module].as_dict()[resource]
        paper = PAPER_TABLE2[module][resource]
        assert abs(ours - paper) <= tolerance * paper + 1e-9

    def test_layernorm_dsp_exactly_129(self, estimates):
        # 2 DSP multipliers per row lane + 1 shared: 2 * 64 + 1.
        assert estimates["layernorm"].dsp == 129

    def test_sa_uses_no_dsp_or_bram(self, estimates):
        assert estimates["sa"].dsp == 0
        assert estimates["sa"].bram == 0

    def test_softmax_multiplier_free(self, estimates):
        assert estimates["softmax"].dsp == 0


class TestShape:
    """The Table II *shape*: rankings and dominance relations."""

    def test_sa_dominates_lut(self, estimates):
        top_lut = estimates["top"].lut
        assert estimates["sa"].lut / top_lut > 0.8

    def test_softmax_bigger_than_layernorm_logic(self, estimates):
        assert estimates["softmax"].lut > estimates["layernorm"].lut
        assert estimates["softmax"].registers > estimates["layernorm"].registers

    def test_weight_memory_dominates_bram(self, estimates):
        assert estimates["weight_memory"].bram > estimates["top"].bram / 2

    def test_layernorm_owns_all_dsps(self, estimates):
        assert estimates["top"].dsp == estimates["layernorm"].dsp

    def test_top_fits_device(self, estimates):
        top = estimates["top"]
        assert top.lut < XCVU13P["lut"]
        assert top.registers < XCVU13P["registers"]
        assert top.bram < XCVU13P["bram"]
        assert top.dsp < XCVU13P["dsp"]

    def test_utilization_fractions(self, estimates):
        fractions = utilization_fractions(estimates)
        # Paper: 471,563 / 1,728,000 ~ 27% LUT.
        assert 0.2 < fractions["top"]["lut"] < 0.35
        assert fractions["sa"]["dsp"] == 0.0


class TestScaling:
    def test_bigger_model_needs_more_weight_bram(self, acc):
        base = estimate_weight_memory(transformer_base(), acc)
        big = estimate_weight_memory(transformer_big(), acc)
        assert big.bram > 2 * base.bram

    def test_sa_scales_with_rows(self, model):
        small = estimate_systolic_array(
            model, paper_accelerator().with_updates(seq_len=32)
        )
        large = estimate_systolic_array(model, paper_accelerator())
        assert large.lut == 2 * small.lut

    def test_softmax_scales_with_lanes(self):
        small = estimate_softmax(paper_accelerator().with_updates(seq_len=32))
        large = estimate_softmax(paper_accelerator())
        assert large.lut == 2 * small.lut

    def test_layernorm_dsp_scales_with_lanes(self, model):
        small = estimate_layernorm(
            model, paper_accelerator().with_updates(seq_len=32)
        )
        assert small.dsp == 65

    def test_estimate_addition(self, estimates):
        total = estimates["sa"] + estimates["softmax"]
        assert total.lut == estimates["sa"].lut + estimates["softmax"].lut
