"""Self-verification harness tests."""


from repro.core.verification import (
    CheckResult,
    run_selftest,
    selftest_passed,
)


class TestSelfTest:
    def test_all_checks_pass(self):
        results = run_selftest(seed=0)
        assert selftest_passed(results), [
            (r.name, r.detail) for r in results if not r.passed
        ]

    def test_eight_checks_present(self):
        names = [r.name for r in run_selftest(seed=1)]
        assert names == [
            "quantized-vs-fp32",
            "accelerator-vs-quant",
            "cycle-accurate-sa",
            "scheduler-vs-analytic",
            "streaming-vs-batch",
            "statcheck",
            "telemetry-attribution",
            "cluster-serving",
        ]

    def test_different_seed_still_passes(self):
        assert selftest_passed(run_selftest(seed=99))

    def test_passed_helper(self):
        good = [CheckResult("a", True, "")]
        bad = good + [CheckResult("b", False, "")]
        assert selftest_passed(good)
        assert not selftest_passed(bad)

    def test_cli_selftest(self, capsys):
        from repro.cli import main

        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out
