"""Adder-bank and ReLU unit tests."""

import numpy as np
import pytest

from repro.core import AdderBank, ReLUUnit
from repro.errors import ShapeError


class TestAdderBank:
    def test_bias_add_scalar_broadcast(self):
        bank = AdderBank(lanes=4)
        col = np.array([1, 2, 3, 4])
        assert np.array_equal(bank.add_column(col, np.int64(10)),
                              [11, 12, 13, 14])

    def test_residual_add_vector(self):
        bank = AdderBank(lanes=3)
        out = bank.add_column(np.array([1, 2, 3]), np.array([10, 20, 30]))
        assert np.array_equal(out, [11, 22, 33])

    def test_saturation(self):
        bank = AdderBank(lanes=1, width_bits=8)
        assert bank.add_column(np.array([120]), np.array([100]))[0] == 127
        assert bank.add_column(np.array([-120]), np.array([-100]))[0] == -128

    def test_lane_mismatch_rejected(self):
        bank = AdderBank(lanes=4)
        with pytest.raises(ShapeError):
            bank.add_column(np.zeros(3, dtype=np.int64), np.int64(0))

    def test_addend_shape_rejected(self):
        bank = AdderBank(lanes=4)
        with pytest.raises(ShapeError):
            bank.add_column(np.zeros(4, dtype=np.int64),
                            np.zeros(2, dtype=np.int64))

    def test_invalid_construction(self):
        with pytest.raises(ShapeError):
            AdderBank(lanes=0)
        with pytest.raises(ShapeError):
            AdderBank(lanes=4, width_bits=1)


class TestReLUUnit:
    def test_clamps_negatives(self):
        unit = ReLUUnit(lanes=4)
        out = unit.apply_column(np.array([-5, 0, 3, -1]))
        assert np.array_equal(out, [0, 0, 3, 0])

    def test_lane_mismatch_rejected(self):
        unit = ReLUUnit(lanes=4)
        with pytest.raises(ShapeError):
            unit.apply_column(np.zeros(5, dtype=np.int64))

    def test_invalid_lanes(self):
        with pytest.raises(ShapeError):
            ReLUUnit(lanes=0)
