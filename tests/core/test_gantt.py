"""ASCII Gantt rendering tests."""

import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core import schedule_ffn, schedule_mha
from repro.core.gantt import gantt_lines, render_gantt
from repro.core.scheduler import ScheduleResult
from repro.errors import ScheduleError


@pytest.fixture
def mha():
    return schedule_mha(transformer_base(), paper_accelerator())


class TestRenderGantt:
    def test_all_tracks_present(self, mha):
        text = render_gantt(mha)
        assert "sa " in text
        assert "softmax" in text
        assert "layernorm" in text

    def test_total_cycles_in_header(self, mha):
        assert f"{mha.total_cycles:,}" in render_gantt(mha)

    def test_track_rows_share_width(self, mha):
        lines = gantt_lines(mha, width=80)
        bars = [l for l in lines if l.rstrip().endswith("|")]
        assert len({len(l.rstrip()) for l in bars}) == 1

    def test_layernorm_at_the_end(self, mha):
        lines = gantt_lines(mha, width=60)
        ln_row = next(l for l in lines if l.startswith("layernorm"))
        bar = ln_row.split("|")[1]
        assert "L" in bar[-4:]
        assert "L" not in bar[:30]

    def test_sa_mostly_busy(self, mha):
        lines = gantt_lines(mha, width=100)
        sa_row = next(l for l in lines if l.startswith("sa"))
        bar = sa_row.split("|")[1]
        assert bar.count("#") > 90  # the paper's "hardly stops running"

    def test_many_events_summarized(self, mha):
        text = render_gantt(mha)
        assert "48 SA passes" in text

    def test_few_events_enumerated(self):
        from repro.config import AcceleratorConfig, ModelConfig

        model = ModelConfig("t", d_model=64, d_ff=256, num_heads=1,
                            max_seq_len=16)
        result = schedule_ffn(model, AcceleratorConfig(seq_len=16))
        text = render_gantt(result)
        assert "w1.0" in text and "w2.0" in text

    def test_empty_schedule_rejected(self):
        with pytest.raises(ScheduleError):
            render_gantt(ScheduleResult(block="mha"))

    def test_too_narrow_rejected(self, mha):
        with pytest.raises(ScheduleError):
            render_gantt(mha, width=5)
