"""Deployment-image tests: compile, save, load, and run standalone."""

import numpy as np
import pytest

from repro.config import AcceleratorConfig
from repro.core import (
    TransformerAccelerator,
    export_image,
    image_bytes,
    load_image,
    save_image,
)
from repro.errors import QuantizationError
from repro.quant import QuantizedTransformer

S = 12


@pytest.fixture
def image_dict(calibrated_quant):
    return export_image(calibrated_quant)


class TestExport:
    def test_requires_calibration(self, small_transformer):
        with pytest.raises(QuantizationError):
            export_image(QuantizedTransformer(small_transformer))

    def test_counts_recorded(self, image_dict):
        # 1 encoder layer + 1 decoder layer.
        assert int(image_dict["count.enc_mha"]) == 1
        assert int(image_dict["count.dec_cross"]) == 1
        assert int(image_dict["count.dec_ffn"]) == 1

    def test_weights_stored_as_int8(self, image_dict):
        assert image_dict["enc_mha.0.w_q"].dtype == np.int8
        assert image_dict["enc_ffn.0.w1"].dtype == np.int8

    def test_image_bytes_dominated_by_weights(self, image_dict,
                                              small_model_config):
        d, dff = small_model_config.d_model, small_model_config.d_ff
        weight_bytes = 3 * 4 * d * d + 2 * 2 * d * dff
        assert image_bytes(image_dict) >= weight_bytes


class TestRoundTrip:
    def test_save_load(self, calibrated_quant, tmp_path):
        path = tmp_path / "model.img.npz"
        count = save_image(calibrated_quant, path)
        stacks = load_image(path)
        assert count > 0
        assert len(stacks["enc_mha"]) == 1
        assert len(stacks["dec_self"]) == 1
        block = stacks["enc_mha"][0]
        original = calibrated_quant.enc_mha[0]
        assert np.array_equal(
            block.weights["q"].codes, original.weights["q"].codes
        )
        assert block.weights["q"].params.scale == pytest.approx(
            original.weights["q"].params.scale
        )

    def test_bad_version_rejected(self, calibrated_quant, tmp_path):
        image = export_image(calibrated_quant)
        image["image_version"] = np.int64(999)
        path = tmp_path / "bad.npz"
        np.savez_compressed(str(path), **image)
        with pytest.raises(QuantizationError):
            load_image(path)

    def test_missing_tap_raises(self, calibrated_quant, tmp_path):
        path = tmp_path / "m.npz"
        save_image(calibrated_quant, path)
        block = load_image(path)["enc_mha"][0]
        with pytest.raises(QuantizationError):
            block._cal.params("nonexistent")


class TestStandaloneExecution:
    def test_image_runs_bit_identical(
        self, calibrated_quant, small_model_config, tmp_path
    ):
        # Save, load, run on the accelerator with no quant model around.
        rng = np.random.default_rng(9)
        path = tmp_path / "deploy.npz"
        save_image(calibrated_quant, path)
        stacks = load_image(path)

        acc_cfg = AcceleratorConfig(seq_len=S)
        hw = TransformerAccelerator(small_model_config, acc_cfg,
                                    exact_nonlinear=True)
        hw.load_mha(stacks["enc_mha"][0])
        hw.load_ffn(stacks["enc_ffn"][0])
        x = rng.normal(size=(S, small_model_config.d_model))
        mha_out = hw.run_mha(x).output
        ffn_out = hw.run_ffn(mha_out).output

        ref = calibrated_quant.enc_mha[0].forward_int8(
            x[None], x[None], None
        )
        ref = calibrated_quant.enc_ffn[0].forward_int8(ref)[0]
        assert np.array_equal(ffn_out, ref)

    def test_decoder_blocks_loadable(self, calibrated_quant,
                                     small_model_config, tmp_path):
        rng = np.random.default_rng(10)
        path = tmp_path / "deploy.npz"
        save_image(calibrated_quant, path)
        stacks = load_image(path)
        acc_cfg = AcceleratorConfig(seq_len=S)
        hw = TransformerAccelerator(small_model_config, acc_cfg,
                                    exact_nonlinear=True)
        hw.load_mha(stacks["dec_cross"][0])
        q = rng.normal(size=(S, 128))
        kv = rng.normal(size=(S, 128))
        out = hw.run_mha(q, kv).output
        ref = calibrated_quant.dec_cross[0].forward_int8(
            q[None], kv[None], None
        )[0]
        assert np.array_equal(out, ref)
