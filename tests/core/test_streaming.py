"""Streaming softmax / LayerNorm module tests (column granularity)."""

import numpy as np
import pytest

from repro.config import AcceleratorConfig
from repro.core import StreamingLayerNorm, StreamingSoftmax
from repro.errors import ScheduleError, ShapeError
from repro.quant import HardwareSoftmax

RNG = np.random.default_rng(91)


@pytest.fixture
def config():
    return AcceleratorConfig(seq_len=8)


class TestStreamingSoftmax:
    def test_matches_batch_hardware_softmax(self, config):
        unit = StreamingSoftmax(config)
        d = RNG.normal(0, 8, size=(8, 8))
        for j in range(8):
            unit.push_column(d[:, j], cycle=100 + j)
        y, _ = unit.finalize()
        expected = HardwareSoftmax()(d)
        assert np.array_equal(y, expected)

    def test_matches_with_mask(self, config):
        unit = StreamingSoftmax(config)
        d = RNG.normal(size=(8, 8))
        mask = np.triu(np.ones((8, 8), dtype=bool), k=1)
        for j in range(8):
            unit.push_column(d[:, j], mask[:, j])
        y, _ = unit.finalize()
        expected = HardwareSoftmax()(d, mask)
        assert np.array_equal(y, expected)

    def test_running_max_updates_stage_one(self, config):
        unit = StreamingSoftmax(config, scale_divisor=1.0)
        unit.push_column(np.array([1.0] * 8))
        unit.push_column(np.array([3.0] * 8))
        unit.push_column(np.array([2.0] * 8))
        assert np.allclose(unit.running_max, 3.0)

    def test_masked_columns_excluded_from_max(self, config):
        unit = StreamingSoftmax(config, scale_divisor=1.0)
        unit.push_column(np.array([1.0] * 8))
        unit.push_column(np.array([100.0] * 8), np.ones(8, dtype=bool))
        assert np.allclose(unit.running_max, 1.0)

    def test_output_events_timing(self, config):
        unit = StreamingSoftmax(config)
        d = RNG.normal(size=(8, 8))
        last_input = 0
        for j in range(8):
            last_input = 50 + j
            unit.push_column(d[:, j], cycle=last_input)
        _, events = unit.finalize()
        assert len(events) == 8
        # First output: pipeline tail into the replay pass.
        expected_first = last_input + 1 + config.softmax_pipeline_depth
        assert events[0].cycle == expected_first
        # One column per cycle after that.
        assert [e.cycle for e in events] == list(
            range(expected_first, expected_first + 8)
        )

    def test_timing_consistent_with_module_model(self, config):
        from repro.core import SoftmaxModule

        unit = StreamingSoftmax(config)
        d = RNG.normal(size=(8, 8))
        for j in range(8):
            unit.push_column(d[:, j], cycle=j)
        _, events = unit.finalize()
        timing = SoftmaxModule(config).timing(8)
        # Last output lands exactly total_cycles after the first input.
        assert events[-1].cycle - 0 + 1 == timing.total_cycles

    def test_errors(self, config):
        unit = StreamingSoftmax(config)
        with pytest.raises(ScheduleError):
            unit.finalize()
        unit2 = StreamingSoftmax(config)
        unit2.push_column(np.zeros(8), cycle=5)
        with pytest.raises(ScheduleError):
            unit2.push_column(np.zeros(8), cycle=5)  # non-increasing
        with pytest.raises(ShapeError):
            unit2.push_column(np.zeros(4))
        with pytest.raises(ShapeError):
            unit2.push_column(np.zeros(8), np.zeros(4, dtype=bool))
        y, _ = unit2.finalize()
        with pytest.raises(ScheduleError):
            unit2.finalize()
        with pytest.raises(ScheduleError):
            unit2.push_column(np.zeros(8))


class TestStreamingLayerNorm:
    def test_matches_batch_module(self, config):
        from repro.core import LayerNormModule

        d_model = 192
        unit = StreamingLayerNorm(config, d_model)
        g = RNG.normal(1, 2, size=(8, d_model))
        for i in range(3):
            unit.push_group(g[:, i * 64:(i + 1) * 64])
        gamma = RNG.normal(size=d_model)
        beta = RNG.normal(size=d_model)
        out, _ = unit.finalize(gamma, beta)
        module = LayerNormModule(config, d_model, approximate=True)
        assert np.allclose(out, module(g, gamma, beta), atol=1e-12)

    def test_accumulators_track_partial_sums(self, config):
        unit = StreamingLayerNorm(config, 128)
        g = RNG.normal(size=(8, 128))
        unit.push_group(g[:, :64])
        sums, sq = unit.accumulators()
        assert np.allclose(sums, g[:, :64].sum(1))
        assert np.allclose(sq, (g[:, :64] ** 2).sum(1))

    def test_no_second_statistics_pass_needed(self, config):
        # The step-two claim: statistics are final the moment the last
        # group arrives (before finalize touches G again).
        unit = StreamingLayerNorm(config, 128)
        g = RNG.normal(size=(8, 128))
        unit.push_group(g[:, :64])
        unit.push_group(g[:, 64:])
        sums, sq = unit.accumulators()
        mean = sums / 128
        var = sq / 128 - mean ** 2
        assert np.allclose(mean, g.mean(1))
        assert np.allclose(var, g.var(1), atol=1e-10)

    def test_output_event_timing_is_step_two(self, config):
        unit = StreamingLayerNorm(config, 128)
        g = RNG.normal(size=(8, 128))
        unit.push_group(g[:, :64], cycle=500)
        unit.push_group(g[:, 64:], cycle=700)
        out, events = unit.finalize(np.ones(128), np.zeros(128))
        assert events[0].cycle == 700 + config.layernorm_pipeline_depth
        assert len(events) == 128
        assert events[-1].cycle == events[0].cycle + 127

    def test_group_count_enforced(self, config):
        unit = StreamingLayerNorm(config, 128)
        unit.push_group(np.zeros((8, 64)))
        with pytest.raises(ScheduleError):
            unit.finalize(np.ones(128), np.zeros(128))
        unit.push_group(np.zeros((8, 64)))
        with pytest.raises(ScheduleError):
            unit.push_group(np.zeros((8, 64)))  # too many

    def test_shape_validation(self, config):
        with pytest.raises(ShapeError):
            StreamingLayerNorm(config, 100)  # not a multiple of 64
        unit = StreamingLayerNorm(config, 128)
        with pytest.raises(ShapeError):
            unit.push_group(np.zeros((8, 32)))
        unit.push_group(np.zeros((8, 64)))
        with pytest.raises(ShapeError):
            unit.push_group(np.zeros((4, 64)))  # row count changed

    def test_gamma_beta_validation(self, config):
        unit = StreamingLayerNorm(config, 128)
        unit.push_group(np.zeros((8, 64)))
        unit.push_group(np.zeros((8, 64)))
        with pytest.raises(ShapeError):
            unit.finalize(np.ones(64), np.zeros(128))
