"""Full-stack accelerated inference tests."""

import numpy as np
import pytest

from repro.config import AcceleratorConfig
from repro.core import AcceleratedStack, StackReport
from repro.errors import ScheduleError, ShapeError
from repro.quant import QuantizedTransformer

S = 12


@pytest.fixture
def stack(small_model_config, calibrated_quant):
    return AcceleratedStack(
        calibrated_quant, AcceleratorConfig(seq_len=S),
        exact_nonlinear=True,
    )


class TestEncoder:
    def test_matches_quant_encode(self, stack, calibrated_quant):
        rng = np.random.default_rng(0)
        src = rng.integers(1, 30, size=(1, S))
        x = calibrated_quant._embed_src(src)[0]
        hw_memory = stack.run_encoder(x)
        ref = calibrated_quant.encode(src).numpy()[0]
        assert np.array_equal(hw_memory, ref)

    def test_masked_encoder_matches(self, stack, calibrated_quant):
        rng = np.random.default_rng(1)
        src = rng.integers(1, 30, size=(1, S))
        from repro.transformer.masks import padding_mask

        x = calibrated_quant._embed_src(src)[0]
        hw_memory = stack.run_encoder(x, src_length=8)
        ref = calibrated_quant.encode(
            src, padding_mask([8], S)
        ).numpy()[0]
        assert np.array_equal(hw_memory, ref)

    def test_report_accumulates(self, stack, calibrated_quant):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(S, 128))
        report = StackReport()
        stack.run_encoder(x, report=report)
        # 1 encoder layer -> 1 MHA + 1 FFN block.
        assert [name for name, _ in report.blocks] == [
            "enc0.mha", "enc0.ffn",
        ]
        assert report.compute_cycles == sum(c for _, c in report.blocks)
        assert report.reload_cycles > 0
        assert report.total_cycles == (
            report.compute_cycles + report.reload_cycles
        )

    def test_reload_cycles_from_weight_sizes(self, stack,
                                             small_model_config):
        d, dff = small_model_config.d_model, small_model_config.d_ff
        report = StackReport()
        stack.run_encoder(np.zeros((S, d)), report=report)
        expected = -(-4 * d * d // 64) + -(-2 * d * dff // 64)
        assert report.reload_cycles == expected


class TestDecoder:
    def test_matches_quant_decode(self, stack, calibrated_quant):
        rng = np.random.default_rng(3)
        src = rng.integers(1, 30, size=(1, S))
        tgt = rng.integers(1, 30, size=(1, S))
        logits_hw, report = stack.run_model(src[0], tgt[0])
        ref = calibrated_quant.forward(src, tgt, np.array([S])).numpy()[0]
        assert np.allclose(logits_hw, ref, atol=1e-12)
        # 1 enc layer (2 blocks) + 1 dec layer (3 blocks).
        assert len(report.blocks) == 5

    def test_run_model_rejects_batched_ids(self, stack):
        with pytest.raises(ShapeError):
            stack.run_model(np.zeros((2, S), dtype=int),
                            np.zeros(S, dtype=int))

    def test_decoder_report_names(self, stack, calibrated_quant):
        rng = np.random.default_rng(4)
        memory = rng.normal(size=(S, 128))
        y = rng.normal(size=(S, 128))
        report = StackReport()
        stack.run_decoder(y, memory, report=report)
        assert [name for name, _ in report.blocks] == [
            "dec0.self", "dec0.cross", "dec0.ffn",
        ]


class TestDoubleBuffering:
    def test_reduces_exposed_reload(self, small_model_config,
                                    calibrated_quant):
        rng = np.random.default_rng(5)
        src = rng.integers(1, 30, size=S)
        tgt = rng.integers(1, 30, size=S)
        plain = AcceleratedStack(
            calibrated_quant, AcceleratorConfig(seq_len=S))
        buffered = AcceleratedStack(
            calibrated_quant, AcceleratorConfig(seq_len=S),
            double_buffered_weights=True)
        _, rep_plain = plain.run_model(src, tgt)
        _, rep_buf = buffered.run_model(src, tgt)
        assert rep_buf.reload_cycles < rep_plain.reload_cycles
        assert rep_buf.compute_cycles == rep_plain.compute_cycles

    def test_first_reload_never_hidden(self, small_model_config,
                                       calibrated_quant):
        buffered = AcceleratedStack(
            calibrated_quant, AcceleratorConfig(seq_len=S),
            double_buffered_weights=True)
        report = StackReport()
        buffered.run_encoder(np.zeros((S, 128)), report=report)
        # No compute precedes the first reload, so it is fully exposed.
        d = small_model_config.d_model
        assert report.reload_cycles >= -(-4 * d * d // 64)

    def test_add_reload_hides_behind_previous_compute(self):
        report = StackReport()
        report.add("blk", 1000)
        report.add_reload(600, double_buffered=True)
        assert report.reload_cycles == 0
        report.add("blk2", 100)
        report.add_reload(600, double_buffered=True)
        assert report.reload_cycles == 500


class TestValidation:
    def test_uncalibrated_model_rejected(self, small_transformer):
        qt = QuantizedTransformer(small_transformer)
        with pytest.raises(ScheduleError):
            AcceleratedStack(qt, AcceleratorConfig(seq_len=S))

    def test_sequence_too_long_rejected(self, stack):
        with pytest.raises(ShapeError):
            stack.run_encoder(np.zeros((S + 1, 128)))

    def test_latency_us(self):
        report = StackReport(compute_cycles=2000, reload_cycles=400)
        assert report.latency_us(200.0) == pytest.approx(12.0)
