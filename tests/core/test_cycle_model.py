"""Analytic cycle model tests: exact agreement with the event scheduler."""

import pytest

from repro.config import (
    paper_accelerator,
    transformer_base,
    transformer_big,
)
from repro.core import (
    PAPER_FFN_CYCLES,
    PAPER_MHA_CYCLES,
    ffn_cycle_breakdown,
    mha_cycle_breakdown,
    paper_deviation,
    schedule_ffn,
    schedule_mha,
)
from repro.errors import ScheduleError


@pytest.fixture
def acc():
    return paper_accelerator()


VARIANTS = [
    {},
    {"pass_overlap": False},
    {"single_ported_buffers": False},
    {"layernorm_mode": "straightforward"},
    {"layernorm_mode": "step_one"},
    {"weight_load_cycles": 8},
    {"pass_issue_cycles": 0, "sa_drain_cycles": 0},
]


class TestAgreementWithScheduler:
    @pytest.mark.parametrize("overrides", VARIANTS)
    def test_mha_exact_match(self, acc, overrides):
        cfg = acc.with_updates(**overrides)
        model = transformer_base()
        assert (mha_cycle_breakdown(model, cfg).total_cycles
                == schedule_mha(model, cfg).total_cycles)

    @pytest.mark.parametrize("overrides", VARIANTS)
    def test_ffn_exact_match(self, acc, overrides):
        cfg = acc.with_updates(**overrides)
        model = transformer_base()
        assert (ffn_cycle_breakdown(model, cfg).total_cycles
                == schedule_ffn(model, cfg).total_cycles)

    def test_big_model_match(self, acc):
        model = transformer_big()
        assert (mha_cycle_breakdown(model, acc).total_cycles
                == schedule_mha(model, acc).total_cycles)
        assert (ffn_cycle_breakdown(model, acc).total_cycles
                == schedule_ffn(model, acc).total_cycles)


class TestBreakdownStructure:
    def test_active_cycles_are_ideal_gemm_stream(self, acc):
        model = transformer_base()
        b = mha_cycle_breakdown(model, acc)
        # 24 projections * 512 + 16 attention passes * 64 + 8 output * 512.
        assert b.active_cycles == 24 * 512 + 16 * 64 + 8 * 512

    def test_ideal_cycles_are_macs_over_pes(self, acc):
        model = transformer_base()
        b = ffn_cycle_breakdown(model, acc)
        assert b.ideal_cycles == model.ffn_macs(64) // (64 * 64)
        assert b.ideal_cycles == 32_768

    def test_mha_ideal_17408(self, acc):
        # The 100%-utilization bound the paper's 21,344 implies 81.6%.
        b = mha_cycle_breakdown(transformer_base(), acc)
        assert b.ideal_cycles == 17_408

    def test_total_is_sum_of_parts(self, acc):
        for breakdown in (
            mha_cycle_breakdown(transformer_base(), acc),
            ffn_cycle_breakdown(transformer_base(), acc),
        ):
            assert breakdown.total_cycles == (
                breakdown.active_cycles + breakdown.issue_cycles
                + breakdown.skew_cycles + breakdown.softmax_stall_cycles
                + breakdown.layernorm_cycles
            )

    def test_softmax_stall_zero_at_paper_point(self, acc):
        # d_model = 512 cycles of VWv easily cover the ~84-cycle tail.
        assert mha_cycle_breakdown(
            transformer_base(), acc
        ).softmax_stall_cycles == 0

    def test_utilization_property(self, acc):
        b = mha_cycle_breakdown(transformer_base(), acc)
        assert b.utilization == pytest.approx(
            b.ideal_cycles / b.total_cycles
        )


class TestPaperConstants:
    def test_published_counts(self):
        assert PAPER_MHA_CYCLES == 21_344
        assert PAPER_FFN_CYCLES == 42_099

    def test_published_latency_consistency(self):
        # 21,344 cycles / 200 MHz = 106.72 us ~ the published 106.7.
        assert PAPER_MHA_CYCLES / 200.0 == pytest.approx(106.7, abs=0.1)
        assert PAPER_FFN_CYCLES / 200.0 == pytest.approx(210.5, abs=0.1)

    def test_deviation_helper(self):
        assert paper_deviation(110, 100) == pytest.approx(0.10)
        assert paper_deviation(90, 100) == pytest.approx(-0.10)
        with pytest.raises(ScheduleError):
            paper_deviation(1, 0)

    def test_model_deviation_bands(self, acc):
        model = transformer_base()
        mha_dev = paper_deviation(
            mha_cycle_breakdown(model, acc).total_cycles, PAPER_MHA_CYCLES
        )
        ffn_dev = paper_deviation(
            ffn_cycle_breakdown(model, acc).total_cycles, PAPER_FFN_CYCLES
        )
        assert abs(mha_dev) < 0.05
        assert abs(ffn_dev) < 0.15
