"""Energy-accounting tests."""

import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core import (
    energy_per_resblock_uj,
    energy_per_token_uj,
    schedule_energy,
    schedule_ffn,
    schedule_mha,
)
from repro.core.scheduler import ScheduleResult
from repro.errors import ScheduleError


@pytest.fixture
def model():
    return transformer_base()


@pytest.fixture
def acc():
    return paper_accelerator()


class TestScheduleEnergy:
    def test_breakdown_sums(self, model, acc):
        e = schedule_energy(schedule_mha(model, acc), model, acc)
        d = e.as_dict()
        assert d["total_uj"] == pytest.approx(
            d["dynamic_uj"] + d["static_uj"]
        )
        assert d["dynamic_uj"] == pytest.approx(
            d["sa_uj"] + d["softmax_uj"] + d["layernorm_uj"]
            + d["memory_uj"] + d["clock_uj"]
        )

    def test_sa_dominates(self, model, acc):
        e = schedule_energy(schedule_mha(model, acc), model, acc)
        assert e.sa_uj > 0.5 * e.dynamic_uj

    def test_ffn_costs_more_than_mha(self, model, acc):
        mha = schedule_energy(schedule_mha(model, acc), model, acc)
        ffn = schedule_energy(schedule_ffn(model, acc), model, acc)
        assert ffn.total_uj > mha.total_uj

    def test_consistent_with_flat_power_model(self, model, acc):
        # Integrating events should land in the same ballpark as the flat
        # (power x latency) product using the paper's 16.7 W.
        schedule = schedule_mha(model, acc)
        integrated = schedule_energy(schedule, model, acc).total_uj
        flat = energy_per_resblock_uj(16.7, schedule.total_cycles, 200.0)
        assert 0.5 < integrated / flat < 1.5

    def test_faster_layernorm_saves_energy(self, model, acc):
        slow = acc.with_updates(layernorm_mode="straightforward")
        e_slow = schedule_energy(schedule_mha(model, slow), model, slow)
        e_fast = schedule_energy(schedule_mha(model, acc), model, acc)
        # Same active work; the longer tail burns more static energy.
        assert e_fast.total_uj < e_slow.total_uj
        assert e_fast.sa_uj == pytest.approx(e_slow.sa_uj)

    def test_empty_schedule_rejected(self, model, acc):
        with pytest.raises(ScheduleError):
            schedule_energy(ScheduleResult(block="mha"), model, acc)


class TestPerToken:
    def test_positive_and_reasonable(self, model, acc):
        uj = energy_per_token_uj(model, acc)
        # One encoder layer, 64 tokens, ~5 mJ total -> tens of uJ/token.
        assert 10.0 < uj < 200.0

    def test_smaller_model_cheaper(self, acc):
        from repro.config import ModelConfig

        small = ModelConfig(
            "small", d_model=128, d_ff=512, num_heads=2, max_seq_len=64
        )
        assert (energy_per_token_uj(small, acc)
                < energy_per_token_uj(transformer_base(), acc))
