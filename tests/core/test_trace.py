"""Chrome trace export tests."""

import json

import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core import (
    ScheduleResult,
    TraceSpan,
    counter_events,
    schedule_mha,
    schedule_to_trace_events,
    spans_to_trace_events,
    write_span_trace,
    write_trace,
)
from repro.errors import ScheduleError


@pytest.fixture
def schedule():
    return schedule_mha(transformer_base(), paper_accelerator())


class TestTraceEvents:
    def test_one_complete_event_per_schedule_event(self, schedule):
        events = schedule_to_trace_events(schedule)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(schedule.events)

    def test_timestamps_in_us(self, schedule):
        events = schedule_to_trace_events(schedule, clock_mhz=200.0)
        first_sa = next(e for e in events if e["ph"] == "X")
        match = schedule.events[0]
        assert first_sa["ts"] == pytest.approx(match.start / 200.0)
        assert first_sa["dur"] == pytest.approx(match.duration / 200.0)

    def test_units_mapped_to_tracks(self, schedule):
        events = schedule_to_trace_events(schedule)
        tids = {e["cat"]: e["tid"] for e in events if e["ph"] == "X"}
        assert tids["sa"] != tids["softmax"] != tids["layernorm"]

    def test_thread_names_present(self, schedule):
        events = schedule_to_trace_events(schedule)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"sa", "softmax", "layernorm"}

    def test_dram_track_appears_with_memory_system(self):
        from repro.memsys import ddr4_2400

        with_mem = schedule_mha(
            transformer_base(), paper_accelerator(), mem=ddr4_2400()
        )
        events = schedule_to_trace_events(with_mem)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"sa", "softmax", "layernorm", "dram"}
        fetches = [e for e in events
                   if e["ph"] == "X" and e["cat"] == "dram"]
        assert fetches and all(".fetch" in e["name"] for e in fetches)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_to_trace_events(ScheduleResult(block="mha"))


class TestWriteTrace:
    def test_valid_json_file(self, schedule, tmp_path):
        path = tmp_path / "trace.json"
        count = write_trace(schedule, str(path))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert payload["otherData"]["total_cycles"] == schedule.total_cycles
        assert payload["otherData"]["block"] == "mha"


class TestSpanPathway:
    def _spans(self):
        return [
            TraceSpan("req0.queued", "queue", 0.0, 5.0),
            TraceSpan("batch0", "device0", 5.0, 50.0,
                      args={"requests": 2}),
            TraceSpan("req1.queued", "queue", 2.0, 3.0),
            TraceSpan("batch1", "device1", 9.0, 50.0),
        ]

    def test_tracks_numbered_in_first_appearance_order(self):
        events = spans_to_trace_events(self._spans())
        names = {e["tid"]: e["args"]["name"]
                 for e in events if e["ph"] == "M"}
        assert names == {0: "queue", 1: "device0", 2: "device1"}
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["tid"] for e in complete] == [0, 1, 0, 2]

    def test_span_fields_carried_through(self):
        events = spans_to_trace_events(self._spans())
        batch = next(e for e in events if e["name"] == "batch0")
        assert batch["ts"] == 5.0
        assert batch["dur"] == 50.0
        assert batch["cat"] == "serving"
        assert batch["args"] == {"requests": 2}

    def test_end_us(self):
        assert TraceSpan("x", "t", 3.0, 4.0).end_us == 7.0

    def test_empty_spans_rejected(self):
        with pytest.raises(ScheduleError):
            spans_to_trace_events([])

    def test_negative_duration_rejected(self):
        with pytest.raises(ScheduleError):
            spans_to_trace_events([TraceSpan("x", "t", 0.0, -1.0)])

    def test_counter_events(self):
        events = counter_events("queue_depth", [(0.0, 0), (1.5, 3)])
        assert all(e["ph"] == "C" for e in events)
        assert events[1]["ts"] == 1.5
        assert events[1]["args"] == {"queue_depth": 3}

    def test_counter_events_empty_rejected(self):
        with pytest.raises(ScheduleError, match="no samples"):
            counter_events("queue_depth", [])

    def test_counter_events_non_monotonic_rejected(self):
        with pytest.raises(ScheduleError, match="not time-ordered"):
            counter_events(
                "queue_depth", [(0.0, 0), (5.0, 2), (3.0, 1)]
            )

    def test_counter_events_equal_timestamps_allowed(self):
        # Two samples in the same microsecond are fine (depth changes
        # twice at one event time); only going backwards is an error.
        events = counter_events("queue_depth", [(1.0, 1), (1.0, 2)])
        assert len(events) == 2

    def test_write_span_trace_round_trip(self, tmp_path):
        path = tmp_path / "spans.json"
        counters = counter_events("queue_depth", [(0.0, 1)])
        count = write_span_trace(
            self._spans(), str(path), counters=counters,
            other_data={"completed": 2},
        )
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert count == 4 + 3 + 1   # spans + thread names + counter
        assert payload["otherData"] == {"completed": 2}
