"""Chrome trace export tests."""

import json

import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core import (
    ScheduleResult,
    schedule_mha,
    schedule_to_trace_events,
    write_trace,
)
from repro.errors import ScheduleError


@pytest.fixture
def schedule():
    return schedule_mha(transformer_base(), paper_accelerator())


class TestTraceEvents:
    def test_one_complete_event_per_schedule_event(self, schedule):
        events = schedule_to_trace_events(schedule)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(schedule.events)

    def test_timestamps_in_us(self, schedule):
        events = schedule_to_trace_events(schedule, clock_mhz=200.0)
        first_sa = next(e for e in events if e["ph"] == "X")
        match = schedule.events[0]
        assert first_sa["ts"] == pytest.approx(match.start / 200.0)
        assert first_sa["dur"] == pytest.approx(match.duration / 200.0)

    def test_units_mapped_to_tracks(self, schedule):
        events = schedule_to_trace_events(schedule)
        tids = {e["cat"]: e["tid"] for e in events if e["ph"] == "X"}
        assert tids["sa"] != tids["softmax"] != tids["layernorm"]

    def test_thread_names_present(self, schedule):
        events = schedule_to_trace_events(schedule)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"sa", "softmax", "layernorm"}

    def test_empty_schedule_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_to_trace_events(ScheduleResult(block="mha"))


class TestWriteTrace:
    def test_valid_json_file(self, schedule, tmp_path):
        path = tmp_path / "trace.json"
        count = write_trace(schedule, str(path))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert payload["otherData"]["total_cycles"] == schedule.total_cycles
        assert payload["otherData"]["block"] == "mha"
