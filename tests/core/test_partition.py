"""Matrix-partitioning tests (paper Section III)."""

import numpy as np
import pytest

from repro.config import transformer_base, transformer_big
from repro.core import (
    partition_columns,
    partition_model_weights,
    plan_qkt,
    qkt_multiply_ratio,
    qkt_multiply_ratio_exact,
    reassemble_columns,
)
from repro.errors import PartitionError

RNG = np.random.default_rng(2)


class TestPartitionColumns:
    def test_block_count_and_shape(self):
        w = RNG.normal(size=(512, 512))
        blocks = partition_columns(w, "WG")
        assert len(blocks) == 8
        assert all(b.data.shape == (512, 64) for b in blocks)

    def test_blocks_are_contiguous_slices(self):
        w = RNG.normal(size=(128, 256))
        blocks = partition_columns(w, "W1")
        for block in blocks:
            assert np.array_equal(block.data, w[:, block.columns])

    def test_roundtrip(self):
        w = RNG.normal(size=(64, 256))
        assert np.array_equal(
            reassemble_columns(partition_columns(w, "W")), w
        )

    def test_indivisible_rejected(self):
        with pytest.raises(PartitionError):
            partition_columns(RNG.normal(size=(8, 100)), "W")

    def test_non_2d_rejected(self):
        with pytest.raises(PartitionError):
            partition_columns(RNG.normal(size=(4, 4, 4)), "W")

    def test_missing_block_detected(self):
        blocks = partition_columns(RNG.normal(size=(8, 128)), "W")
        with pytest.raises(PartitionError):
            reassemble_columns(blocks[1:])

    def test_empty_reassembly_rejected(self):
        with pytest.raises(PartitionError):
            reassemble_columns([])

    def test_custom_block_width(self):
        blocks = partition_columns(RNG.normal(size=(8, 96)), "W",
                                   block_cols=32)
        assert len(blocks) == 3


class TestModelWeightPartition:
    def test_table1_pattern_base(self):
        cfg = transformer_base()
        blocks = partition_model_weights(
            cfg,
            RNG.normal(size=(512, 512)),
            RNG.normal(size=(512, 2048)),
            RNG.normal(size=(2048, 512)),
        )
        assert len(blocks["WG"]) == cfg.num_heads          # h
        assert len(blocks["W1"]) == 4 * cfg.num_heads      # 4h
        assert len(blocks["W2"]) == cfg.num_heads          # h

    def test_table1_pattern_big(self):
        cfg = transformer_big()
        blocks = partition_model_weights(
            cfg,
            RNG.normal(size=(1024, 1024)),
            RNG.normal(size=(1024, 4096)),
            RNG.normal(size=(4096, 1024)),
        )
        assert len(blocks["W1"]) == 64

    def test_wrong_shape_rejected(self):
        cfg = transformer_base()
        with pytest.raises(PartitionError):
            partition_model_weights(
                cfg,
                RNG.normal(size=(512, 512)),
                RNG.normal(size=(512, 1024)),  # not d_ff wide
                RNG.normal(size=(2048, 512)),
            )


class TestQKTPlan:
    def test_zero_pad_when_small(self):
        plan = plan_qkt(48)
        assert plan.strategy == "zero_pad"
        assert plan.num_passes == 1
        assert plan.padded_cols == 64

    def test_exact_fit(self):
        plan = plan_qkt(64)
        assert plan.strategy == "zero_pad"
        assert plan.num_passes == 1

    def test_partition_when_large(self):
        plan = plan_qkt(128)
        assert plan.strategy == "partition_q"
        assert plan.num_passes == 2

    def test_partition_rounds_up(self):
        assert plan_qkt(100).num_passes == 2
        assert plan_qkt(129).num_passes == 3

    def test_invalid_length(self):
        with pytest.raises(PartitionError):
            plan_qkt(0)


class TestEq3Ratio:
    def test_paper_form_matches_exact_at_s64(self):
        # The paper's printed simplification is exact at its evaluation
        # point s = 64 (the +64 term is s^2/64 there).
        for h in (8, 12, 16):
            assert qkt_multiply_ratio(64, h) == pytest.approx(
                qkt_multiply_ratio_exact(64, h), rel=1e-12
            )

    def test_paper_magnitude_claim(self):
        # Section III: with 256h^2 >= 16384 and s <= 128 the ratio is
        # "very small".
        for h in (8, 16):
            for s in (16, 64, 128):
                assert qkt_multiply_ratio_exact(s, h) < 0.01

    def test_ratio_increases_with_s(self):
        values = [qkt_multiply_ratio_exact(s, 8) for s in (16, 32, 64, 128)]
        assert values == sorted(values)

    def test_ratio_decreases_with_h(self):
        values = [qkt_multiply_ratio_exact(64, h) for h in (8, 12, 16)]
        assert values == sorted(values, reverse=True)

    def test_exact_form_from_raw_counts(self):
        # Re-derive from raw multiply counts for one configuration.
        s, h = 64, 8
        d_model = 64 * h
        qkt = s * s * 64 * 64 * h
        total = (
            qkt + 3 * (64 * s * d_model ** 2) * h
            + s * d_model ** 3 + 64 * s ** 3 * h
        )
        assert qkt_multiply_ratio_exact(s, h) == pytest.approx(qkt / total)

    def test_invalid_inputs(self):
        with pytest.raises(PartitionError):
            qkt_multiply_ratio(0, 8)
        with pytest.raises(PartitionError):
            qkt_multiply_ratio_exact(64, 0)
