"""Power model tests against the paper's 16.7 W (13.3 dynamic / 3.4 static)."""

import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core import (
    PAPER_DYNAMIC_W,
    PAPER_STATIC_W,
    PAPER_TOTAL_W,
    energy_per_resblock_uj,
    estimate_power,
)
from repro.errors import ConfigError


@pytest.fixture
def power():
    return estimate_power(transformer_base(), paper_accelerator())


class TestMagnitude:
    def test_total_near_paper(self, power):
        assert abs(power.total_w - PAPER_TOTAL_W) / PAPER_TOTAL_W < 0.15

    def test_dynamic_near_paper(self, power):
        assert abs(power.dynamic_w - PAPER_DYNAMIC_W) / PAPER_DYNAMIC_W < 0.15

    def test_static_matches_device(self, power):
        assert power.static_w == PAPER_STATIC_W

    def test_dynamic_exceeds_static(self, power):
        # The paper's split: 13.3 W dynamic vs 3.4 W static.
        assert power.dynamic_w > 2 * power.static_w


class TestStructure:
    def test_sa_dominates_dynamic(self, power):
        assert power.sa_w > 0.5 * power.dynamic_w

    def test_breakdown_sums(self, power):
        d = power.as_dict()
        assert d["dynamic_w"] == pytest.approx(
            d["sa_w"] + d["softmax_w"] + d["layernorm_w"]
            + d["memory_w"] + d["clock_w"]
        )
        assert d["total_w"] == pytest.approx(d["dynamic_w"] + d["static_w"])

    def test_activity_scales_dynamic(self):
        model, acc = transformer_base(), paper_accelerator()
        idle = estimate_power(model, acc, sa_activity=0.1)
        busy = estimate_power(model, acc, sa_activity=0.9)
        assert busy.dynamic_w > 2 * idle.dynamic_w
        assert busy.static_w == idle.static_w

    def test_clock_scales_power(self):
        model = transformer_base()
        slow = estimate_power(model, paper_accelerator().with_updates(
            clock_mhz=100.0))
        fast = estimate_power(model, paper_accelerator())
        assert fast.sa_w == pytest.approx(2 * slow.sa_w)

    def test_invalid_activity_rejected(self):
        with pytest.raises(ConfigError):
            estimate_power(transformer_base(), paper_accelerator(),
                           sa_activity=1.5)


class TestEnergy:
    def test_energy_per_resblock(self):
        # 16.7 W * 106.7 us ~ 1.78 mJ... in uJ: ~1782.
        uj = energy_per_resblock_uj(16.7, 21_344, 200.0)
        assert uj == pytest.approx(16.7 * 21_344 / 200.0, rel=1e-9)

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            energy_per_resblock_uj(10.0, 0, 200.0)
        with pytest.raises(ConfigError):
            energy_per_resblock_uj(10.0, 100, 0.0)
