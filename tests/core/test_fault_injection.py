"""Fault-injection tests on the systolic array."""

import numpy as np
import pytest

from repro.core import SystolicArray
from repro.errors import ShapeError

RNG = np.random.default_rng(83)


@pytest.fixture
def operands():
    a = RNG.integers(1, 50, size=(8, 16))
    b = RNG.integers(1, 50, size=(16, 8))
    return a, b


class TestFaultLocality:
    def test_stuck_zero_corrupts_exactly_one_output(self, operands):
        # Output-stationary: PE(i, j) owns output (i, j) and nothing else.
        a, b = operands
        sa = SystolicArray(8, 8)
        sa.inject_fault(3, 5, "stuck_zero")
        product = sa.run_pass(a, b).product
        exact = a @ b
        diff = product != exact
        assert diff.sum() == 1
        assert diff[3, 5]
        assert product[3, 5] == 0

    def test_stuck_max_corrupts_exactly_one_output(self, operands):
        a, b = operands
        sa = SystolicArray(8, 8)
        sa.inject_fault(0, 0, "stuck_max")
        product = sa.run_pass(a, b).product
        exact = a @ b
        diff = product != exact
        assert diff.sum() == 1
        assert product[0, 0] == 16 * 127 * 127  # k MACs at max product

    def test_multiple_faults_compose(self, operands):
        a, b = operands
        sa = SystolicArray(8, 8)
        sa.inject_fault(1, 1)
        sa.inject_fault(6, 2)
        product = sa.run_pass(a, b).product
        assert (product != a @ b).sum() == 2
        assert sa.fault_count == 2

    def test_fault_outside_narrow_pass_harmless(self, operands):
        a, b = operands
        sa = SystolicArray(8, 8)
        sa.inject_fault(2, 7)      # column 7 unused in a 4-col pass
        product = sa.run_pass(a, b[:, :4]).product
        assert np.array_equal(product, a @ b[:, :4])

    def test_clear_faults_restores(self, operands):
        a, b = operands
        sa = SystolicArray(8, 8)
        sa.inject_fault(3, 3)
        sa.clear_faults()
        assert sa.fault_count == 0
        assert np.array_equal(sa.run_pass(a, b).product, a @ b)


class TestFaultValidation:
    def test_out_of_range_rejected(self):
        sa = SystolicArray(4, 4)
        with pytest.raises(ShapeError):
            sa.inject_fault(4, 0)
        with pytest.raises(ShapeError):
            sa.inject_fault(0, -1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ShapeError):
            SystolicArray(4, 4).inject_fault(0, 0, "flaky")


class TestEndToEndImpact:
    def test_faulty_pe_perturbs_resblock_output(
        self, small_model_config, calibrated_quant
    ):
        # A single stuck PE must visibly corrupt (but not crash) a full
        # MHA ResBlock computed through the cycle-accurate array.
        from repro.config import AcceleratorConfig
        from repro.core import TransformerAccelerator

        acc_cfg = AcceleratorConfig(seq_len=12)
        hw = TransformerAccelerator(small_model_config, acc_cfg,
                                    exact_nonlinear=True,
                                    cycle_accurate_sa=True)
        hw.load_mha(calibrated_quant.enc_mha[0])
        x = np.random.default_rng(5).normal(size=(12, 128))
        clean = hw.run_mha(x).output
        hw.sa.inject_fault(2, 3, "stuck_zero")
        faulty = hw.run_mha(x).output
        assert np.isfinite(faulty).all()
        assert not np.array_equal(clean, faulty)
        # LayerNorm mixes each row, so corruption stays row-localized
        # only before normalization; at least row 2 must differ.
        assert not np.allclose(clean[2], faulty[2])
