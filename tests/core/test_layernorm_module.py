"""LayerNorm module tests: Fig. 7 schedules + Fig. 8 function."""

import numpy as np
import pytest

from repro.config import AcceleratorConfig
from repro.core import LayerNormModule
from repro.errors import ShapeError
from repro.transformer.functional import layer_norm

RNG = np.random.default_rng(6)


@pytest.fixture
def config():
    return AcceleratorConfig(seq_len=16)


class TestFunction:
    def test_exact_mode_matches_reference(self, config):
        module = LayerNormModule(config, d_model=32, approximate=False)
        g = RNG.normal(2, 3, size=(8, 32))
        gamma, beta = RNG.normal(size=32), RNG.normal(size=32)
        assert np.allclose(module(g, gamma, beta),
                           layer_norm(g, gamma, beta))

    def test_approximate_mode_close(self, config):
        module = LayerNormModule(config, d_model=64, approximate=True)
        g = RNG.normal(0, 2, size=(8, 64))
        gamma, beta = np.ones(64), np.zeros(64)
        exact = layer_norm(g, gamma, beta)
        approx = module(g, gamma, beta)
        # The isqrt LUT is within 0.5%, so rows stay near-normalized.
        assert np.abs(approx - exact).max() < 0.05

    def test_uses_eq9_variance(self, config):
        # Constant rows: E[G^2] - E[G]^2 == 0 exactly; output = beta.
        module = LayerNormModule(config, d_model=16, approximate=True)
        g = np.full((4, 16), 3.0)
        out = module(g, np.ones(16), np.full(16, 0.5))
        assert np.allclose(out, 0.5)

    def test_wrong_width_rejected(self, config):
        module = LayerNormModule(config, d_model=16)
        with pytest.raises(ShapeError):
            module(np.zeros((2, 8)), np.ones(8), np.zeros(8))

    def test_integer_datapath_close_to_exact(self, config):
        module = LayerNormModule(config, d_model=64, integer_datapath=True)
        g = RNG.normal(0, 2, size=(8, 64))
        gamma = RNG.uniform(0.5, 1.5, size=64)
        beta = RNG.uniform(-0.5, 0.5, size=64)
        exact = layer_norm(g, gamma, beta)
        assert np.abs(module(g, gamma, beta) - exact).max() < 0.02

    def test_streaming_stats(self, config):
        module = LayerNormModule(config, d_model=8)
        g = RNG.normal(size=(3, 8))
        sums, sq_sums = module.streaming_stats(g)
        assert np.allclose(sums, g.sum(-1))
        assert np.allclose(sq_sums, (g * g).sum(-1))


class TestTiming:
    def test_straightforward_adds_two_passes(self, config):
        module = LayerNormModule(config, d_model=512)
        t = module.timing("straightforward")
        assert t.added_latency == 2 * 512 + config.layernorm_pipeline_depth

    def test_step_one_adds_one_pass(self, config):
        module = LayerNormModule(config, d_model=512)
        t = module.timing("step_one")
        assert t.added_latency == 512 + config.layernorm_pipeline_depth

    def test_step_two_adds_only_pipeline(self, config):
        # "Very few cycles are required" (Section IV-B).
        module = LayerNormModule(config, d_model=512)
        t = module.timing("step_two")
        assert t.added_latency == config.layernorm_pipeline_depth

    def test_fig7_ordering(self, config):
        module = LayerNormModule(config, d_model=512)
        straightforward = module.timing("straightforward").added_latency
        one = module.timing("step_one").added_latency
        two = module.timing("step_two").added_latency
        assert straightforward > one > two

    def test_paper_128h_claim(self):
        # "At least 128h cycles are added" for the straightforward way:
        # 2 * d_model = 2 * 64h = 128h.
        config = AcceleratorConfig(seq_len=64,
                                   layernorm_pipeline_depth=0)
        module = LayerNormModule(config, d_model=512)
        h = 8
        assert module.timing("straightforward").added_latency == 128 * h

    def test_default_mode_from_config(self):
        config = AcceleratorConfig(seq_len=16, layernorm_mode="step_one")
        module = LayerNormModule(config, d_model=64)
        assert module.timing().mode == "step_one"

    def test_invalid_mode_rejected(self, config):
        module = LayerNormModule(config, d_model=64)
        with pytest.raises(ShapeError):
            module.timing("step_three")

    def test_output_cycles_equal_d_model(self, config):
        module = LayerNormModule(config, d_model=256)
        t = module.timing("step_two")
        assert t.output_cycles == 256
        assert t.total_exposed == t.added_latency + 256

    def test_invalid_d_model(self, config):
        with pytest.raises(ShapeError):
            LayerNormModule(config, d_model=0)
