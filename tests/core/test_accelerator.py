"""Top-level accelerator tests: bit-exactness against the quantized model."""

import numpy as np
import pytest

from repro.config import AcceleratorConfig, ModelConfig
from repro.core import TransformerAccelerator
from repro.errors import ScheduleError, ShapeError
from repro.quant import SOFTMAX_HARDWARE
from repro.transformer import causal_mask

RNG = np.random.default_rng(55)
S = 12


@pytest.fixture
def setup(small_model_config, calibrated_quant):
    acc_cfg = AcceleratorConfig(seq_len=S)
    hw = TransformerAccelerator(small_model_config, acc_cfg,
                                exact_nonlinear=True)
    hw.load_mha(calibrated_quant.enc_mha[0])
    hw.load_ffn(calibrated_quant.enc_ffn[0])
    return hw, calibrated_quant


class TestBitExactness:
    def test_mha_matches_quant_block(self, setup):
        hw, qt = setup
        x = RNG.normal(size=(S, 128))
        ref = qt.enc_mha[0].forward_int8(x[None], x[None], None)[0]
        out = hw.run_mha(x).output
        assert np.array_equal(out, ref)

    def test_mha_with_mask(self, setup):
        hw, qt = setup
        x = RNG.normal(size=(S, 128))
        mask = causal_mask(S)
        ref = qt.enc_mha[0].forward_int8(
            x[None], x[None], mask[None]
        )[0]
        out = hw.run_mha(x, mask=mask).output
        assert np.allclose(out, ref, atol=1e-12)

    def test_cross_attention_inputs(self, setup):
        hw, qt = setup
        q = RNG.normal(size=(S, 128))
        kv = RNG.normal(size=(S, 128))
        ref = qt.enc_mha[0].forward_int8(q[None], kv[None], None)[0]
        out = hw.run_mha(q, kv).output
        assert np.array_equal(out, ref)

    def test_ffn_matches_quant_block(self, setup):
        hw, qt = setup
        x = RNG.normal(size=(S, 128))
        ref = qt.enc_ffn[0].forward_int8(x[None])[0]
        out = hw.run_ffn(x).output
        assert np.array_equal(out, ref)

    def test_cycle_accurate_sa_identical(
        self, small_model_config, calibrated_quant
    ):
        acc_cfg = AcceleratorConfig(seq_len=S)
        fast = TransformerAccelerator(small_model_config, acc_cfg,
                                      exact_nonlinear=True)
        slow = TransformerAccelerator(small_model_config, acc_cfg,
                                      exact_nonlinear=True,
                                      cycle_accurate_sa=True)
        for hw in (fast, slow):
            hw.load_mha(calibrated_quant.enc_mha[0])
            hw.load_ffn(calibrated_quant.enc_ffn[0])
        x = RNG.normal(size=(S, 128))
        assert np.array_equal(fast.run_mha(x).output,
                              slow.run_mha(x).output)
        assert np.array_equal(fast.run_ffn(x).output,
                              slow.run_ffn(x).output)

    def test_hardware_nonlinear_close_to_quant_hw_mode(
        self, small_model_config, calibrated_quant
    ):
        calibrated_quant.softmax_mode = SOFTMAX_HARDWARE
        acc_cfg = AcceleratorConfig(seq_len=S)
        hw = TransformerAccelerator(small_model_config, acc_cfg,
                                    exact_nonlinear=False)
        hw.load_mha(calibrated_quant.enc_mha[0])
        x = RNG.normal(size=(S, 128))
        ref = calibrated_quant.enc_mha[0].forward_int8(x[None], x[None],
                                                       None)[0]
        out = hw.run_mha(x).output
        calibrated_quant.softmax_mode = "fp32"
        # Same softmax path; only the LayerNorm isqrt LUT differs.
        assert np.abs(out - ref).max() < 0.05


class TestScheduleAttached:
    def test_mha_cycles_match_scheduler(self, setup, small_model_config):
        from repro.core import schedule_mha

        hw, _ = setup
        result = hw.run_mha(RNG.normal(size=(S, 128)))
        expected = schedule_mha(
            small_model_config, AcceleratorConfig(seq_len=S)
        ).total_cycles
        assert result.cycles == expected

    def test_output_shape(self, setup):
        hw, _ = setup
        assert hw.run_ffn(RNG.normal(size=(S, 128))).output.shape == (S, 128)


class TestErrors:
    def test_run_before_load(self, small_model_config):
        hw = TransformerAccelerator(
            small_model_config, AcceleratorConfig(seq_len=S)
        )
        with pytest.raises(ScheduleError):
            hw.run_mha(np.zeros((S, 128)))
        with pytest.raises(ScheduleError):
            hw.run_ffn(np.zeros((S, 128)))

    def test_wrong_width_rejected(self, setup):
        hw, _ = setup
        with pytest.raises(ShapeError):
            hw.run_mha(np.zeros((S, 64)))

    def test_too_long_sequence_rejected(self, setup):
        hw, _ = setup
        with pytest.raises(ShapeError):
            hw.run_mha(np.zeros((S + 1, 128)))

    def test_head_dim_mismatch_rejected(self):
        bad = ModelConfig("bad", d_model=512, d_ff=2048, num_heads=8)
        with pytest.raises(ScheduleError):
            TransformerAccelerator(
                bad, AcceleratorConfig(seq_len=8, sa_cols=32)
            )

    def test_mismatched_block_rejected(
        self, tiny_model_config, calibrated_quant
    ):
        hw = TransformerAccelerator(
            tiny_model_config, AcceleratorConfig(seq_len=S)
        )
        with pytest.raises(ShapeError):
            hw.load_mha(calibrated_quant.enc_mha[0])  # d_model 128 vs 64


class TestWeightLoading:
    def test_tiles_stored_per_head(self, setup, small_model_config):
        hw, _ = setup
        h = small_model_config.num_heads
        for kind in ("WQ", "WK", "WV", "WG"):
            for i in range(h):
                assert hw.weight_memory.has_tile(kind, i)

    def test_ffn_tiles_stored(self, setup, small_model_config):
        hw, _ = setup
        assert hw.weight_memory.has_tile("W1", small_model_config.num_w1_blocks - 1)
        assert hw.weight_memory.has_tile("W2", small_model_config.num_w2_blocks - 1)

    def test_weight_capacity_counts(self, setup, small_model_config):
        hw, _ = setup
        d, dff = small_model_config.d_model, small_model_config.d_ff
        expected_bits = (4 * d * d + 2 * d * dff) * 8
        assert hw.weight_memory.capacity_bits == expected_bits
