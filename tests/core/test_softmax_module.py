"""Softmax module tests: function (Fig. 6) + timing."""

import numpy as np
import pytest

from repro.config import AcceleratorConfig
from repro.core import SoftmaxModule
from repro.errors import ShapeError
from repro.transformer.functional import scaled_masked_softmax

RNG = np.random.default_rng(14)


@pytest.fixture
def config():
    return AcceleratorConfig(seq_len=16)


class TestFunction:
    def test_exact_mode_matches_reference(self, config):
        module = SoftmaxModule(config, approximate=False)
        logits = RNG.normal(0, 8, size=(16, 16))
        assert np.allclose(
            module(logits), scaled_masked_softmax(logits, None, 8.0)
        )

    def test_approximate_mode_close_to_reference(self, config):
        module = SoftmaxModule(config, approximate=True)
        logits = RNG.normal(0, 8, size=(16, 16))
        exact = scaled_masked_softmax(logits, None, 8.0)
        assert np.abs(module(logits) - exact).max() < 0.05

    def test_mask_zeroes_output(self, config):
        module = SoftmaxModule(config, approximate=True)
        logits = RNG.normal(size=(4, 4))
        mask = np.eye(4, dtype=bool)
        out = module(logits, mask)
        assert np.all(out[np.eye(4, dtype=bool)] == 0.0)

    def test_non_square_rejected(self, config):
        module = SoftmaxModule(config)
        with pytest.raises(ShapeError):
            module(RNG.normal(size=(4, 6)))


class TestTiming:
    def test_timing_structure(self, config):
        module = SoftmaxModule(config)
        t = module.timing()
        assert t.input_cycles == 16
        assert t.second_pass_cycles == 16
        assert t.pipeline_tail == config.softmax_pipeline_depth
        assert t.total_cycles == 32 + config.softmax_pipeline_depth
        assert t.exposed_after_input == 16 + config.softmax_pipeline_depth

    def test_timing_custom_s(self, config):
        module = SoftmaxModule(config)
        assert module.timing(64).input_cycles == 64

    def test_invalid_s(self, config):
        with pytest.raises(ShapeError):
            SoftmaxModule(config).timing(0)

    def test_hidden_behind_projection_pass(self):
        # The paper's Algorithm 1 overlap condition: at Transformer-base
        # the V W_Vi pass (512 cycles) fully hides the softmax tail.
        config = AcceleratorConfig(seq_len=64)
        module = SoftmaxModule(config)
        assert module.hideable_behind(512)

    def test_not_hidden_behind_tiny_pass(self):
        config = AcceleratorConfig(seq_len=64)
        module = SoftmaxModule(config)
        assert not module.hideable_behind(10)
