"""Systolic array tests: PE, vectorized grid, scalar cross-validation."""

import numpy as np
import pytest

from repro.core import (
    ProcessingElement,
    ScalarSystolicArray,
    SystolicArray,
    expected_pass_cycles,
    tiled_matmul,
)
from repro.errors import FixedPointError, ShapeError

RNG = np.random.default_rng(8)


class TestProcessingElement:
    def test_mac_accumulates(self):
        pe = ProcessingElement()
        pe.step(3, 4)
        pe.step(-2, 5)
        assert pe.acc == 12 - 10

    def test_forwarding_registers(self):
        pe = ProcessingElement()
        pe.step(7, 9)
        assert pe.east == 7
        assert pe.south == 9

    def test_saturation(self):
        pe = ProcessingElement(acc_bits=8)
        for _ in range(10):
            pe.step(127, 127)
        assert pe.acc == 127

    def test_negative_saturation(self):
        pe = ProcessingElement(acc_bits=8)
        for _ in range(10):
            pe.step(-127, 127)
        assert pe.acc == -128

    def test_reset(self):
        pe = ProcessingElement()
        pe.step(2, 2)
        pe.reset()
        assert pe.acc == 0 and pe.east == 0 and pe.mac_count == 0

    def test_mac_count_skips_zero_operands(self):
        pe = ProcessingElement()
        pe.step(0, 5)
        pe.step(2, 3)
        assert pe.mac_count == 1

    def test_invalid_width(self):
        with pytest.raises(FixedPointError):
            ProcessingElement(acc_bits=1)


class TestVectorizedSA:
    def test_matches_numpy_matmul(self):
        sa = SystolicArray(8, 8)
        a = RNG.integers(-128, 128, size=(8, 20))
        b = RNG.integers(-128, 128, size=(20, 8))
        assert np.array_equal(sa.run_pass(a, b).product, a @ b)

    def test_cycle_count_formula(self):
        sa = SystolicArray(8, 8)
        a = RNG.integers(-5, 5, size=(8, 12))
        b = RNG.integers(-5, 5, size=(12, 8))
        result = sa.run_pass(a, b)
        assert result.compute_cycles == expected_pass_cycles(8, 12, 8)
        assert result.compute_cycles == 12 + 8 + 8 - 2

    def test_narrow_output_allowed(self):
        sa = SystolicArray(8, 8)
        a = RNG.integers(-5, 5, size=(8, 6))
        b = RNG.integers(-5, 5, size=(6, 3))
        result = sa.run_pass(a, b)
        assert np.array_equal(result.product, a @ b)

    def test_utilization_definition(self):
        sa = SystolicArray(4, 4)
        a = np.ones((4, 10), dtype=np.int64)
        b = np.ones((10, 4), dtype=np.int64)
        r = sa.run_pass(a, b)
        assert r.useful_macs == 4 * 4 * 10
        assert r.utilization == pytest.approx(
            r.useful_macs / (r.compute_cycles * 16)
        )

    def test_deep_pass_high_utilization(self):
        sa = SystolicArray(64, 64)
        a = RNG.integers(-2, 2, size=(64, 512))
        b = RNG.integers(-2, 2, size=(512, 64))
        assert sa.run_pass(a, b).utilization > 0.75

    def test_saturating_accumulator(self):
        sa = SystolicArray(1, 1, acc_bits=8)
        a = np.full((1, 100), 127, dtype=np.int64)
        b = np.full((100, 1), 127, dtype=np.int64)
        assert sa.run_pass(a, b).product[0, 0] == 127

    def test_wrong_row_count_rejected(self):
        sa = SystolicArray(8, 8)
        with pytest.raises(ShapeError):
            sa.run_pass(np.zeros((4, 4), dtype=np.int64),
                        np.zeros((4, 8), dtype=np.int64))

    def test_too_many_cols_rejected(self):
        sa = SystolicArray(4, 4)
        with pytest.raises(ShapeError):
            sa.run_pass(np.zeros((4, 4), dtype=np.int64),
                        np.zeros((4, 8), dtype=np.int64))

    def test_float_operands_rejected(self):
        sa = SystolicArray(4, 4)
        with pytest.raises(ShapeError):
            sa.run_pass(np.zeros((4, 4)), np.zeros((4, 4)))

    def test_drain_order_column_by_column(self):
        sa = SystolicArray(4, 4)
        a = RNG.integers(-3, 3, size=(4, 5))
        b = RNG.integers(-3, 3, size=(5, 4))
        result = sa.run_pass(a, b)
        columns = sa.drain_columns(result)
        assert len(columns) == 4
        for j, col in enumerate(columns):
            assert np.array_equal(col, (a @ b)[:, j])


class TestScalarCrossValidation:
    @pytest.mark.parametrize("s,k,n", [(4, 4, 4), (6, 10, 5), (3, 17, 2),
                                       (8, 1, 8), (1, 5, 1)])
    def test_scalar_equals_vectorized(self, s, k, n):
        a = RNG.integers(-128, 128, size=(s, k))
        b = RNG.integers(-128, 128, size=(k, n))
        vec = SystolicArray(s, max(n, 2)).run_pass(a, b)
        scalar = ScalarSystolicArray(s, max(n, 2)).run_pass(a, b)
        assert np.array_equal(vec.product, scalar.product)
        assert vec.compute_cycles == scalar.compute_cycles

    def test_scalar_saturation_matches(self):
        a = np.full((2, 50), 127, dtype=np.int64)
        b = np.full((50, 2), 127, dtype=np.int64)
        vec = SystolicArray(2, 2, acc_bits=16).run_pass(a, b)
        scalar = ScalarSystolicArray(2, 2, acc_bits=16).run_pass(a, b)
        assert np.array_equal(vec.product, scalar.product)
        assert vec.product[0, 0] == (1 << 15) - 1

    def test_scalar_size_limit(self):
        with pytest.raises(ShapeError):
            ScalarSystolicArray(128, 64)


class TestTiledMatmul:
    def test_wide_matrix(self):
        sa = SystolicArray(8, 4)
        a = RNG.integers(-10, 10, size=(8, 16))
        b = RNG.integers(-10, 10, size=(16, 10))
        product, cycles = tiled_matmul(sa, a, b)
        assert np.array_equal(product, a @ b)
        assert cycles > 0

    def test_tall_matrix(self):
        sa = SystolicArray(4, 4)
        a = RNG.integers(-10, 10, size=(10, 6))
        b = RNG.integers(-10, 10, size=(6, 4))
        product, _ = tiled_matmul(sa, a, b)
        assert np.array_equal(product, a @ b)

    def test_cycles_sum_over_tiles(self):
        sa = SystolicArray(4, 4)
        a = RNG.integers(-2, 2, size=(4, 6))
        b = RNG.integers(-2, 2, size=(6, 8))
        _, cycles = tiled_matmul(sa, a, b)
        assert cycles == 2 * expected_pass_cycles(4, 6, 4)

    def test_shape_mismatch(self):
        sa = SystolicArray(4, 4)
        with pytest.raises(ShapeError):
            tiled_matmul(sa, np.zeros((4, 5), dtype=np.int64),
                         np.zeros((6, 4), dtype=np.int64))
