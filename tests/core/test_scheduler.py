"""Scheduler tests: Algorithm 1 timelines and their invariants."""

import pytest

from repro.config import (
    ModelConfig,
    paper_accelerator,
    transformer_base,
    transformer_big,
)
from repro.core import (
    PAPER_FFN_CYCLES,
    PAPER_MHA_CYCLES,
    schedule_autoregressive,
    schedule_encoder_layer,
    schedule_ffn,
    schedule_mha,
    schedule_model,
)
from repro.errors import ScheduleError


@pytest.fixture
def base():
    return transformer_base()


@pytest.fixture
def acc():
    return paper_accelerator()


class TestTimelineInvariants:
    def test_sa_events_never_overlap(self, base, acc):
        for result in (schedule_mha(base, acc), schedule_ffn(base, acc)):
            events = sorted(result.sa_events, key=lambda e: e.start)
            for prev, cur in zip(events, events[1:]):
                assert cur.start >= prev.end

    def test_events_ordered_by_dependency(self, base, acc):
        result = schedule_mha(base, acc)
        for i in range(base.num_heads):
            qkt = result.find(f"head{i}.QKt")
            kwk = result.find(f"head{i}.KWk")
            softmax = result.find(f"head{i}.softmax")
            pv = result.find(f"head{i}.PV")
            assert qkt.start >= kwk.end
            assert softmax.start >= qkt.end
            assert pv.start >= softmax.end

    def test_layernorm_is_last(self, base, acc):
        for result in (schedule_mha(base, acc), schedule_ffn(base, acc)):
            ln = result.find("layernorm")
            assert ln.end == result.total_cycles
            assert all(e.end <= ln.start or e is ln for e in result.events
                       if e.unit == "sa")

    def test_softmax_hidden_behind_v_projection(self, base, acc):
        # Algorithm 1 line 6: softmax ends before PV needs it, without
        # stalling the SA (V W_Vi covers the softmax tail).
        result = schedule_mha(base, acc)
        for i in range(base.num_heads):
            softmax = result.find(f"head{i}.softmax")
            v_proj = result.find(f"head{i}.VWv")
            assert softmax.end <= v_proj.end

    def test_pass_counts(self, base, acc):
        mha = schedule_mha(base, acc)
        assert len(mha.sa_events) == 5 * base.num_heads + base.num_heads
        ffn = schedule_ffn(base, acc)
        assert len(ffn.sa_events) == (
            base.d_ff // 64 + base.d_model // 64
        )

    def test_active_cycles_equal_inner_dims(self, base, acc):
        mha = schedule_mha(base, acc)
        expected = base.num_heads * (3 * 512 + 64 + 64) + 8 * 512
        assert mha.sa_active_cycles == expected


class TestPaperNumbers:
    def test_mha_within_five_percent(self, base, acc):
        measured = schedule_mha(base, acc).total_cycles
        assert abs(measured / PAPER_MHA_CYCLES - 1) < 0.05

    def test_ffn_within_fifteen_percent(self, base, acc):
        measured = schedule_ffn(base, acc).total_cycles
        assert abs(measured / PAPER_FFN_CYCLES - 1) < 0.15

    def test_ffn_roughly_double_mha(self, base, acc):
        # The paper's 42,099 / 21,344 = 1.97; our model must land near 2.
        ratio = (schedule_ffn(base, acc).total_cycles
                 / schedule_mha(base, acc).total_cycles)
        assert 1.6 < ratio < 2.2

    def test_utilization_in_paper_band(self, base, acc):
        # Paper's implied SA utilizations: 81.6% (MHA), 77.8% (FFN).
        assert 0.7 < schedule_mha(base, acc).sa_utilization < 0.9
        assert 0.7 < schedule_ffn(base, acc).sa_utilization < 0.95

    def test_latency_us_at_200mhz(self, base, acc):
        result = schedule_mha(base, acc)
        assert result.latency_us(200.0) == result.total_cycles / 200.0


class TestConfigKnobs:
    def test_no_overlap_is_slower(self, base, acc):
        slow = acc.with_updates(pass_overlap=False)
        assert (schedule_mha(base, slow).total_cycles
                > schedule_mha(base, acc).total_cycles)

    def test_dual_ported_buffers_speed_up_ffn(self, base, acc):
        fast = acc.with_updates(single_ported_buffers=False)
        assert (schedule_ffn(base, fast).total_cycles
                < schedule_ffn(base, acc).total_cycles)

    def test_layernorm_mode_ordering(self, base, acc):
        totals = [
            schedule_mha(base, acc.with_updates(layernorm_mode=m)).total_cycles
            for m in ("straightforward", "step_one", "step_two")
        ]
        assert totals[0] > totals[1] > totals[2]

    def test_weight_load_overhead_adds_per_pass(self, base, acc):
        loaded = acc.with_updates(weight_load_cycles=10)
        base_cycles = schedule_ffn(base, acc).total_cycles
        extra = schedule_ffn(base, loaded).total_cycles - base_cycles
        assert extra == 10 * len(schedule_ffn(base, acc).sa_events)

    def test_head_dim_mismatch_rejected(self, acc):
        bad = ModelConfig("bad", d_model=512, d_ff=2048, num_heads=8,
                          max_seq_len=64)
        wrong_sa = acc.with_updates(sa_cols=32)
        with pytest.raises(ScheduleError):
            schedule_mha(bad, wrong_sa)


class TestLargerModels:
    def test_big_model_scales_up(self, acc):
        big = transformer_big()
        base = transformer_base()
        assert (schedule_mha(big, acc).total_cycles
                > 2 * schedule_mha(base, acc).total_cycles)

    def test_encoder_layer_is_sum(self, base, acc):
        assert schedule_encoder_layer(base, acc) == (
            schedule_mha(base, acc).total_cycles
            + schedule_ffn(base, acc).total_cycles
        )

    def test_model_totals(self, base, acc):
        totals = schedule_model(base, acc)
        mha, ffn = totals["mha_cycles"], totals["ffn_cycles"]
        assert totals["encoder_cycles"] == 6 * (mha + ffn)
        assert totals["decoder_cycles"] == 6 * (2 * mha + ffn)
        assert totals["total_cycles"] == (
            totals["encoder_cycles"] + totals["decoder_cycles"]
        )

    def test_result_find_missing(self, base, acc):
        with pytest.raises(ScheduleError):
            schedule_mha(base, acc).find("nonexistent")


class TestAutoregressive:
    def test_encoder_once_decoder_per_token(self, base, acc):
        r = schedule_autoregressive(base, acc, generated_tokens=10)
        totals = schedule_model(base, acc)
        assert r["encoder_cycles"] == totals["encoder_cycles"]
        # One token = one full decoder-stack pass (all 6 layers).
        assert r["decoder_cycles_per_token"] == totals["decoder_cycles"]
        assert r["total_cycles"] == (
            r["encoder_cycles"] + 10 * r["decoder_cycles_per_token"]
        )

    def test_decoder_step_is_one_stack_pass(self, base, acc):
        r = schedule_autoregressive(base, acc, generated_tokens=1)
        mha = schedule_mha(base, acc).total_cycles
        ffn = schedule_ffn(base, acc).total_cycles
        assert r["decoder_cycles_per_token"] == 6 * (2 * mha + ffn)

    def test_cycles_per_token_amortizes_encoder(self, base, acc):
        short = schedule_autoregressive(base, acc, 2)
        long = schedule_autoregressive(base, acc, 64)
        assert long["cycles_per_token"] < short["cycles_per_token"]

    def test_invalid_token_count(self, base, acc):
        with pytest.raises(ScheduleError):
            schedule_autoregressive(base, acc, 0)


class TestWeightLoadAudit:
    """Activation-only passes (QKt, softmax x Temp2) pay no weight fetch.

    MHA runs 6h SA passes but only 4h of them load weights (Q/K/V
    projections and the per-head output block G); the QKt and PV passes
    stream two activation tiles.  FFN loads weights on every pass.
    """

    def test_paper_point_totals_pinned(self, base, acc):
        assert schedule_mha(base, acc).total_cycles == 21578
        assert schedule_ffn(base, acc).total_cycles == 39052
        wl8 = acc.with_updates(weight_load_cycles=8)
        assert schedule_mha(base, wl8).total_cycles == 21834
        assert schedule_ffn(base, wl8).total_cycles == 39372
        wl64 = acc.with_updates(weight_load_cycles=64)
        assert schedule_mha(base, wl64).total_cycles == 23626
        assert schedule_ffn(base, wl64).total_cycles == 41612

    def test_mha_charges_only_weight_passes(self, base, acc):
        # 4h weight passes, not 6h total passes: the delta per cycle of
        # weight_load_cycles is exactly 4 * num_heads.
        h = base.num_heads
        base_cycles = schedule_mha(base, acc).total_cycles
        for wl in (1, 8, 64):
            loaded = acc.with_updates(weight_load_cycles=wl)
            extra = schedule_mha(base, loaded).total_cycles - base_cycles
            assert extra == wl * 4 * h, wl

    def test_ffn_charges_every_pass(self, base, acc):
        base_result = schedule_ffn(base, acc)
        loaded = acc.with_updates(weight_load_cycles=8)
        extra = schedule_ffn(base, loaded).total_cycles
        assert extra - base_result.total_cycles == 8 * len(
            base_result.sa_events
        )

    def test_mha_audit_holds_off_paper_point(self, acc):
        small = ModelConfig("audit", d_model=256, d_ff=1024, num_heads=4,
                            max_seq_len=64)
        base_cycles = schedule_mha(small, acc).total_cycles
        loaded = acc.with_updates(weight_load_cycles=16)
        extra = schedule_mha(small, loaded).total_cycles - base_cycles
        assert extra == 16 * 4 * small.num_heads
