"""On-chip memory model tests."""

import numpy as np
import pytest

from repro.config import paper_accelerator, transformer_base
from repro.core import (
    BiasMemory,
    MemoryBank,
    WeightMemory,
    bram36_banks,
    data_memory_layout,
)
from repro.errors import MemoryModelError


class TestBramBanks:
    def test_single_bank_small_memory(self):
        assert bram36_banks(1024, 8) == 1

    def test_width_drives_parallel_banks(self):
        # 512-bit port needs 8 parallel 64-bit banks.
        assert bram36_banks(10_000, 512) == 8

    def test_depth_drives_serial_banks(self):
        # 1 Mib behind a 64-bit port: ceil(1Mib / 36Kib) banks.
        assert bram36_banks(1 << 20, 64) == 29

    def test_paper_weight_memory_bank_count(self):
        # FFN weights (2 MiB INT8) behind a 64-byte port -> 456 BRAM36,
        # exactly the paper's Table II weight-memory row.
        ffn_bits = 2 * 512 * 2048 * 8
        assert bram36_banks(ffn_bits, 64 * 8) == 456

    def test_invalid_args(self):
        with pytest.raises(MemoryModelError):
            bram36_banks(0, 64)
        with pytest.raises(MemoryModelError):
            bram36_banks(100, 0)


class TestMemoryBank:
    def test_write_read_roundtrip(self):
        bank = MemoryBank("t", (4, 8), word_bits=8, port_width_words=8)
        values = np.arange(8)
        bank.write((0, slice(None)), values)
        assert np.array_equal(bank.read((0, slice(None))), values)

    def test_word_width_enforced(self):
        bank = MemoryBank("t", (4, 4), word_bits=8, port_width_words=4)
        with pytest.raises(MemoryModelError):
            bank.write((0, 0), np.array([128]))
        with pytest.raises(MemoryModelError):
            bank.write((0, 0), np.array([-129]))

    def test_access_counters(self):
        bank = MemoryBank("t", (2, 2), word_bits=8, port_width_words=2)
        bank.write((0, 0), np.array(1))
        bank.read((0, 0))
        bank.read((0, 1))
        assert bank.writes == 1 and bank.reads == 2

    def test_read_cycles_port_limited(self):
        bank = MemoryBank("t", (8, 64), word_bits=8, port_width_words=64)
        assert bank.read_cycles(64) == 1
        assert bank.read_cycles(65) == 2
        assert bank.read_cycles(0) == 0

    def test_capacity_and_banks(self):
        bank = MemoryBank("t", (64, 64), word_bits=8, port_width_words=64)
        assert bank.capacity_bits == 64 * 64 * 8
        assert bank.bram_banks == bram36_banks(64 * 64 * 8, 64 * 8)

    def test_bad_shape_rejected(self):
        with pytest.raises(MemoryModelError):
            MemoryBank("t", (0, 4), 8, 4)


class TestDataMemoryLayout:
    def test_fig5_buffers_present(self):
        banks = data_memory_layout(transformer_base(), paper_accelerator())
        assert set(banks) == {
            "input_q", "input_kv", "temp1", "temp2", "p_buffer",
        }

    def test_fig5_shapes(self):
        banks = data_memory_layout(transformer_base(), paper_accelerator())
        assert banks["input_q"].shape == (64, 512)      # s x 64h
        assert banks["temp1"].shape == (64, 64)         # s x max(s, 64)
        assert banks["temp2"].shape == (64, 64)
        assert banks["p_buffer"].shape == (64, 2048)    # s x 256h


class TestWeightMemory:
    def test_tile_roundtrip(self):
        mem = WeightMemory()
        tile = np.arange(32, dtype=np.int64).reshape(8, 4) - 16
        mem.store_tile("WQ", 3, tile)
        assert np.array_equal(mem.load_tile("WQ", 3), tile)
        assert mem.has_tile("WQ", 3)
        assert not mem.has_tile("WQ", 4)

    def test_load_returns_copy(self):
        mem = WeightMemory()
        mem.store_tile("W", 0, np.zeros((2, 2), dtype=np.int64))
        loaded = mem.load_tile("W", 0)
        loaded[0, 0] = 5
        assert mem.load_tile("W", 0)[0, 0] == 0

    def test_missing_tile_rejected(self):
        with pytest.raises(MemoryModelError):
            WeightMemory().load_tile("W", 0)

    def test_word_width_enforced(self):
        mem = WeightMemory(word_bits=8)
        with pytest.raises(MemoryModelError):
            mem.store_tile("W", 0, np.array([[200]]))

    def test_capacity_accumulates(self):
        mem = WeightMemory()
        mem.store_tile("A", 0, np.zeros((8, 8), dtype=np.int64))
        mem.store_tile("B", 0, np.zeros((4, 4), dtype=np.int64))
        assert mem.capacity_bits == (64 + 16) * 8

    def test_tile_load_cycles(self):
        mem = WeightMemory(port_width_words=64)
        mem.store_tile("W", 0, np.zeros((512, 64), dtype=np.int64))
        assert mem.tile_load_cycles("W", 0) == 512

    def test_non_2d_tile_rejected(self):
        with pytest.raises(MemoryModelError):
            WeightMemory().store_tile("W", 0, np.zeros(4, dtype=np.int64))


class TestBiasMemory:
    def test_roundtrip(self):
        mem = BiasMemory()
        mem.store("BQ", 1, np.array([1.5, -2.5]))
        assert np.array_equal(mem.load("BQ", 1), np.array([1.5, -2.5]))

    def test_missing_rejected(self):
        with pytest.raises(MemoryModelError):
            BiasMemory().load("B", 0)

    def test_non_1d_rejected(self):
        with pytest.raises(MemoryModelError):
            BiasMemory().store("B", 0, np.zeros((2, 2)))
