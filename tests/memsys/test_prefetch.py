"""TilePrefetcher timing: cold start, hiding windows, serialization."""

import pytest

from repro.config import MemoryConfig
from repro.errors import MemoryModelError
from repro.memsys import TilePrefetcher

# 100 bytes/cycle at 200 MHz; a 1000-byte tile takes 10 cycles.
LINK = MemoryConfig(bandwidth_gbps=20.0, burst_efficiency=1.0)
CLOCK = 200.0
TILE = 1000


def _prefetcher(**mem_updates):
    return TilePrefetcher(LINK.with_updates(**mem_updates), CLOCK)


class TestDoubleBuffered:
    def test_cold_start_is_fully_exposed(self):
        pf = _prefetcher()
        event = pf.issue(0, TILE)
        assert event.fetch_start == 0
        assert event.fetch_cycles == 10
        assert event.stall_cycles == 10
        assert event.pass_start == 10

    def test_first_fetch_hides_behind_early_issue_slack(self):
        # The pass could not start before cycle 50 anyway; the fetch
        # issued at 0 finishes long before.
        pf = _prefetcher()
        event = pf.issue(50, TILE)
        assert event.stall_cycles == 0
        assert event.pass_start == 50

    def test_steady_state_fetch_overlaps_previous_pass(self):
        pf = _prefetcher()
        first = pf.issue(0, TILE)
        assert first.pass_start == 10
        # Next fetch issues when the previous pass starts (cycle 10).
        # The next pass would start at 15, but the fetch runs 10..20.
        second = pf.issue(15, TILE)
        assert second.fetch_start == 10
        assert second.stall_cycles == 5
        assert second.pass_start == 20
        # A wide-enough window hides the third fetch completely.
        third = pf.issue(40, TILE)
        assert third.fetch_start == 20
        assert third.stall_cycles == 0
        assert third.pass_start == 40

    def test_counters_accumulate(self):
        pf = _prefetcher()
        pf.issue(0, TILE)
        pf.issue(15, TILE)
        assert pf.stall_cycles == 15
        assert pf.tiles_fetched == 2
        assert pf.bytes_fetched == 2 * TILE


class TestSerialized:
    def test_every_pass_pays_its_own_fetch(self):
        pf = _prefetcher(double_buffered_prefetch=False)
        for natural in (0, 100, 1000):
            event = pf.issue(natural, TILE)
            assert event.fetch_start == natural
            assert event.stall_cycles == 10
            assert event.pass_start == natural + 10
        assert pf.stall_cycles == 30


class TestValidation:
    def test_rejects_bad_arguments(self):
        with pytest.raises(MemoryModelError):
            TilePrefetcher(LINK, 0.0)
        with pytest.raises(MemoryModelError):
            TilePrefetcher(LINK, CLOCK, contenders=0)
        with pytest.raises(MemoryModelError):
            _prefetcher().issue(-1, TILE)

    def test_contenders_slow_the_fetch(self):
        slow = TilePrefetcher(LINK, CLOCK, contenders=2)
        assert slow.fetch_cycles(TILE) == 20
