"""Link arithmetic: MemoryConfig transfers, DramChannel, presets."""

import math

import pytest

from repro.config import MemoryConfig
from repro.errors import ConfigError, MemoryModelError
from repro.memsys import (
    MEMORY_PRESETS,
    DramChannel,
    contenders_per_channel,
    ddr4_2400,
    memory_preset,
    unlimited,
)

# 20 GB/s at 100% burst over a 200 MHz clock = 100 bytes per cycle.
LINK = MemoryConfig(
    bandwidth_gbps=20.0, burst_efficiency=1.0, transfer_latency_cycles=10
)
CLOCK = 200.0


class TestTransferCycles:
    def test_latency_plus_ceil_of_payload(self):
        assert LINK.bytes_per_cycle(CLOCK) == 100.0
        assert LINK.transfer_cycles(1000, CLOCK) == 10 + 10
        assert LINK.transfer_cycles(1001, CLOCK) == 10 + 11

    def test_contenders_split_bandwidth_not_latency(self):
        assert LINK.transfer_cycles(1000, CLOCK, contenders=2) == 10 + 20

    def test_zero_bytes_is_free(self):
        assert LINK.transfer_cycles(0, CLOCK) == 0

    def test_infinite_bandwidth_pays_latency_only(self):
        lat_only = MemoryConfig(transfer_latency_cycles=7)
        assert not lat_only.is_unlimited
        assert lat_only.transfer_cycles(10**9, CLOCK) == 7

    def test_default_config_is_unlimited_and_free(self):
        mem = MemoryConfig()
        assert mem.is_unlimited
        assert mem.transfer_cycles(10**9, CLOCK) == 0

    def test_burst_efficiency_derates_bandwidth(self):
        derated = LINK.with_updates(burst_efficiency=0.5)
        assert derated.transfer_cycles(1000, CLOCK) == 10 + 20

    def test_validation_rejects_bad_values(self):
        for bad in (
            dict(bandwidth_gbps=0.0),
            dict(bandwidth_gbps=-1.0),
            dict(burst_efficiency=0.0),
            dict(burst_efficiency=1.5),
            dict(transfer_latency_cycles=-1),
            dict(bus_width_bits=0),
            dict(shared_channels=0),
            dict(weight_cache_kib=-2.0),
        ):
            with pytest.raises(ConfigError):
                MemoryConfig(**bad)


class TestDramChannel:
    def test_counters_accumulate(self):
        channel = DramChannel(LINK, CLOCK)
        assert channel.transfer_cycles(1000) == 20
        assert channel.transfer_cycles(500) == 15
        assert channel.bytes_transferred == 1500
        assert channel.transfers == 2
        assert channel.busy_cycles == 35

    def test_requesters_see_a_share(self):
        shared = DramChannel(LINK, CLOCK, requesters=4)
        assert shared.bytes_per_cycle == 25.0
        assert shared.transfer_cycles(1000) == 10 + 40

    def test_achieved_gbps(self):
        channel = DramChannel(LINK, CLOCK)
        channel.transfer_cycles(1000)
        # 1000 B over 200 cycles at 200 MHz = 1 us -> 1 GB/s.
        assert channel.achieved_gbps(200) == pytest.approx(1.0)
        assert channel.achieved_gbps(0) == 0.0

    def test_rejects_bad_construction(self):
        with pytest.raises(MemoryModelError):
            DramChannel(LINK, 0.0)
        with pytest.raises(MemoryModelError):
            DramChannel(LINK, CLOCK, requesters=0)


class TestPresets:
    def test_contenders_per_channel(self):
        assert contenders_per_channel(4, 2) == 2
        assert contenders_per_channel(5, 2) == 3
        assert contenders_per_channel(1, 8) == 1
        with pytest.raises(MemoryModelError):
            contenders_per_channel(0, 1)

    def test_known_presets_validate(self):
        for name, mem in MEMORY_PRESETS.items():
            mem.validate()
            assert memory_preset(name) == mem

    def test_lookup_is_case_insensitive(self):
        assert memory_preset(" DDR4-2400 ") == ddr4_2400()

    def test_unknown_preset_raises(self):
        with pytest.raises(MemoryModelError):
            memory_preset("sram-9000")

    def test_unlimited_preset(self):
        assert unlimited().is_unlimited
        assert math.isinf(unlimited().effective_bytes_per_s)
