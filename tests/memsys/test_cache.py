"""WeightCache LRU behavior and the Table II default capacity."""

import pytest

from repro.config import paper_accelerator, transformer_base
from repro.errors import MemoryModelError
from repro.memsys import WeightCache, default_weight_cache_bytes


class TestWeightCache:
    def test_miss_then_hit(self):
        cache = WeightCache(100)
        assert not cache.access("a", 40)
        assert cache.access("a", 40)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        assert "a" in cache and len(cache) == 1
        assert cache.used_bytes == 40

    def test_lru_eviction_order(self):
        cache = WeightCache(100)
        cache.access("a", 40)
        cache.access("b", 40)
        cache.access("a", 40)  # refresh a; b is now LRU
        cache.access("c", 40)  # evicts b only
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_eviction_frees_enough_for_large_block(self):
        cache = WeightCache(100)
        cache.access("a", 40)
        cache.access("b", 40)
        cache.access("big", 90)  # needs both slots gone
        assert len(cache) == 1 and "big" in cache
        assert cache.evictions == 2

    def test_oversized_block_never_inserted(self):
        cache = WeightCache(100)
        cache.access("a", 40)
        assert not cache.access("huge", 101)
        # The resident entry survived and the giant one was not kept.
        assert "a" in cache and "huge" not in cache
        assert cache.evictions == 0
        assert not cache.access("huge", 101)

    def test_rejects_bad_sizes(self):
        with pytest.raises(MemoryModelError):
            WeightCache(0)
        with pytest.raises(MemoryModelError):
            WeightCache(100).access("a", 0)


class TestDefaultCapacity:
    def test_matches_table2_weight_memory_budget(self):
        model, acc = transformer_base(), paper_accelerator()
        capacity = default_weight_cache_bytes(model, acc)
        # 456 BRAM36 banks at the paper point -> ~2 MiB of weights.
        assert capacity == 456 * 36 * 1024 // 8

    def test_default_holds_one_mha_weight_set(self):
        model, acc = transformer_base(), paper_accelerator()
        capacity = default_weight_cache_bytes(model, acc)
        mha_bytes = 4 * model.d_model * model.d_model * acc.weight_bits // 8
        assert capacity >= mha_bytes
