"""Memory-system report: stall shares, roofline ceiling, crossover."""

import pytest

from repro.config import MemoryConfig, paper_accelerator, transformer_base
from repro.errors import MemoryModelError
from repro.memsys import (
    analyze_memory_system,
    ddr4_2400,
    lpddr4_2133,
    steady_state_crossover_gbps,
    unlimited,
)


@pytest.fixture(scope="module")
def model():
    return transformer_base()


@pytest.fixture(scope="module")
def acc():
    return paper_accelerator()


class TestAnalyzeMemorySystem:
    def test_unlimited_link_adds_nothing(self, model, acc):
        report = analyze_memory_system(model, acc, unlimited())
        for block in (report.mha, report.ffn):
            assert block.total_cycles == block.compute_cycles
            assert block.memsys_stall_cycles == 0
            assert block.stall_share == 0.0
        assert report.bound == "compute"
        assert report.total_stall_cycles == 0

    def test_ddr4_paper_point_stays_compute_bound(self, model, acc):
        report = analyze_memory_system(model, acc, ddr4_2400())
        assert report.bound == "compute"
        assert 0 < report.mha.stall_share < 0.05
        assert 0 < report.ffn.stall_share < 0.05
        assert report.mha.total_cycles > report.mha.compute_cycles
        assert (report.total_stall_cycles
                == report.mha.memsys_stall_cycles
                + report.ffn.memsys_stall_cycles)

    def test_lpddr4_is_memory_bound(self, model, acc):
        report = analyze_memory_system(model, acc, lpddr4_2133())
        assert report.bound == "memory"
        assert report.ffn.stall_share > 0.25
        assert report.ffn.utilization < 0.6

    def test_tile_stats_are_consistent(self, model, acc):
        mem = ddr4_2400()
        report = analyze_memory_system(model, acc, mem)
        assert report.mha.tile_bytes == model.d_model * 64
        assert report.ffn.tile_bytes == model.d_ff * 64
        assert (report.ffn.tile_fetch_cycles
                == mem.transfer_cycles(report.ffn.tile_bytes, acc.clock_mhz))

    def test_roofline_uses_the_link_ceiling(self, model, acc):
        mem = ddr4_2400()
        report = analyze_memory_system(model, acc, mem)
        assert (report.roofline.bandwidth_bytes_per_s
                == pytest.approx(mem.effective_bytes_per_s))


class TestCrossover:
    def test_paper_point_value(self, model, acc):
        crossover = steady_state_crossover_gbps(
            model, acc, burst_efficiency=0.8, transfer_latency_cycles=24
        )
        # The W2 tile (d_ff x 64) over a d_ff-deep pass dominates.
        assert 15.0 < crossover < 18.0

    def test_better_burst_efficiency_lowers_the_peak_requirement(
        self, model, acc
    ):
        tight = steady_state_crossover_gbps(model, acc, 0.5)
        loose = steady_state_crossover_gbps(model, acc, 1.0)
        assert loose < tight

    def test_latency_raises_the_requirement(self, model, acc):
        base = steady_state_crossover_gbps(model, acc, 1.0, 0)
        slow = steady_state_crossover_gbps(model, acc, 1.0, 64)
        assert slow > base

    def test_bound_flips_exactly_at_crossover(self, model, acc):
        crossover = steady_state_crossover_gbps(
            model, acc, burst_efficiency=0.8, transfer_latency_cycles=24
        )
        below = MemoryConfig(
            bandwidth_gbps=crossover * 0.9, burst_efficiency=0.8,
            transfer_latency_cycles=24,
        )
        above = MemoryConfig(
            bandwidth_gbps=crossover * 1.1, burst_efficiency=0.8,
            transfer_latency_cycles=24,
        )
        assert analyze_memory_system(model, acc, below).bound == "memory"
        assert analyze_memory_system(model, acc, above).bound == "compute"

    def test_rejects_bad_arguments(self, model, acc):
        with pytest.raises(MemoryModelError):
            steady_state_crossover_gbps(model, acc, 0.0)
        with pytest.raises(MemoryModelError):
            steady_state_crossover_gbps(model, acc, 1.0, -1)
