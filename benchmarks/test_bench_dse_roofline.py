"""[A8] Extension: design-space exploration and the roofline view.

Two analyses the paper implies but does not publish:

* a DSE sweep over (s, clock, LayerNorm schedule) with Pareto extraction
  over (latency, LUT, power) — where the paper's design point sits in its
  own neighbourhood;
* the roofline placement showing both ResBlocks compute-bound thanks to
  the on-chip weight memory, and the same FFN memory-bound if weights had
  to stream from an embedded LPDDR channel — the quantitative version of
  the paper's "huge memory requirements" motivation.

The timed region is the full DSE sweep + frontier extraction.
"""

from repro.analysis import (
    accelerator_roofline,
    enumerate_designs,
    ffn_point,
    mha_point,
    offchip_weights_point,
    pareto_frontier,
    render_table,
    summarize,
)


def run_dse(model):
    points = enumerate_designs(
        model,
        seq_lens=(16, 32, 64, 128),
        clocks_mhz=(150.0, 200.0, 250.0),
        layernorm_modes=("step_two", "straightforward"),
    )
    return points, pareto_frontier(points)


def test_bench_dse_roofline(benchmark, base_model, paper_acc):
    points, frontier = run_dse(base_model)
    rows = [
        [r["s"], r["clock_mhz"], r["ln_mode"], r["latency_us"],
         r["lut_k"], r["power_w"], str(r["fits"])]
        for r in summarize(frontier)
    ]
    print()
    print(render_table(
        f"Pareto frontier of {len(points)} design points "
        "(latency / LUT / power minimized)",
        ["s", "MHz", "LN mode", "layer us", "LUT k", "W", "fits device"],
        rows,
    ))
    # The paper's design point's configuration style survives on the
    # frontier: step-two LayerNorm everywhere.
    assert all(p.config.layernorm_mode == "step_two" for p in frontier)
    assert len(frontier) < len(points)

    roofline = accelerator_roofline(paper_acc)
    placements = [
        mha_point(base_model, paper_acc, roofline),
        ffn_point(base_model, paper_acc, roofline),
        offchip_weights_point(base_model, paper_acc),
    ]
    print(render_table(
        f"Roofline (ridge {roofline.ridge_intensity:.0f} MACs/byte, peak "
        f"{roofline.peak_macs_per_s / 1e12:.2f} TMAC/s)",
        ["workload", "MACs/byte", "bound", "attainable TMAC/s"],
        [[p.name, f"{p.intensity:.1f}", p.bound,
          f"{p.attainable_macs_per_s / 1e12:.2f}"] for p in placements],
    ))
    assert placements[0].bound == "compute"
    assert placements[1].bound == "compute"
    assert placements[2].bound == "memory"

    result = benchmark(run_dse, base_model)
    assert len(result[1]) == len(frontier)
