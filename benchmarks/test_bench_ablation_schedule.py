"""[A1] Ablation: the scheduling design choices DESIGN.md calls out.

Sweeps the accelerator's microarchitectural knobs — pass overlap,
single- vs dual-ported activation buffers, LayerNorm schedule, and
non-hidden weight loads — and reports their MHA/FFN cycle impact, showing
which choices the paper's published counts are consistent with.  The timed
region is a full knob sweep.
"""

from repro.analysis import render_table
from repro.core import (
    PAPER_FFN_CYCLES,
    PAPER_MHA_CYCLES,
    schedule_ffn,
    schedule_mha,
)

VARIANTS = [
    ("paper-consistent defaults", {}),
    ("no pass overlap", {"pass_overlap": False}),
    ("dual-ported buffers", {"single_ported_buffers": False}),
    ("LN straightforward", {"layernorm_mode": "straightforward"}),
    ("LN step one", {"layernorm_mode": "step_one"}),
    ("weight load not hidden", {"weight_load_cycles": 64}),
]


def sweep(model, acc):
    rows = []
    for label, overrides in VARIANTS:
        cfg = acc.with_updates(**overrides)
        mha = schedule_mha(model, cfg).total_cycles
        ffn = schedule_ffn(model, cfg).total_cycles
        rows.append([label, mha, ffn, f"{ffn / mha:.2f}"])
    return rows


def test_bench_ablation_schedule(benchmark, base_model, paper_acc):
    rows = sweep(base_model, paper_acc)
    print()
    print(render_table(
        f"Scheduling ablation (paper: MHA {PAPER_MHA_CYCLES:,}, "
        f"FFN {PAPER_FFN_CYCLES:,}, ratio 1.97)",
        ["variant", "MHA cycles", "FFN cycles", "FFN/MHA"],
        rows,
    ))
    defaults = rows[0]
    # The default (paper-consistent) point is the closest to the paper
    # among the ablated variants on MHA.
    for row in rows[1:]:
        assert (abs(defaults[1] - PAPER_MHA_CYCLES)
                <= abs(row[1] - PAPER_MHA_CYCLES))

    result = benchmark(sweep, base_model, paper_acc)
    assert result == rows
