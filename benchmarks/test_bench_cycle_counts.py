"""[C1] Section V-B cycle counts: 21,344 (MHA) and 42,099 (FFN).

Runs the Algorithm 1 scheduler for both ResBlocks at the paper's operating
point (Transformer-base, s = 64, batch 1) and prints measured vs published
cycles, utilization, and the FFN/MHA ratio.  The timed region is one full
MHA schedule construction.
"""

from repro.analysis import deviation_row, render_table
from repro.core import (
    PAPER_FFN_CYCLES,
    PAPER_MHA_CYCLES,
    ffn_cycle_breakdown,
    mha_cycle_breakdown,
    schedule_ffn,
    schedule_mha,
)


def test_bench_cycle_counts(benchmark, base_model, paper_acc,
                            bench_headline):
    mha = schedule_mha(base_model, paper_acc)
    ffn = schedule_ffn(base_model, paper_acc)
    bench_headline("cycles.mha_total", mha.total_cycles)
    bench_headline("cycles.ffn_total", ffn.total_cycles)
    bench_headline("cycles.sa_utilization_mha", mha.sa_utilization)

    rows = [
        deviation_row("MHA ResBlock", mha.total_cycles, PAPER_MHA_CYCLES),
        deviation_row("FFN ResBlock", ffn.total_cycles, PAPER_FFN_CYCLES),
        deviation_row("FFN / MHA ratio",
                      ffn.total_cycles / mha.total_cycles,
                      PAPER_FFN_CYCLES / PAPER_MHA_CYCLES),
    ]
    print()
    print(render_table(
        "Section V-B — cycle counts (Transformer-base, s=64, batch 1)",
        ["block", "simulated", "paper", "deviation"],
        rows,
    ))
    breakdown_rows = []
    for name, b in (("MHA", mha_cycle_breakdown(base_model, paper_acc)),
                    ("FFN", ffn_cycle_breakdown(base_model, paper_acc))):
        breakdown_rows.append([
            name, b.active_cycles, b.skew_cycles, b.issue_cycles,
            b.layernorm_cycles, b.total_cycles, f"{b.utilization:.1%}",
        ])
    print(render_table(
        "Analytic latency decomposition",
        ["block", "GEMM stream", "skew/drain", "issue", "layernorm",
         "total", "SA util"],
        breakdown_rows,
    ))

    assert abs(mha.total_cycles / PAPER_MHA_CYCLES - 1) < 0.05
    assert abs(ffn.total_cycles / PAPER_FFN_CYCLES - 1) < 0.15
    assert 1.6 < ffn.total_cycles / mha.total_cycles < 2.2

    result = benchmark(schedule_mha, base_model, paper_acc)
    assert result.total_cycles == mha.total_cycles
