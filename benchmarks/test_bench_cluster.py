"""[A6] Cluster: SLO-aware routing + autoscaling vs static round-robin.

Runs the pinned heterogeneous scenario (two FPGA pools with different
memory systems + one V100 roofline pool, three tenants with diurnal /
steady / bursty arrivals) under the deadline-aware router with
autoscaling, and under static round-robin at the same per-pool device
budget.  Records the fleet's SLO attainment and throughput as the A6
headlines `repro bench-diff` gates on, and asserts the subsystem's
acceptance criterion: the smart policy beats the naive baseline on the
same workload at equal budget.  The timed region is one full smart run.
"""

import time

from repro.analysis import render_table
from repro.cluster import pinned_cluster, simulate_cluster

REQUESTS_PER_TENANT = 120
SEED = 0


def _run(model, policy, autoscale):
    cluster = pinned_cluster(
        requests_per_tenant=REQUESTS_PER_TENANT,
        router_policy=policy,
        autoscale=autoscale,
        seed=SEED,
    )
    return simulate_cluster(model, cluster).metrics


def test_bench_cluster_slo_routing(benchmark, base_model, bench_headline):
    smart = _run(base_model, "slo", autoscale=True)
    naive = _run(base_model, "round_robin", autoscale=False)

    bench_headline("cluster.slo_attainment", smart.slo_attainment)
    bench_headline("cluster.throughput_rps", smart.throughput_rps)
    bench_headline("cluster.p99_us", smart.latency_p99_us)
    bench_headline(
        "cluster.attainment_gain_vs_rr",
        smart.slo_attainment - naive.slo_attainment,
    )

    rows = []
    for label, cm in (("slo/autoscaled", smart),
                      ("round_robin/static", naive)):
        rows.append([
            label,
            f"{cm.slo_attainment:.1%}",
            f"{cm.latency_p99_us / 1e3:.1f}",
            f"{cm.throughput_rps:.0f}",
            f"{cm.shed}/{cm.rejected}/{cm.expired}",
        ])
    print()
    print(render_table(
        "cluster: 3 pools / 3 tenants at equal device budget",
        ["policy", "SLO attain", "p99 ms", "req/s", "shed/rej/exp"],
        rows,
    ))

    # Every request resolves, under both policies.
    for cm in (smart, naive):
        assert cm.offered == 3 * REQUESTS_PER_TENANT
        assert cm.offered == (
            cm.completed + cm.shed + cm.rejected + cm.expired
        )
    # The acceptance criterion: deadline-aware routing + autoscaling
    # measurably beats static round-robin at the same device budget.
    assert smart.slo_attainment > naive.slo_attainment
    assert smart.latency_p99_us < naive.latency_p99_us

    # Simulator wall-clock throughput (see the serving bench for the
    # rationale behind the loose rel_tol 0.9 band).
    t0 = time.perf_counter()
    timed = simulate_cluster(
        base_model,
        pinned_cluster(requests_per_tenant=REQUESTS_PER_TENANT,
                       router_policy="slo", autoscale=True, seed=SEED),
    )
    elapsed = time.perf_counter() - t0
    bench_headline("cluster.sim_requests_per_s",
                   len(timed.records) / elapsed)

    result = benchmark(
        simulate_cluster, base_model,
        pinned_cluster(requests_per_tenant=REQUESTS_PER_TENANT,
                       router_policy="slo", autoscale=True, seed=SEED),
    )
    assert result.metrics.completed > 0
