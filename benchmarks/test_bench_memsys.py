"""[A5] Memory system: DDR4 stall shares and cross-batch weight caching.

Two claims the memsys subsystem is built around:

* at the paper point on a realistic DDR4-2400 link, double-buffered
  tile prefetch hides nearly all the weight traffic (SA stall share
  below 5% per ResBlock) while turning prefetch off exposes a large,
  measurable share;
* in serving, a cross-batch LRU weight cache big enough for the model
  turns reloads into hits (hit rate > 0) and moves p95 latency away
  from the flat-reload baseline.

The timed region is one full memory-system analysis of the paper point.
"""

from repro.analysis import render_table
from repro.config import ServingConfig
from repro.memsys import analyze_memory_system, ddr4_2400
from repro.serving import simulate_serving

# Transformer-base is ~42 MiB of int8 weights; 44 MiB of cache holds
# the whole model so steady-state batches run fully warm.
WHOLE_MODEL_CACHE_KIB = 44 * 1024


def _serving(**overrides):
    return ServingConfig(
        arrival_rate_rps=1200.0, num_requests=120,
        min_len=8, max_len=32, seed=11, **overrides,
    )


def test_bench_memsys_stall_shares(
    benchmark, base_model, paper_acc, bench_headline
):
    mem = ddr4_2400()
    report = benchmark(analyze_memory_system, base_model, paper_acc, mem)
    no_db = analyze_memory_system(
        base_model, paper_acc,
        mem.with_updates(double_buffered_prefetch=False),
    )
    rows = [
        [name, f"{db.total_cycles:,}", f"{db.stall_share:.1%}",
         f"{serial.total_cycles:,}", f"{serial.stall_share:.1%}"]
        for name, db, serial in (
            ("MHA", report.mha, no_db.mha),
            ("FFN", report.ffn, no_db.ffn),
        )
    ]
    print()
    print(render_table(
        "DDR4-2400 at the paper point (double-buffered / serialized)",
        ["block", "cycles (db)", "stall (db)",
         "cycles (serial)", "stall (serial)"],
        rows,
    ))
    print(f"steady-state crossover: {report.crossover_gbps:.2f} GB/s "
          f"peak -> {report.bound}-bound at {mem.bandwidth_gbps:g} GB/s")
    bench_headline("memsys.ddr4_mha_stall_share", report.mha.stall_share)
    bench_headline("memsys.ddr4_ffn_stall_share", report.ffn.stall_share)
    bench_headline("memsys.crossover_gbps", report.crossover_gbps)
    # Double buffering keeps the paper point compute-bound on DDR4...
    assert report.mha.stall_share < 0.05
    assert report.ffn.stall_share < 0.05
    assert report.bound == "compute"
    # ...and without it the same link exposes a large stall share.
    assert no_db.mha.stall_share > 0.20
    assert no_db.ffn.stall_share > 0.20


def test_bench_memsys_weight_cache(base_model, paper_acc, bench_headline):
    flat = simulate_serving(base_model, paper_acc, _serving()).metrics
    mem = ddr4_2400().with_updates(weight_cache_kib=WHOLE_MODEL_CACHE_KIB)
    cached = simulate_serving(
        base_model, paper_acc, _serving(memory=mem)
    ).metrics
    uncached = simulate_serving(
        base_model, paper_acc,
        _serving(memory=mem.with_updates(enable_weight_cache=False)),
    ).metrics
    rows = [
        ["flat reload", f"{flat.latency_p95_us:,.0f}", "-", "-"],
        ["LRU cache", f"{cached.latency_p95_us:,.0f}",
         f"{cached.weight_cache_hit_rate:.1%}",
         f"{cached.reload_stall_cycles:,}"],
        ["no cache", f"{uncached.latency_p95_us:,.0f}",
         f"{uncached.weight_cache_hit_rate:.1%}",
         f"{uncached.reload_stall_cycles:,}"],
    ]
    print()
    print(render_table(
        "serving on DDR4-2400 (whole-model cache vs none vs flat reload)",
        ["reload model", "p95 us", "hit rate", "reload stall cycles"],
        rows,
    ))
    bench_headline("memsys.serving_hit_rate", cached.weight_cache_hit_rate)
    bench_headline("memsys.serving_p95_flat_us", flat.latency_p95_us)
    bench_headline("memsys.serving_p95_cached_us", cached.latency_p95_us)
    # A warm cache serves hits and its p95 departs the flat baseline.
    assert cached.weight_cache_hit_rate > 0.0
    assert cached.latency_p95_us != flat.latency_p95_us
    # The cache is the reason: disabling it multiplies exposed traffic.
    assert uncached.weight_cache_hit_rate == 0.0
    assert uncached.reload_stall_cycles > cached.reload_stall_cycles
