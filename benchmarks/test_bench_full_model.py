"""[A4] Extension: complete Transformer inference (the paper's future work).

Runs an entire quantized Transformer-base (6+6 layers, 44M parameters)
through the accelerator simulator — every one of the 30 ResBlocks on the
systolic-array datapath with per-layer weight reloads — and reports the
end-to-end cycle budget with and without double-buffered weight memory.
The functional outputs are verified bit-identical to the quantized
reference model.  The timed region is one fully accelerated encoder layer.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import AcceleratorConfig, transformer_base
from repro.core import AcceleratedStack, StackReport, schedule_model
from repro.quant import QuantizedTransformer
from repro.transformer import Transformer


@pytest.fixture(scope="module")
def quantized_base():
    cfg = transformer_base().with_updates(max_seq_len=64, dropout=0.0)
    model = Transformer(cfg, 100, 100, rng=np.random.default_rng(0)).eval()
    qt = QuantizedTransformer(model)
    rng = np.random.default_rng(1)
    src = rng.integers(1, 100, size=(1, 64))
    tgt = rng.integers(1, 100, size=(1, 64))
    qt.calibrate([(src, tgt, np.array([64]))])
    return qt, src, tgt


def test_bench_full_model(benchmark, quantized_base, paper_acc):
    qt, src, tgt = quantized_base
    acc = AcceleratorConfig(seq_len=64)
    plain = AcceleratedStack(qt, acc)
    buffered = AcceleratedStack(qt, acc, double_buffered_weights=True)

    logits, rep_plain = plain.run_model(src[0], tgt[0])
    _, rep_buf = buffered.run_model(src[0], tgt[0])
    ref = qt.forward(src, tgt, np.array([64])).numpy()[0]
    assert np.allclose(logits, ref, atol=1e-9)

    ideal = schedule_model(qt.config, acc)["total_cycles"]
    rows = [
        ["single weight bank", rep_plain.compute_cycles,
         rep_plain.reload_cycles, rep_plain.total_cycles,
         f"{rep_plain.latency_us(200.0) / 1000:.2f}"],
        ["double-buffered weights", rep_buf.compute_cycles,
         rep_buf.reload_cycles, rep_buf.total_cycles,
         f"{rep_buf.latency_us(200.0) / 1000:.2f}"],
    ]
    print()
    print(render_table(
        "Complete Transformer-base inference on the accelerator "
        f"(scheduler compute bound: {ideal:,} cycles)",
        ["weight memory", "compute cycles", "exposed reload", "total",
         "latency ms"],
        rows,
    ))
    assert rep_plain.compute_cycles == ideal
    assert rep_buf.reload_cycles < rep_plain.reload_cycles / 3
    assert len(rep_plain.blocks) == 6 * 2 + 6 * 3

    # Timed region: one accelerated encoder layer (2 ResBlocks + reload).
    x = qt._embed_src(src)[0]

    def one_layer():
        report = StackReport()
        layer_stack = AcceleratedStack(qt, acc)
        layer_stack.quant = qt
        report.add_reload(layer_stack._reload_cycles_mha(qt.enc_mha[0]),
                          False)
        layer_stack.hw.load_mha(qt.enc_mha[0])
        out = layer_stack.hw.run_mha(x)
        layer_stack.hw.load_ffn(qt.enc_ffn[0])
        return layer_stack.hw.run_ffn(out.output)

    result = benchmark(one_layer)
    assert result.output.shape == (64, 512)
