"""[A3] The cycle-accurate SA simulator itself: fidelity and speed.

Validates that one Transformer-base projection pass (64x64 PEs, k = 512)
simulated cycle by cycle matches numpy exactly and reports the simulator's
effective MAC throughput — the figure that justifies using the tile-level
model (cross-validated against this one) inside the scheduler.  The timed
region is one full cycle-accurate pass.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import SystolicArray, expected_pass_cycles


def test_bench_sa_simulator(benchmark, paper_acc):
    sa = SystolicArray(paper_acc.seq_len, paper_acc.sa_cols,
                       acc_bits=paper_acc.acc_bits)
    rng = np.random.default_rng(9)
    a = rng.integers(-128, 128, size=(64, 512))
    b = rng.integers(-128, 128, size=(512, 64))

    result = benchmark(sa.run_pass, a, b)
    assert np.array_equal(result.product, a @ b)
    assert result.compute_cycles == expected_pass_cycles(64, 512, 64)

    print()
    print(render_table(
        "Cycle-accurate SA pass (Q-projection shape, Transformer-base)",
        ["PEs", "compute cycles", "useful MACs", "pass utilization"],
        [[sa.num_pes, result.compute_cycles, f"{result.useful_macs:,}",
          f"{result.utilization:.1%}"]],
    ))
