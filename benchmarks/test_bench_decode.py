"""[A7] Decode: mixed prefill/decode serving over the KV-cache model.

Runs the pinned generation scenario (24 Poisson streams, 96-256-token
prompts, 8-32 generated tokens each, DDR4-2400 KV refetch) under both
interleaving policies and records the A7 headlines `repro bench-diff`
gates on:

* ``decode.tokens_per_s`` — generation throughput under
  ``prefill_chunk`` (the throughput-oriented policy);
* ``decode.prefill_p99_us`` — time-to-first-token tail under
  ``prefill_chunk`` (what chunking exists to protect);
* ``decode.kv_hit_rate`` — KV residency under ``decode_priority``
  (streams drain serially, so the Table II BRAM budget holds each
  stream's working set).

The acceptance criteria double as assertions: chunking beats
decode-priority on both prefill tail and token throughput for this
workload, while decode-priority keeps the KV cache hot.  The timed
region is one full mixed run.
"""

import dataclasses

from repro.analysis import render_table
from repro.config import AcceleratorConfig, DecodeConfig
from repro.decode import simulate_decode
from repro.memsys import memory_preset

SEED = 0


def pinned_decode_config(policy: str) -> DecodeConfig:
    return DecodeConfig(
        arrival_rate_rps=400.0,
        num_streams=24,
        prefill_len_min=96,
        prefill_len_max=256,
        decode_tokens_min=8,
        decode_tokens_max=32,
        policy=policy,
        max_decode_batch=8,
        memory=memory_preset("ddr4-2400"),
        seed=SEED,
    )


def test_bench_decode_mixed_serving(benchmark, base_model, bench_headline):
    acc = AcceleratorConfig()
    chunk = simulate_decode(
        base_model, acc, pinned_decode_config("prefill_chunk")
    ).metrics
    prio = simulate_decode(
        base_model, acc, pinned_decode_config("decode_priority")
    ).metrics

    bench_headline("decode.tokens_per_s", chunk.tokens_per_s)
    bench_headline("decode.prefill_p99_us", chunk.prefill_p99_us)
    bench_headline("decode.kv_hit_rate", prio.kv_hit_rate)

    rows = []
    for label, m in (("prefill_chunk", chunk), ("decode_priority", prio)):
        rows.append([
            label,
            f"{m.tokens_per_s:.0f}",
            f"{m.prefill_p99_us / 1e3:.1f}",
            f"{m.mean_token_latency_us:.0f}",
            f"{m.kv_hit_rate:.1%}",
        ])
    print()
    print(render_table(
        "mixed prefill/decode: 24 streams at 400/s, DDR4-2400 KV",
        ["policy", "tok/s", "prefill p99 ms", "inter-token us",
         "KV hit"],
        rows,
    ))

    # Both policies complete the same workload.
    for m in (chunk, prio):
        assert m.offered == 24
        assert m.completed + m.rejected == m.offered
    assert chunk.decoded_tokens == prio.decoded_tokens
    # Acceptance criteria: chunking protects the prefill tail AND wins
    # on throughput for this workload; serial draining keeps KV hot.
    assert chunk.prefill_p99_us < prio.prefill_p99_us
    assert chunk.tokens_per_s > prio.tokens_per_s
    assert prio.kv_hit_rate > 0.9

    result = benchmark(
        simulate_decode, base_model, acc,
        dataclasses.replace(pinned_decode_config("prefill_chunk")),
    )
    assert result.metrics.decoded_tokens > 0
