"""Shared benchmark fixtures and the ``BENCH_<suite>.json`` artifact.

The quantization bench needs a trained model; training happens once per
session here (outside any timed region).

Every benchmark session additionally writes a machine-readable artifact
``BENCH_<suite>.json`` (suite from the ``BENCH_SUITE`` env var, default
``smoke``) at the repo root: per-test outcome and wall time, the
pytest-benchmark timing stats when timing ran, and any headline numbers
the benches recorded through the :func:`bench_headline` fixture.  The
artifact is stamped with provenance — git SHA, UTC timestamp, and the
paper-point config fingerprint — so ``repro bench-diff`` can tell a
perf regression from a baseline pinned at a different operating point.
CI's benchmark-smoke job uploads the file, so runs leave a comparable
trail.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from datetime import datetime, timezone

import numpy as np
import pytest

from repro.config import ModelConfig, paper_accelerator, transformer_base
from repro.nmt import SyntheticTranslationTask, train_model
from repro.transformer import Transformer

_TEST_RESULTS: "OrderedDict[str, dict]" = OrderedDict()
_HEADLINES: dict[str, object] = {}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call":
        return
    _TEST_RESULTS[item.nodeid] = {
        "outcome": report.outcome,
        "duration_s": round(report.duration, 6),
    }


def _benchmark_stats(session):
    """Timing stats from pytest-benchmark (empty under --benchmark-disable)."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return []
    stats = []
    for bench in getattr(bench_session, "benchmarks", []):
        benched = getattr(bench, "stats", None)
        if benched is None:
            continue
        stats.append({
            "name": bench.fullname,
            "mean_s": benched.mean,
            "stddev_s": benched.stddev,
            "rounds": benched.rounds,
        })
    return stats


def pytest_sessionfinish(session, exitstatus):
    from repro.telemetry import config_fingerprint, git_sha

    suite = os.environ.get("BENCH_SUITE", "smoke")
    artifact = {
        "suite": suite,
        "exit_status": int(exitstatus),
        "generated_unix": int(time.time()),
        "generated_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_sha": git_sha(cwd=str(session.config.rootpath)),
        "config_fingerprint": config_fingerprint(),
        "tests": dict(_TEST_RESULTS),
        "benchmarks": _benchmark_stats(session),
        "headlines": dict(_HEADLINES),
    }
    path = os.path.join(str(session.config.rootpath), f"BENCH_{suite}.json")
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def bench_headline():
    """Recorder for headline numbers: ``bench_headline(name, value)``.

    Recorded values land in the ``headlines`` section of the
    ``BENCH_<suite>.json`` artifact, keyed by name (last write wins).
    """

    def record(name: str, value) -> None:
        _HEADLINES[name] = value

    return record


@pytest.fixture(scope="session")
def base_model():
    return transformer_base()


@pytest.fixture(scope="session")
def paper_acc():
    return paper_accelerator()


@pytest.fixture(scope="session")
def trained_nmt_bench():
    """A synthetic-NMT model trained well enough for the BLEU study."""
    task = SyntheticTranslationTask(num_words=24, min_len=4, max_len=10)
    config = ModelConfig(
        "nmt-bench", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=2, num_decoder_layers=2,
        max_seq_len=24, dropout=0.0,
    )
    rng = np.random.default_rng(42)
    model = Transformer(
        config, len(task.src_vocab), len(task.tgt_vocab), rng=rng
    )
    train, valid, test = task.splits(train=1600, valid=100, test=100, seed=7)
    train_model(model, task, train, epochs=16, batch_size=32, warmup=300,
                lr_factor=2.0, seed=3)
    return model, task, valid, test
