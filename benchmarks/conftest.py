"""Shared benchmark fixtures.

The quantization bench needs a trained model; training happens once per
session here (outside any timed region).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, paper_accelerator, transformer_base
from repro.nmt import SyntheticTranslationTask, train_model
from repro.transformer import Transformer


@pytest.fixture(scope="session")
def base_model():
    return transformer_base()


@pytest.fixture(scope="session")
def paper_acc():
    return paper_accelerator()


@pytest.fixture(scope="session")
def trained_nmt_bench():
    """A synthetic-NMT model trained well enough for the BLEU study."""
    task = SyntheticTranslationTask(num_words=24, min_len=4, max_len=10)
    config = ModelConfig(
        "nmt-bench", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=2, num_decoder_layers=2,
        max_seq_len=24, dropout=0.0,
    )
    rng = np.random.default_rng(42)
    model = Transformer(
        config, len(task.src_vocab), len(task.tgt_vocab), rng=rng
    )
    train, valid, test = task.splits(train=1600, valid=100, test=100, seed=7)
    train_model(model, task, train, epochs=16, batch_size=32, warmup=300,
                lr_factor=2.0, seed=3)
    return model, task, valid, test
