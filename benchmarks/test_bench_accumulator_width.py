"""[A6] Ablation: PE accumulator width vs correctness and cost.

Table II's register counts imply the authors sized the PE accumulator
minimally (~26 bits for the deepest k = 4096 reduction) rather than a
round 32.  This bench sweeps the accumulator width on the cycle-accurate
SA over a worst-case-ish INT8 GEMM and reports where saturation starts
corrupting results, alongside the register cost per width — reproducing
the sizing decision.  The timed region is one pass at the paper's width.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import SystolicArray, accumulator_bits


def test_bench_accumulator_width(benchmark, paper_acc):
    rng = np.random.default_rng(11)
    k = 2048  # the FFN W2 reduction depth at Transformer-base
    a = rng.integers(-128, 128, size=(64, k))
    b = rng.integers(-128, 128, size=(k, 64))
    exact = a @ b
    required = accumulator_bits(k)

    rows = []
    for bits in (16, 20, 24, required, 28, 32):
        sa = SystolicArray(64, 64, acc_bits=bits)
        product = sa.run_pass(a, b).product
        errors = int((product != exact).sum())
        regs_per_pe = 8 + 8 + bits
        rows.append([
            bits, errors, f"{errors / exact.size:.1%}",
            regs_per_pe, f"{regs_per_pe * 4096:,}",
        ])
    print()
    print(render_table(
        f"Accumulator-width ablation (k = {k} INT8 GEMM; required = "
        f"{required} bits)",
        ["acc bits", "saturated outputs", "fraction", "regs/PE",
         "SA registers"],
        rows,
    ))
    by_bits = {r[0]: r[1] for r in rows}
    assert by_bits[16] > 0                   # 16 bits clearly saturates
    assert by_bits[required] == 0            # the minimal width is exact
    assert by_bits[32] == 0

    sa = SystolicArray(64, 64, acc_bits=required)
    result = benchmark(sa.run_pass, a, b)
    assert np.array_equal(result.product, exact)
