"""[E3] Paper Eq. (3): the Q K^T multiply share, swept over s and h.

Prints the ratio series in both the paper's printed closed form and the
exact enumeration, and verifies the Section III claim that the share is
"very small" across the whole design space (so the zero-padded Q K^T pass
cannot hurt overall utilization much).  The timed region is one zero-padded
Q K^T pass on the cycle-accurate SA — the operation Eq. (3) is about.
"""

import numpy as np

from repro.analysis import ratio_sweep, render_table
from repro.core import SystolicArray, plan_qkt


def test_bench_eq3(benchmark):
    points = ratio_sweep(seq_lens=(16, 32, 64, 128), heads=(8, 12, 16))
    rows = [
        [p.s, p.h, f"{p.paper_form:.5f}", f"{p.exact_form:.5f}",
         f"{100 * p.divergence:.2f}%"]
        for p in points
    ]
    print()
    print(render_table(
        "Eq. (3) — share of MHA multiplies spent in Q K^T",
        ["s", "h", "paper form", "exact", "divergence"],
        rows,
    ))
    assert all(p.exact_form < 0.01 for p in points)
    # The printed form is exact at the paper's s = 64 evaluation point.
    assert all(p.divergence < 1e-12 for p in points if p.s == 64)

    # Timed region: the zero-padded Q K^T pass itself (s = 48 < 64).
    s = 48
    plan = plan_qkt(s)
    assert plan.strategy == "zero_pad"
    rng = np.random.default_rng(1)
    q = rng.integers(-128, 128, size=(s, 64))
    kt = rng.integers(-128, 128, size=(64, s))
    kt_padded = np.pad(kt, ((0, 0), (0, plan.padded_cols - s)))
    sa = SystolicArray(s, 64)

    result = benchmark(sa.run_pass, q, kt_padded)
    assert np.array_equal(result.product[:, :s], q @ kt)
