"""[F7] Fig. 7: LayerNorm latency-minimization ablation.

Regenerates the figure's three schedules — straightforward, step one
(streaming mean accumulators), step two (Eq. 9 variance) — as the added
latency between the last element of G and the first output, across all
Table I architectures, plus the end-to-end MHA impact of each mode.
The timed region is one approximate (isqrt-LUT) LayerNorm over G.
"""

import numpy as np

from repro.analysis import render_table
from repro.config import TABLE1_PRESETS
from repro.core import LayerNormModule, schedule_mha


def test_bench_fig7_layernorm(benchmark, base_model, paper_acc):
    rows = []
    for config in TABLE1_PRESETS.values():
        module = LayerNormModule(paper_acc, config.d_model)
        rows.append([
            config.name, config.d_model,
            module.timing("straightforward").added_latency,
            module.timing("step_one").added_latency,
            module.timing("step_two").added_latency,
        ])
    print()
    print(render_table(
        "Fig. 7 — LayerNorm added latency before output (cycles)",
        ["model", "d_model = 64h", "straightforward (~128h)",
         "step one (~64h)", "step two (few)"],
        rows,
    ))
    for row in rows:
        assert row[2] > row[3] > row[4]

    impact_rows = []
    for mode in ("straightforward", "step_one", "step_two"):
        acc = paper_acc.with_updates(layernorm_mode=mode)
        impact_rows.append([
            mode, schedule_mha(base_model, acc).total_cycles,
        ])
    print(render_table(
        "End-to-end MHA ResBlock cycles per LayerNorm schedule",
        ["schedule", "MHA cycles"],
        impact_rows,
    ))
    assert impact_rows[0][1] > impact_rows[1][1] > impact_rows[2][1]

    module = LayerNormModule(paper_acc, base_model.d_model)
    rng = np.random.default_rng(5)
    g = rng.normal(0, 2, size=(64, base_model.d_model))
    gamma = np.ones(base_model.d_model)
    beta = np.zeros(base_model.d_model)
    out = benchmark(module, g, gamma, beta)
    assert out.shape == g.shape
