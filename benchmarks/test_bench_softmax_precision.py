"""[A11] Ablation: softmax datapath precision (the Wang-2018 Q-format).

The softmax module's internal Q6.10 format is a design choice inherited
from the paper's reference [13].  This bench sweeps the fractional width
of the shifted-logit format and reports the approximation error against
the exact softmax — locating the knee where fewer bits start costing
accuracy and more bits stop helping (the PWL error floor).  The timed
region is one 64x64 softmax at the paper's precision.
"""

import numpy as np

from repro.analysis import render_table
from repro.fixedpoint import QFormat
from repro.quant import HardwareSoftmax
from repro.transformer.functional import scaled_masked_softmax


def test_bench_softmax_precision(benchmark):
    rng = np.random.default_rng(21)
    logits = rng.normal(0, 10, size=(64, 64))
    exact = scaled_masked_softmax(logits, None, 8.0)

    rows = []
    errors = {}
    for frac_bits in (2, 4, 6, 8, 10, 12):
        fmt = QFormat(int_bits=6, frac_bits=frac_bits)
        hw = HardwareSoftmax(in_fmt=fmt)
        approx = hw(logits)
        max_err = float(np.abs(approx - exact).max())
        row_sum_err = float(np.abs(approx.sum(-1) - 1.0).max())
        errors[frac_bits] = max_err
        rows.append([
            f"Q6.{frac_bits}", fmt.total_bits, f"{max_err:.4f}",
            f"{row_sum_err:.4f}",
        ])
    print()
    print(render_table(
        "Softmax input-format sweep (paper's module uses Q6.10)",
        ["format", "bits", "max |y - exact|", "max |row sum - 1|"],
        rows,
    ))
    # Coarse formats hurt; beyond ~8 fractional bits the PWL error floor
    # dominates and extra bits stop helping.
    assert errors[2] > 2 * errors[10]
    assert abs(errors[10] - errors[12]) < 0.01
    assert errors[10] < 0.08

    hw = HardwareSoftmax()
    result = benchmark(hw, logits)
    assert result.shape == (64, 64)
