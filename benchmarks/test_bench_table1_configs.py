"""[T1] Paper Table I: architecture variations and the 64h/256h pattern.

Regenerates the Table I rows, validates that every architecture satisfies
``d_model = 64h`` and ``d_ff = 256h`` (the structural basis of the whole
partitioning scheme), and reports the per-architecture weight-block counts
the partitioner produces.  The timed region is the Fig. 4 partitioning of
one full layer's weights.
"""

import numpy as np

from repro.analysis import render_table
from repro.config import TABLE1_PRESETS
from repro.core import partition_model_weights


def test_bench_table1(benchmark):
    rows = []
    for name, config in TABLE1_PRESETS.items():
        rows.append([
            config.name, config.d_model, config.d_ff, config.num_heads,
            config.d_model // 64, config.num_w1_blocks, config.num_w2_blocks,
        ])
        assert config.d_model == 64 * config.num_heads
        assert config.d_ff == 256 * config.num_heads
    print()
    print(render_table(
        "Table I — Variations on the Transformer and BERT architectures",
        ["model", "d_model", "d_ff", "h", "WG blocks", "W1 blocks",
         "W2 blocks"],
        rows,
    ))

    config = TABLE1_PRESETS["transformer-base"]
    rng = np.random.default_rng(0)
    wg = rng.normal(size=(config.d_model, config.d_model))
    w1 = rng.normal(size=(config.d_model, config.d_ff))
    w2 = rng.normal(size=(config.d_ff, config.d_model))

    blocks = benchmark(partition_model_weights, config, wg, w1, w2)
    assert len(blocks["W1"]) == 32
