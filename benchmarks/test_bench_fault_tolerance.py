"""[A4] Reliability: ABFT detection coverage and cycle overhead.

Runs a seeded single-bit fault campaign over the SA datapath (the
accumulator registers the output-stationary dataflow keeps resident for
the whole pass) and asserts the checksum scheme's headline property:
**at least 99% of injected single-bit SA-datapath faults are
detected** — on this integer datapath the syndrome test is exact, so
the measured rate is 100%.  Alongside, prices the protection: the
guard row/column plus drain-time comparator cost a pinned 1,072 cycles
(~1.8%) on the Transformer-base ResBlock pair.  The timed region is
one full campaign sweep.
"""

from repro.analysis import render_table
from repro.reliability import (
    CampaignSpec,
    abft_cycle_overhead,
    run_campaign,
)

SPEC = CampaignSpec(
    seq_len=64, depth=64, cols=64, trials=64,
    sites=("sa_accumulator", "sa_multiplier"), abft=True, seed=11,
)


def test_bench_abft_coverage_and_overhead(benchmark, base_model, paper_acc):
    result = run_campaign(SPEC)
    overhead = abft_cycle_overhead(base_model, paper_acc)

    single_bit = result.detection_rate(
        site="sa_accumulator", mode="bit_flip"
    )
    rows = [
        [site, mode,
         f"{result.detection_rate(site=site, mode=mode):.1%}",
         f"{result.correction_rate(site=site, mode=mode):.1%}",
         f"{result.silent_rate(site=site, mode=mode):.1%}"]
        for site in SPEC.sites
        for mode in {"sa_accumulator": ("bit_flip", "multi_bit_flip"),
                     "sa_multiplier": ("stuck_at",)}[site]
    ]
    rows.append([
        "ABFT overhead", "",
        f"{overhead.overhead_cycles:,} cyc",
        f"{overhead.overhead_fraction:.2%}", "",
    ])
    print()
    print(render_table(
        f"ABFT coverage — 64 x 64 x 64 tiles, {SPEC.trials} trials/cell",
        ["site", "mode", "detect", "correct", "silent"],
        rows,
    ))

    # The acceptance bar: >= 99% detection on single-bit SA faults.
    assert single_bit >= 0.99
    # Nothing in the protected datapath slips through silently.
    assert result.silent_rate(site="sa_accumulator") == 0.0
    assert result.silent_rate(site="sa_multiplier") == 0.0
    # Single-bit upsets are not just detected but repaired in place.
    assert result.correction_rate(
        site="sa_accumulator", mode="bit_flip"
    ) == 1.0
    # Protection cost, pinned at the paper point.
    assert overhead.overhead_cycles == 1072
    assert overhead.overhead_fraction < 0.02

    timed = benchmark(run_campaign, SPEC)
    assert timed.outcomes == result.outcomes
