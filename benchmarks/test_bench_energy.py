"""[A10] Extension: energy per ResBlock, integrated over the timeline.

Integrates the power model over the scheduler's events (rather than
multiplying the flat 16.7 W by latency) and uses it to restate the Fig. 7
LayerNorm ablation in microjoules — the metric the paper's
mobile/embedded motivation actually cares about.  The timed region is one
timeline energy integration.
"""

from repro.analysis import render_table
from repro.core import (
    energy_per_token_uj,
    schedule_energy,
    schedule_ffn,
    schedule_mha,
)


def test_bench_energy(benchmark, base_model, paper_acc):
    mha_schedule = schedule_mha(base_model, paper_acc)
    mha = schedule_energy(mha_schedule, base_model, paper_acc)
    ffn = schedule_energy(schedule_ffn(base_model, paper_acc),
                          base_model, paper_acc)
    rows = []
    for name, e in (("MHA ResBlock", mha), ("FFN ResBlock", ffn)):
        d = e.as_dict()
        rows.append([
            name, f"{d['total_uj']:.0f}", f"{d['sa_uj']:.0f}",
            f"{d['memory_uj']:.0f}", f"{d['static_uj']:.0f}",
        ])
    print()
    print(render_table(
        "Energy per ResBlock (uJ; timeline-integrated)",
        ["block", "total", "SA", "weight memory", "static"],
        rows,
    ))
    assert ffn.total_uj > mha.total_uj
    assert mha.sa_uj > 0.5 * mha.dynamic_uj

    ablation_rows = []
    for mode in ("straightforward", "step_one", "step_two"):
        acc = paper_acc.with_updates(layernorm_mode=mode)
        e = schedule_energy(schedule_mha(base_model, acc), base_model, acc)
        ablation_rows.append([mode, f"{e.total_uj:.0f}",
                              f"{e.static_uj:.0f}"])
    print(render_table(
        "Fig. 7 LayerNorm schedules, restated as energy (uJ per MHA block)",
        ["schedule", "total", "static share"],
        ablation_rows,
    ))
    totals = [float(r[1]) for r in ablation_rows]
    assert totals[0] > totals[1] > totals[2]
    print(f"energy per token, one encoder layer: "
          f"{energy_per_token_uj(base_model, paper_acc):.1f} uJ")

    result = benchmark(schedule_energy, mha_schedule, base_model, paper_acc)
    assert result.total_uj == mha.total_uj
