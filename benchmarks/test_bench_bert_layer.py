"""[A7] Extension: BERT-family layers on the same accelerator.

Section II-B's motivation: BERT, T5, ERNIE, StructBERT all consist of the
same two ResBlocks, so the accelerator should serve them as-is.  This
bench schedules one encoder layer of every Table I architecture on the
64x64 SA and runs a real quantized BERT-style encoder through the
datapath (bit-verified), then reports classification accuracy across the
quantization steps — the encoder-only analogue of the Section V-A study.
The timed region is one quantized INT8 encoder batch.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import ModelConfig, TABLE1_PRESETS
from repro.core import schedule_ffn, schedule_mha
from repro.nmt import SyntheticClassificationTask, accuracy, train_classifier
from repro.quant import QuantizedEncoderOnly
from repro.transformer import EncoderOnlyClassifier


@pytest.fixture(scope="module")
def trained_classifier():
    task = SyntheticClassificationTask(words_per_group=6, min_len=5,
                                       max_len=10)
    config = ModelConfig(
        "enc-bench", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=2, num_decoder_layers=0,
        max_seq_len=16, dropout=0.0,
    )
    model = EncoderOnlyClassifier(
        config, len(task.vocab), task.num_classes,
        rng=np.random.default_rng(0),
    )
    train = task.make_dataset(800, seed=1)
    test = task.make_dataset(200, seed=2)
    train_classifier(model, task, train, epochs=10, batch_size=32,
                     lr=2e-3, seed=0)
    return model, task, train, test


def test_bench_bert_layer(benchmark, paper_acc, trained_classifier):
    # Per-architecture encoder-layer cycle table (Table I motivation).
    rows = []
    for config in TABLE1_PRESETS.values():
        mha = schedule_mha(config, paper_acc)
        ffn = schedule_ffn(config, paper_acc)
        layer = mha.total_cycles + ffn.total_cycles
        full = layer * config.num_encoder_layers
        rows.append([
            config.name, config.num_encoder_layers, layer,
            f"{full / 200_000.0:.2f}",
        ])
    print()
    print(render_table(
        "Encoder layers of the BERT family on the 64x64 SA @ 200 MHz",
        ["model", "layers", "cycles / layer", "encoder stack ms"],
        rows,
    ))

    model, task, train, test = trained_classifier
    fp_acc = accuracy(model, task, test)
    quant = QuantizedEncoderOnly(model)
    ids, lengths, _ = task.encode_batch(train[:64])
    quant.calibrate([(ids, lengths)])
    int8_acc = accuracy(quant, task, test)
    quant.softmax_mode = "hardware"
    hw_acc = accuracy(quant, task, test)
    quant.softmax_mode = "fp32"
    print(render_table(
        "Encoder-only quantization study (synthetic GLUE stand-in)",
        ["step", "accuracy"],
        [["FP32", f"{fp_acc:.1%}"],
         ["INT8", f"{int8_acc:.1%}"],
         ["INT8 + hardware softmax", f"{hw_acc:.1%}"]],
    ))
    assert fp_acc > 0.6
    assert int8_acc > fp_acc - 0.1
    assert hw_acc > fp_acc - 0.15

    test_ids, test_lengths, _ = task.encode_batch(test[:32])
    result = benchmark(quant.forward, test_ids, test_lengths)
    assert result.shape == (32, 3)
