"""[A8] Compression: ratio x cycles x stalls x quality x throughput.

Runs the pinned compression sweep at the paper point (Transformer-base
on the 64x64 SA) and records the A8 headlines ``repro bench-diff``
gates on:

* ``compress.cycle_savings_frac`` — per-layer cycle savings of 2:4
  structured sparsity vs dense (event-timeline totals, exact
  closed-form agreement asserted inside the sweep);
* ``compress.weight_bytes_ratio`` — 2:4 stored bytes / dense bytes
  with index metadata included;
* ``compress.throughput_rps`` — simulated serving throughput with the
  1:4 compressed cost model (the throughput-at-equal-quality numerator).

The BLEU proxy runs on the session-trained synthetic-NMT model through
the dense-expansion equivalence path, so the quality column is measured
— not asserted — and printed alongside the cycle story.  The timed
region is one cycles-only sweep over the default spec ladder.
"""

from repro.analysis import render_table
from repro.compress import compression_sweep, default_sweep_specs
from repro.config import (
    AcceleratorConfig,
    ServingConfig,
    nm_sparse_spec,
    transformer_base,
)
from repro.memsys import memory_preset


def test_bench_compress_sweep(benchmark, base_model, trained_nmt_bench,
                              bench_headline):
    acc = AcceleratorConfig()
    model, task, _, test = trained_nmt_bench

    points = benchmark(
        compression_sweep, base_model, acc,
        mem=memory_preset("ddr4-2400"),
    )
    by_label = {p.label: p for p in points}

    # Quality + serving axes once, outside the timed region.
    full = compression_sweep(
        base_model, acc, mem=memory_preset("ddr4-2400"),
        nmt=(model, task, test), serving=ServingConfig(),
    )
    full_by_label = {p.label: p for p in full}

    nm24 = by_label["2:4"]
    bench_headline("compress.cycle_savings_frac", nm24.cycle_savings_frac)
    bench_headline("compress.weight_bytes_ratio", nm24.weight_bytes_ratio)
    bench_headline("compress.throughput_rps",
                   full_by_label["1:4"].throughput_rps)

    rows = []
    for point in full:
        rows.append([
            point.label, f"{point.compression_ratio:.0f}x",
            f"{point.weight_bytes_ratio:.3f}",
            f"{point.mha_cycles + point.ffn_cycles:,}",
            f"{point.cycle_savings_frac:+.1%}",
            f"{point.stall_share:.1%}",
            f"{point.bleu:.1f}",
            f"{point.throughput_rps:.0f}",
        ])
    print()
    print(render_table(
        "compression at the paper point (DDR4-2400 weights)",
        ["spec", "ratio", "bytes", "layer cyc", "savings", "stall",
         "BLEU", "req/s"],
        rows,
    ))

    # Structural acceptance: sparsity must save cycles and lift
    # throughput; every ladder rung must store fewer bytes than dense.
    assert nm24.cycle_savings_frac > 0.15
    assert (full_by_label["1:4"].throughput_rps
            > full_by_label["dense"].throughput_rps)
    for spec in default_sweep_specs()[1:]:
        assert by_label[spec.label].weight_bytes_ratio < 1.0


def test_bench_compress_residency(base_model, bench_headline):
    # Residency is the on-chip payoff: dense Transformer-base does not
    # fit the Table II budget; the circulant ladder climbs into it.
    from repro.compress import footprint_report
    from repro.config import circulant_spec

    acc = AcceleratorConfig()
    dense = footprint_report(base_model, acc, nm_sparse_spec(4, 4))
    circ8 = footprint_report(base_model, acc, circulant_spec(8))
    assert dense.layers_resident == 0
    assert circ8.layers_resident >= 5
