"""[A2] Extension: where does the GPU catch up?

The paper evaluates batch 1 only (the latency-critical online regime).
This bench sweeps batch size under two GPU operating models — the paper's
measurement setup (eager per-kernel overhead) and an amortized/batched
setup — against the accelerator's fixed per-sentence latency, locating the
throughput crossover.  The timed region is the full sweep.
"""

from repro.analysis import render_table
from repro.core import schedule_ffn, schedule_mha
from repro.gpu_model import (
    ffn_latency_us,
    mha_latency_us,
    v100_batch1,
    v100_batched,
)

BATCHES = (1, 4, 16, 64, 256)


def sweep(model, acc):
    fpga = (schedule_mha(model, acc).latency_us(acc.clock_mhz)
            + schedule_ffn(model, acc).latency_us(acc.clock_mhz))
    eager, amortized = v100_batch1(), v100_batched()
    rows = []
    for batch in BATCHES:
        gpu_eager = (mha_latency_us(model, 64, eager, batch)
                     + ffn_latency_us(model, 64, eager, batch)) / batch
        gpu_amort = (mha_latency_us(model, 64, amortized, batch)
                     + ffn_latency_us(model, 64, amortized, batch)) / batch
        rows.append([
            batch, f"{fpga:.1f}", f"{gpu_eager:.1f}", f"{gpu_amort:.1f}",
            "FPGA" if fpga < gpu_eager else "GPU",
        ])
    return fpga, rows


def test_bench_batch_crossover(benchmark, base_model, paper_acc):
    fpga, rows = sweep(base_model, paper_acc)
    print()
    print(render_table(
        "Per-sentence latency vs batch (us; encoder layer = MHA + FFN)",
        ["batch", "FPGA (batch 1 design)", "GPU eager", "GPU amortized",
         "winner"],
        rows,
    ))
    # Shape: the accelerator wins the paper's batch-1 measurement regime
    # decisively (winner column compares against the eager setup, as the
    # paper did); an amortized GPU eventually wins per-sentence.
    assert rows[0][-1] == "FPGA"
    assert rows[-1][-1] == "GPU"
    assert float(rows[-1][3]) < fpga   # amortized GPU beats FPGA at 256

    result = benchmark(sweep, base_model, paper_acc)
    assert result[0] == fpga
