"""[A9] Extension: which activation tap costs the INT8 accuracy?

Section V-A quantizes every weight and activation matrix at once.  This
bench isolates each activation tap group (ResBlock input, Q/K/V
projections, attention context, FFN hidden) and measures the logit
perturbation it alone causes, ranking the taps a deployment would widen
first if INT8 ever proved too coarse.  The timed region is one full
sensitivity sweep.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import ModelConfig
from repro.quant import (
    QuantizedTransformer,
    full_vs_sum_of_parts,
    rank_by_sensitivity,
    tap_sensitivity,
)
from repro.transformer import Transformer


@pytest.fixture(scope="module")
def sensitivity_setup():
    config = ModelConfig(
        "sens", d_model=128, d_ff=512, num_heads=2,
        num_encoder_layers=2, num_decoder_layers=2,
        max_seq_len=24, dropout=0.0,
    )
    model = Transformer(config, 40, 40,
                        rng=np.random.default_rng(0)).eval()
    quant = QuantizedTransformer(model)
    rng = np.random.default_rng(1)
    src = rng.integers(1, 40, size=(4, 20))
    tgt = rng.integers(1, 40, size=(4, 20))
    lengths = np.full(4, 20)
    quant.calibrate([(src, tgt, lengths)])
    return model, quant, src, tgt, lengths


def test_bench_tap_sensitivity(benchmark, sensitivity_setup):
    model, quant, src, tgt, lengths = sensitivity_setup
    results = tap_sensitivity(model, quant, src, tgt, lengths)
    ranked = rank_by_sensitivity(results)
    by_group = {r.tap_group: r for r in results}
    rows = [
        [group, f"{by_group[group].rms_error:.4f}",
         f"{by_group[group].max_error:.4f}",
         f"{relative:.4f}"]
        for group, relative in ranked
    ]
    print()
    print(render_table(
        "Per-tap quantization sensitivity (logit RMS error vs FP32)",
        ["tap group", "RMS", "max", "relative RMS"],
        rows,
    ))
    interaction = full_vs_sum_of_parts(model, quant, src, tgt, lengths)
    print(f"full-pipeline RMS {interaction['full_rms']:.4f} vs per-tap RSS "
          f"{interaction['per_tap_rss']:.4f} "
          f"(interaction ratio {interaction['interaction_ratio']:.2f})")

    assert len(ranked) == 8
    assert all(v >= 0 for _, v in ranked)
    assert 0.1 < interaction["interaction_ratio"] < 10.0

    result = benchmark(tap_sensitivity, model, quant, src, tgt, lengths)
    assert len(result) == 8
