"""[Q1] Section V-A: the two-step INT8 quantization study.

The paper: FP32 BLEU 23.88 -> INT8 (FP32 softmax) 23.48 -> INT8 +
approximate softmax 23.57 on IWSLT'16 De-En.  Our substitution trains the
same kind of model on the synthetic translation task (DESIGN.md), then
applies the identical two quantization steps.  The shape to reproduce:
step one costs little BLEU; step two costs essentially nothing more
(the paper even gained 0.09).  The timed region is one INT8 inference
batch through the quantized model.
"""


from repro.analysis import render_table
from repro.nmt import encode_pairs, evaluate_bleu
from repro.quant import QuantizedTransformer, SOFTMAX_HARDWARE


def test_bench_quantization(benchmark, trained_nmt_bench):
    model, task, valid, test = trained_nmt_bench
    subset = test

    fp32_bleu = evaluate_bleu(model, task, subset)

    qt = QuantizedTransformer(model)
    calib = encode_pairs(valid, task.src_vocab, task.tgt_vocab)
    qt.calibrate([(calib.src, calib.tgt_in, calib.src_lengths)])
    int8_bleu = evaluate_bleu(qt, task, subset)

    qt.softmax_mode = SOFTMAX_HARDWARE
    hw_bleu = evaluate_bleu(qt, task, subset)
    qt.softmax_mode = "fp32"

    print()
    print(render_table(
        "Section V-A — quantization study (ours / paper BLEU)",
        ["step", "ours", "paper"],
        [
            ["FP32 baseline", f"{fp32_bleu:.2f}", "23.88"],
            ["step 1: INT8, FP32 softmax", f"{int8_bleu:.2f}", "23.48"],
            ["step 2: INT8 + approx softmax", f"{hw_bleu:.2f}", "23.57"],
        ],
    ))
    print(f"step-1 delta: {int8_bleu - fp32_bleu:+.2f} "
          f"(paper {23.48 - 23.88:+.2f}); "
          f"step-2 delta vs step 1: {hw_bleu - int8_bleu:+.2f} "
          f"(paper {23.57 - 23.48:+.2f})")

    # Shape: a usable baseline, small INT8 drop, approx-softmax roughly
    # free relative to step one.
    assert fp32_bleu > 40.0
    assert int8_bleu > fp32_bleu - 0.3 * fp32_bleu
    assert abs(hw_bleu - int8_bleu) < 0.2 * fp32_bleu

    batch = encode_pairs(test[:16], task.src_vocab, task.tgt_vocab)

    def int8_batch():
        return qt.forward(batch.src, batch.tgt_in, batch.src_lengths)

    logits = benchmark(int8_batch)
    assert logits.shape[0] == 16
