"""[A13] Ablation: datapath bit width around the paper's INT8 choice.

Sweeps the quantization word width for all ResBlock weights and
activations and measures the logit perturbation against FP32 — showing
the INT8 choice sits at the knee (INT4/6 visibly hurt, INT10+ buys little)
that ref. [2]'s BLEU study implies.  Also reports Section II-A's
motivating parameter/FLOP split.  The timed region is one INT8 inference.
"""

import numpy as np
import pytest

from repro.analysis import flop_split, parameter_split, render_table
from repro.config import ModelConfig, transformer_base
from repro.quant import QuantizedTransformer
from repro.transformer import Transformer


@pytest.fixture(scope="module")
def bitwidth_setup():
    config = ModelConfig(
        "bits", d_model=128, d_ff=512, num_heads=2,
        num_encoder_layers=1, num_decoder_layers=1,
        max_seq_len=16, dropout=0.0,
    )
    model = Transformer(config, 30, 30,
                        rng=np.random.default_rng(0)).eval()
    rng = np.random.default_rng(1)
    src = rng.integers(1, 30, size=(4, 14))
    tgt = rng.integers(1, 30, size=(4, 14))
    lengths = np.full(4, 14)
    return model, src, tgt, lengths


def _error_at_bits(model, src, tgt, lengths, bits):
    """Relative logit error with every tensor quantized at ``bits``."""
    quant = QuantizedTransformer(model, bits=bits)
    quant.calibrate([(src, tgt, lengths)])
    fp = model(src, tgt, src_lengths=lengths).numpy()
    q = quant.forward(src, tgt, lengths).numpy()
    return float(np.abs(fp - q).max() / np.abs(fp).max())


def test_bench_bitwidth(benchmark, bitwidth_setup):
    model, src, tgt, lengths = bitwidth_setup
    rows = []
    errors = {}
    for bits in (4, 6, 8, 10, 12):
        err = _error_at_bits(model, src, tgt, lengths, bits)
        errors[bits] = err
        rows.append([f"INT{bits}", f"{err:.4f}"])
    print()
    print(render_table(
        "Word-width sweep (relative max logit error vs FP32)",
        ["format", "error"],
        rows,
    ))
    assert errors[4] > 4 * errors[8]        # INT4 clearly hurts
    assert errors[8] < 0.05                 # INT8 is deployable
    assert errors[12] <= errors[8]          # diminishing returns

    base = transformer_base()
    params = parameter_split(base, 37_000, 37_000,
                             tied_embeddings=True, tied_generator=True)
    flops = flop_split(base, 37_000, 64, 64)
    print(render_table(
        "Section II-A motivation: where the parameters/MACs live "
        "(Transformer-base, tied embeddings, 37k BPE vocab)",
        ["component", "parameters", "forward MACs (s=64)"],
        [
            ["embeddings", f"{params.embeddings:,}", f"{flops.embeddings:,}"],
            ["MHA+FFN ResBlocks", f"{params.resblocks:,}",
             f"{flops.resblocks:,}"],
            ["generator", f"{params.generator:,}", f"{flops.generator:,}"],
        ],
    ))
    assert params.resblock_fraction > 0.5
    assert flops.resblock_fraction > 0.5

    quant = QuantizedTransformer(model)
    quant.calibrate([(src, tgt, lengths)])
    result = benchmark(quant.forward, src, tgt, lengths)
    assert result.shape[0] == 4
