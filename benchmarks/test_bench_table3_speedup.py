"""[T3] Paper Table III: FPGA vs GPU latency and speedups.

FPGA latencies come from the Algorithm 1 scheduler at 200 MHz; GPU
latencies from the V100 kernel-level model (overhead fitted once on the
FFN row, MHA is a prediction).  Asserts the headline shape: ~14.6x on the
MHA ResBlock, ~3.4x on the FFN ResBlock, and the GPU-side inversion (MHA
slower than FFN despite fewer FLOPs).  The timed region is one end-to-end
Table III evaluation.
"""

from repro.analysis import render_table
from repro.core import (
    PAPER_FFN_LATENCY_US,
    PAPER_FFN_SPEEDUP,
    PAPER_GPU_FFN_LATENCY_US,
    PAPER_GPU_MHA_LATENCY_US,
    PAPER_MHA_LATENCY_US,
    PAPER_MHA_SPEEDUP,
    schedule_ffn,
    schedule_mha,
)
from repro.gpu_model import ffn_latency_us, mha_latency_us, v100_batch1


def build_table3(model, acc):
    """Compute the Table III cells (measured side)."""
    spec = v100_batch1()
    fpga_mha = schedule_mha(model, acc).latency_us(acc.clock_mhz)
    fpga_ffn = schedule_ffn(model, acc).latency_us(acc.clock_mhz)
    gpu_mha = mha_latency_us(model, 64, spec)
    gpu_ffn = ffn_latency_us(model, 64, spec)
    return {
        "fpga_mha": fpga_mha, "fpga_ffn": fpga_ffn,
        "gpu_mha": gpu_mha, "gpu_ffn": gpu_ffn,
        "mha_speedup": gpu_mha / fpga_mha,
        "ffn_speedup": gpu_ffn / fpga_ffn,
    }


def test_bench_table3(benchmark, base_model, paper_acc):
    cells = build_table3(base_model, paper_acc)
    rows = [
        ["MHA ResBlock",
         f"{cells['fpga_mha']:.1f} / {PAPER_MHA_LATENCY_US}",
         f"{cells['gpu_mha']:.1f} / {PAPER_GPU_MHA_LATENCY_US}",
         f"{cells['mha_speedup']:.1f}x / {PAPER_MHA_SPEEDUP}x"],
        ["FFN ResBlock",
         f"{cells['fpga_ffn']:.1f} / {PAPER_FFN_LATENCY_US}",
         f"{cells['gpu_ffn']:.1f} / {PAPER_GPU_FFN_LATENCY_US}",
         f"{cells['ffn_speedup']:.1f}x / {PAPER_FFN_SPEEDUP}x"],
    ]
    print()
    print(render_table(
        "Table III — FPGA vs GPU latency (ours / paper, us)",
        ["block", "FPGA latency", "GPU latency", "speed-up"],
        rows,
    ))

    # Shape assertions: who wins, by roughly what factor, and the GPU
    # inversion.
    assert cells["gpu_mha"] > cells["gpu_ffn"]
    assert cells["mha_speedup"] > 3 * cells["ffn_speedup"]
    assert abs(cells["mha_speedup"] / PAPER_MHA_SPEEDUP - 1) < 0.15
    assert abs(cells["ffn_speedup"] / PAPER_FFN_SPEEDUP - 1) < 0.20

    result = benchmark(build_table3, base_model, paper_acc)
    assert result["mha_speedup"] == cells["mha_speedup"]
