"""[A12] Extension: the speedup landscape beyond Table III's two cells.

Sweeps FPGA-vs-GPU speedups across every Table I architecture and
sequence length under the paper's eager measurement protocol.  Shape: the
MHA advantage always exceeds the FFN's, both erode as sequences grow (the
GPU's fixed overheads amortize), and the paper's (Transformer-base, s=64)
cell is where it claims to be.  The timed region is the full landscape.
"""

from repro.analysis import render_table
from repro.config import TABLE1_PRESETS
from repro.gpu_model import best_and_worst, speedup_landscape

SEQ_LENS = (16, 32, 64, 128)


def test_bench_speedup_landscape(benchmark):
    models = list(TABLE1_PRESETS.values())
    cells = speedup_landscape(models, seq_lens=SEQ_LENS)
    rows = [
        [c.model_name, c.seq_len, f"{c.mha_speedup:.1f}x",
         f"{c.ffn_speedup:.1f}x", f"{c.layer_speedup:.1f}x"]
        for c in cells
    ]
    print()
    print(render_table(
        "FPGA-vs-GPU speedup landscape (eager protocol, batch 1)",
        ["model", "s", "MHA", "FFN", "layer"],
        rows,
    ))
    extremes = best_and_worst(cells)
    print(f"best: {extremes['best'].model_name} s={extremes['best'].seq_len} "
          f"({extremes['best'].layer_speedup:.1f}x); "
          f"worst: {extremes['worst'].model_name} "
          f"s={extremes['worst'].seq_len} "
          f"({extremes['worst'].layer_speedup:.1f}x)")

    assert all(c.mha_speedup > c.ffn_speedup for c in cells)
    paper_cell = next(
        c for c in cells
        if c.model_name == "Transformer-base" and c.seq_len == 64
    )
    assert abs(paper_cell.mha_speedup / 14.6 - 1) < 0.05
    assert extremes["best"].seq_len == min(SEQ_LENS)

    result = benchmark(speedup_landscape, models, SEQ_LENS)
    assert len(result) == len(cells)
