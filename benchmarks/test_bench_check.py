"""[A7] Statcheck: full-gate wall time and warm incremental-cache speed.

Runs the complete six-pass ``repro check`` gate (overflow, schedule,
AST, DET, QFMT, PRC) cold and records its wall time as the headline
`repro bench-diff --only check.` gates on; a second timed region proves
the warm content-hash cache keeps an incremental re-check under the
one-second budget the CLI promises for ``repro check --changed``.  The
timed region is one cold uncached full run.
"""

import time

from repro.analysis import render_table
from repro.statcheck import CheckCache, run_check

WARM_BUDGET_S = 1.0


def test_bench_check_gate(benchmark, bench_headline, tmp_path):
    start = time.perf_counter()
    cold = run_check()
    cold_s = time.perf_counter() - start
    assert cold.passed and cold.errors == []

    cache = CheckCache(path=tmp_path / "cache.json")
    run_check(cache=cache)
    cache.save()

    warm_cache = CheckCache.load(tmp_path / "cache.json")
    start = time.perf_counter()
    warm = run_check(cache=warm_cache)
    warm_s = time.perf_counter() - start
    assert warm.passed
    assert warm.cache_stats["misses"] == 0
    assert warm.findings == cold.findings

    bench_headline("check.wall_time_s", cold_s)
    bench_headline("check.warm_wall_time_s", warm_s)
    bench_headline("check.checks_total", sum(cold.checks_run.values()))

    print()
    print(render_table(
        "statcheck: full six-pass gate",
        ["run", "wall s", "checks", "cache hits/misses"],
        [
            ["cold", f"{cold_s:.3f}",
             str(sum(cold.checks_run.values())), "-"],
            ["warm", f"{warm_s:.3f}",
             str(sum(warm.checks_run.values())),
             f"{warm.cache_stats['hits']}/{warm.cache_stats['misses']}"],
        ],
    ))

    # The CLI promise: a warm `repro check --changed` is sub-second.
    assert warm_s < WARM_BUDGET_S

    result = benchmark(run_check)
    assert result.passed
