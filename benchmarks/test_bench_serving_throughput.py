"""[A3] Serving: delivered throughput and tail latency under load.

Simulates the serving tier (Poisson traffic, dynamic batching, one
device) at three arrival rates and records throughput and p99 latency
for the dynamic policy against the batch-1 baseline — the trajectory
future scaling/caching/sharding PRs are measured against.  The timed
region is one full mid-load simulation.
"""

import time

from repro.analysis import render_table
from repro.config import ServingConfig
from repro.serving import simulate_serving

RATES_RPS = (400.0, 1200.0, 2400.0)
SEED = 11


def _serving(rate, **overrides):
    return ServingConfig(
        arrival_rate_rps=rate, num_requests=160,
        min_len=8, max_len=32, seed=SEED, **overrides,
    )


def sweep(model, acc):
    rows = []
    stats = []
    for rate in RATES_RPS:
        dyn = simulate_serving(
            model, acc, _serving(rate, max_batch_requests=8,
                                 max_wait_us=1000.0)
        ).metrics
        base = simulate_serving(
            model, acc, _serving(rate, max_batch_requests=1)
        ).metrics
        rows.append([
            f"{rate:.0f}",
            f"{dyn.throughput_rps:.0f} / {base.throughput_rps:.0f}",
            f"{dyn.latency_p99_us / 1e3:.1f} / "
            f"{base.latency_p99_us / 1e3:.1f}",
            f"{dyn.rejection_rate:.0%} / {base.rejection_rate:.0%}",
            f"{dyn.occupancy:.0%}",
        ])
        stats.append((rate, dyn, base))
    return rows, stats


def test_bench_serving_throughput(benchmark, base_model, paper_acc,
                                  bench_headline):
    rows, stats = sweep(base_model, paper_acc)
    _, mid_dyn, _ = stats[1]
    bench_headline("serving.throughput_rps_at_1200", mid_dyn.throughput_rps)
    bench_headline("serving.p99_us_at_1200", mid_dyn.latency_p99_us)
    print()
    print(render_table(
        "serving under Poisson load (dynamic x8 / batch-1, 1 device)",
        ["offered req/s", "throughput req/s", "p99 ms", "rejection",
         "occupancy"],
        rows,
    ))
    for rate, dyn, base in stats:
        # Dynamic batching never loses, and wins clearly once the
        # batch-1 design saturates (its capacity is ~185 req/s here).
        assert dyn.throughput_rps >= base.throughput_rps
        if rate >= RATES_RPS[1]:
            assert dyn.throughput_rps > 1.5 * base.throughput_rps
            assert dyn.latency_p99_us < base.latency_p99_us

    # Simulator wall-clock throughput: how many simulated requests the
    # serving simulator itself resolves per real second.  Gated loosely
    # (rel_tol 0.9) — it guards against order-of-magnitude slowdowns
    # from instrumentation, not against machine-to-machine jitter.
    t0 = time.perf_counter()
    timed = simulate_serving(
        base_model, paper_acc,
        _serving(RATES_RPS[1], max_batch_requests=8, max_wait_us=1000.0),
    )
    elapsed = time.perf_counter() - t0
    bench_headline("serving.sim_requests_per_s",
                   len(timed.records) / elapsed)

    result = benchmark(
        simulate_serving, base_model, paper_acc,
        _serving(RATES_RPS[1], max_batch_requests=8, max_wait_us=1000.0),
    )
    assert result.metrics.completed > 0
