"""[P1] Section V-B power figures: 16.7 W total (13.3 dynamic + 3.4 static).

Prints the activity-based power breakdown next to the published split and
derives per-ResBlock energy.  The timed region is one power estimation.
"""

from repro.analysis import render_table
from repro.core import (
    PAPER_DYNAMIC_W,
    PAPER_STATIC_W,
    PAPER_TOTAL_W,
    energy_per_resblock_uj,
    estimate_power,
    schedule_ffn,
    schedule_mha,
)


def test_bench_power(benchmark, base_model, paper_acc):
    power = estimate_power(base_model, paper_acc)
    d = power.as_dict()
    print()
    print(render_table(
        "Section V-B — on-chip power (ours / paper, W)",
        ["total", "dynamic", "static", "SA", "memory", "clock"],
        [[
            f"{d['total_w']:.1f} / {PAPER_TOTAL_W}",
            f"{d['dynamic_w']:.1f} / {PAPER_DYNAMIC_W}",
            f"{d['static_w']:.1f} / {PAPER_STATIC_W}",
            f"{d['sa_w']:.1f}", f"{d['memory_w']:.1f}", f"{d['clock_w']:.1f}",
        ]],
    ))
    mha_cycles = schedule_mha(base_model, paper_acc).total_cycles
    ffn_cycles = schedule_ffn(base_model, paper_acc).total_cycles
    print(render_table(
        "Derived energy per ResBlock (uJ)",
        ["MHA", "FFN"],
        [[
            f"{energy_per_resblock_uj(d['total_w'], mha_cycles, 200.0):.0f}",
            f"{energy_per_resblock_uj(d['total_w'], ffn_cycles, 200.0):.0f}",
        ]],
    ))
    assert abs(d["total_w"] - PAPER_TOTAL_W) / PAPER_TOTAL_W < 0.15
    assert abs(d["dynamic_w"] - PAPER_DYNAMIC_W) / PAPER_DYNAMIC_W < 0.15

    result = benchmark(estimate_power, base_model, paper_acc)
    assert result.total_w == power.total_w
