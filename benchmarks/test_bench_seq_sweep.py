"""[A5] Extension: sequence-length scaling of the s x 64 design.

Section III notes "s is usually no bigger than 128" and handles s > 64 by
partitioning Q.  This bench sweeps s across the SA-row dimension and
reports cycles, utilization, and the Q K^T handling strategy — showing the
design point (s = 64) sits where utilization is still high and the
zero-pad strategy still applies.  The timed region is the s-sweep.
"""

from repro.analysis import render_table
from repro.config import AcceleratorConfig
from repro.core import plan_qkt, schedule_ffn, schedule_mha

SEQ_LENS = (16, 32, 48, 64, 96, 128)


def sweep(model):
    rows = []
    for s in SEQ_LENS:
        acc = AcceleratorConfig(seq_len=s)
        mha = schedule_mha(model, acc)
        ffn = schedule_ffn(model, acc)
        plan = plan_qkt(s)
        rows.append([
            s, mha.total_cycles, f"{mha.sa_utilization:.1%}",
            ffn.total_cycles, f"{ffn.sa_utilization:.1%}",
            plan.strategy, plan.num_passes,
        ])
    return rows


def test_bench_seq_sweep(benchmark, base_model):
    rows = sweep(base_model)
    print()
    print(render_table(
        "Sequence-length sweep (Transformer-base; SA rows = s)",
        ["s", "MHA cycles", "MHA util", "FFN cycles", "FFN util",
         "QKt strategy", "QKt passes"],
        rows,
    ))
    # Cycles grow with s; the strategy flips from zero-pad to
    # partition-q beyond the 64-column boundary.
    cycles = [r[1] for r in rows]
    assert cycles == sorted(cycles)
    strategies = {r[0]: r[5] for r in rows}
    assert strategies[64] == "zero_pad"
    assert strategies[128] == "partition_q"

    result = benchmark(sweep, base_model)
    assert result == rows
