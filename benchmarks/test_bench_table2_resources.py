"""[T2] Paper Table II: FPGA utilization report.

Prints our analytic per-module estimates next to the published Vivado
figures and asserts the table's shape: the SA dominates LUTs, the softmax
module out-weighs the LayerNorm logic, the LayerNorm module owns every
DSP, and the weight memory owns the BRAM.  The timed region is one full
resource estimation.
"""

from repro.analysis import render_table
from repro.core import PAPER_TABLE2, XCVU13P, estimate_top


def test_bench_table2(benchmark, base_model, paper_acc):
    estimates = estimate_top(base_model, paper_acc)
    rows = []
    order = ["top", "sa", "softmax", "layernorm", "weight_memory"]
    labels = {
        "top": "Top", "sa": "64x64 SA", "softmax": "Softmax",
        "layernorm": "LayerNorm", "weight_memory": "Weight Memory",
    }
    for key in order:
        ours = estimates[key].as_dict()
        paper = PAPER_TABLE2[key]
        rows.append([
            labels[key],
            f"{ours['lut']:,} / {paper['lut']:,}",
            f"{ours['registers']:,} / {paper['registers']:,}",
            f"{ours['bram']:.1f} / {paper['bram']}",
            f"{ours['dsp']} / {paper['dsp']}",
        ])
    print()
    print(render_table(
        "Table II — utilization (ours / paper), device xcvu13p",
        ["module", "LUT", "CLB registers", "BRAM", "DSP"],
        rows,
    ))
    print(f"device capacity: {XCVU13P}")

    top = estimates["top"]
    assert estimates["sa"].lut / top.lut > 0.8
    assert estimates["softmax"].lut > estimates["layernorm"].lut
    assert estimates["layernorm"].dsp == top.dsp == 129
    assert estimates["weight_memory"].bram == 456

    result = benchmark(estimate_top, base_model, paper_acc)
    assert result["top"].lut == top.lut
