"""[F6] Fig. 6: the four-stage scaled masked-softmax module.

Reports the module's timing (input stream, output pass, pipeline tail),
its hideability behind the V-projection SA pass (the Algorithm 1 overlap
condition), and the accuracy of the multiplier-free EXP/LN datapath against
the exact softmax.  The timed region is one 64x64 hardware softmax.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import SoftmaxModule
from repro.fixedpoint import ExpUnit, InverseSqrtLUT, LnUnit
from repro.transformer.functional import scaled_masked_softmax


def test_bench_fig6_softmax(benchmark, paper_acc):
    module = SoftmaxModule(paper_acc, approximate=True)
    timing = module.timing()
    print()
    print(render_table(
        "Fig. 6 — softmax module timing (s = 64)",
        ["input cycles", "output pass", "pipeline tail",
         "exposed after input", "hidden behind VWv (512 cyc)?"],
        [[timing.input_cycles, timing.second_pass_cycles,
          timing.pipeline_tail, timing.exposed_after_input,
          str(module.hideable_behind(512))]],
    ))
    assert module.hideable_behind(512)

    rng = np.random.default_rng(3)
    logits = rng.normal(0, 12, size=(64, 64))
    mask = np.triu(np.ones((64, 64), dtype=bool), k=1)
    exact = scaled_masked_softmax(logits, mask, 8.0)
    approx = module(logits, mask)
    max_err = np.abs(approx - exact).max()
    row_sum_err = np.abs(approx.sum(-1) - 1.0).max()
    argmax_agree = (approx.argmax(-1) == exact.argmax(-1)).mean()
    exp_err = ExpUnit().max_relative_error()
    ln_err = LnUnit().max_absolute_error()
    isqrt_err = InverseSqrtLUT().max_relative_error()
    print(render_table(
        "Multiplier-free datapath accuracy",
        ["max |y - exact|", "max |row sum - 1|", "argmax agreement",
         "EXP rel err", "LN abs err", "isqrt rel err"],
        [[f"{max_err:.4f}", f"{row_sum_err:.4f}", f"{argmax_agree:.1%}",
          f"{exp_err:.4f}", f"{ln_err:.4f}", f"{isqrt_err:.5f}"]],
    ))
    assert max_err < 0.10
    assert argmax_agree > 0.95

    out = benchmark(module, logits, mask)
    assert out.shape == (64, 64)
